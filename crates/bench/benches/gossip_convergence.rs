//! Gossip convergence: how long N `TcpTransport` hubs seeded in a line —
//! the worst-diameter connected seed graph — take to reach a complete,
//! identical directory on every hub.
//!
//! Each hub runs one application node plus its discovery node, and knows
//! only its predecessor's seed address. Convergence means every hub's
//! directory holds all `2N` names with equal fingerprints — at which
//! point any node can rpc any other by name across all N hubs. The
//! measured time includes handshakes, transitive peer adoption, and the
//! push-pull anti-entropy rounds that carry line-end entries across the
//! full diameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfserv_discovery::{DiscoveryConfig, DiscoveryHandle, PeerDiscovery};
use selfserv_net::{NodeId, TcpTransport, Transport};
use std::time::{Duration, Instant};

/// Gossip cadence under measurement (the dominant term: convergence is
/// roughly diameter × cadence for a line).
const CADENCE: Duration = Duration::from_millis(25);

fn converge_line(n: usize, fanout: usize) -> Duration {
    // Hubs and application nodes are plain setup; the clock starts before
    // the first *discovery* spawn, because early segments of the line
    // begin handshaking and gossiping while later hubs are still coming
    // up — that work is part of convergence, not setup.
    let mut hubs = Vec::with_capacity(n);
    let mut endpoints = Vec::with_capacity(n);
    for i in 0..n {
        let hub = TcpTransport::new();
        endpoints.push(Transport::connect(&hub, NodeId::new(format!("node.{i}"))).unwrap());
        hubs.push(hub);
    }
    let started = Instant::now();
    let mut discs: Vec<DiscoveryHandle> = Vec::with_capacity(n);
    for hub in &hubs {
        let mut config = DiscoveryConfig::default()
            .with_cadence(CADENCE)
            .with_fanout(fanout);
        if let Some(prev) = discs.last() {
            config = config.with_seed(prev.seed_addr());
        }
        discs.push(PeerDiscovery::spawn(hub, config).unwrap());
    }
    let deadline = started + Duration::from_secs(60);
    loop {
        let complete = discs.iter().all(|d| d.directory().names().len() == 2 * n)
            && discs
                .iter()
                .all(|d| d.directory().fingerprint() == discs[0].directory().fingerprint());
        if complete {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "line of {n} hubs never converged"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = started.elapsed();
    drop(discs);
    drop(endpoints);
    elapsed
}

fn bench_gossip_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_convergence");
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("line", n), &n, |b, &n| {
            b.iter(|| converge_line(n, 2));
        });
    }
    // Fan-out sweep at the full line: 1 partner per round (the pre-knob
    // behavior) vs the default 2 vs 4 — each round infects fanout× as
    // many hubs, so rounds-to-converge shrinks as message cost grows.
    for fanout in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("line16_fanout", fanout),
            &fanout,
            |b, &f| {
                b.iter(|| converge_line(16, f));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    targets = bench_gossip_convergence
}
criterion_main!(benches);
