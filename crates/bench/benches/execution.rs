//! E3 (Figure 3): end-to-end composite execution through the P2P fabric
//! (software overhead: instant network, zero-latency services).

use criterion::{criterion_group, criterion_main, Criterion};
use selfserv_bench::{deploy_p2p, instant_net, synth_input};
use selfserv_core::{AccommodationChoice, TravelDemo, TravelDemoConfig};
use selfserv_net::Network;
use selfserv_statechart::synth;
use std::time::Duration;

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution");

    {
        let net = instant_net();
        let dep = deploy_p2p(&net, &synth::sequence(8), Duration::ZERO);
        group.bench_function("sequence8_p2p", |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                dep.execute(synth_input(i), Duration::from_secs(30))
                    .unwrap()
            });
        });
    }
    {
        let net = instant_net();
        let dep = deploy_p2p(&net, &synth::parallel(8), Duration::ZERO);
        group.bench_function("parallel8_p2p", |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                dep.execute(synth_input(i), Duration::from_secs(30))
                    .unwrap()
            });
        });
    }
    {
        let net = Network::new(selfserv_net::NetworkConfig::instant());
        let demo = TravelDemo::launch(
            &net,
            TravelDemoConfig {
                accommodation: AccommodationChoice::NearAttraction,
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_function("travel_domestic", |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                demo.book_trip(&format!("C{i}"), "Sydney", "2002-08-20", "2002-08-27")
                    .unwrap()
            });
        });
        group.bench_function("travel_international", |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                demo.book_trip(&format!("C{i}"), "Hong Kong", "2002-08-20", "2002-08-27")
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20);
    targets = bench_execution
}
criterion_main!(benches);
