//! E6: selection-policy decision overhead (pure policy cost, no network).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfserv_community::{
    ExecutionHistory, HistoryAware, LeastLoaded, Member, MemberId, Outcome, QosProfile,
    RandomChoice, RoundRobin, SelectionContext, SelectionPolicy, WeightedScoring,
};
use selfserv_net::NodeId;
use selfserv_wsdl::MessageDoc;
use std::time::Duration;

fn members(n: usize) -> Vec<Member> {
    (0..n)
        .map(|i| Member {
            id: MemberId(format!("m{i:03}")),
            provider: format!("P{i}"),
            endpoint: NodeId::new(format!("svc.m{i}")),
            qos: QosProfile::default()
                .with_cost(1.0 + i as f64)
                .with_duration_ms(10.0 + (i * 7 % 90) as f64)
                .with_reliability(0.8 + (i % 5) as f64 * 0.04)
                .with_reputation((i % 10) as f64 / 10.0),
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_policy");
    for n in [4usize, 16, 64] {
        let ms = members(n);
        let refs: Vec<&Member> = ms.iter().collect();
        let history = ExecutionHistory::new();
        for m in &ms {
            history.start(&m.id);
            history.complete(&m.id, Duration::from_millis(20), Outcome::Success);
        }
        let req = MessageDoc::request("op");
        let policies: Vec<(&str, Box<dyn SelectionPolicy>)> = vec![
            ("round_robin", Box::new(RoundRobin::new())),
            ("random", Box::new(RandomChoice::new(5))),
            ("least_loaded", Box::new(LeastLoaded)),
            ("saw", Box::new(WeightedScoring::default())),
            ("history_aware", Box::new(HistoryAware::default())),
        ];
        for (name, policy) in policies {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let ctx = SelectionContext {
                        operation: "op",
                        request: &req,
                        history: &history,
                        liveness: None,
                    };
                    policy.select(&refs, &ctx).unwrap().id.clone()
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20);
    targets = bench_policies
}
criterion_main!(benches);
