//! Community serving benches:
//!
//! * `selection_policy` (E6) — selection-policy decision overhead (pure
//!   policy cost, no network).
//! * `community_server/community_64_concurrent` — 64 concurrent
//!   invocations pushed through the *real* community server
//!   (coordinator → community → member), collected back through one
//!   deployment, on the instant fabric and over real TCP sockets.
//!   Sampled throughout: `blocked_workers == 0` on a 4-worker executor
//!   — the continuation-passing delegation path parks nothing.
//! * `community_replicas/burst64` — the same 64-invocation burst against
//!   1 vs 2 community replicas whose admission cap (`max_in_flight`) is
//!   8 per replica, served by a timer-based member (replies from
//!   `on_timer`, never blocking). On a single-core machine replica
//!   scaling cannot come from CPU parallelism; it comes from *admission
//!   capacity* — two replicas hold 2× the delegations open at once, so a
//!   latency-bound burst drains in roughly half the waves. Acceptance:
//!   2-replica min ≥ 1.5× faster than 1-replica min.
//! * `community_replicas_xproc/burst64` — the same admission-capped
//!   burst over real TCP, with replica 1 living in a **separate OS
//!   process**: this bench binary re-executes itself as the remote
//!   replica host, handing over one discovery seed address. Membership
//!   reaches the remote replica only as gossiped rows; routing reaches
//!   it only through names discovery learned. The first replica-scaling
//!   number where the replicas share no memory at all.

use criterion::{criterion_group, BenchmarkId, Criterion};
use selfserv_community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, ExecutionHistory,
    HistoryAware, LeastLoaded, Member, MemberId, Outcome, QosProfile, RandomChoice,
    ReplicationConfig, RoundRobin, SelectionContext, SelectionPolicy, WeightedScoring,
};
use selfserv_core::{naming, Deployer, Deployment, EchoService, ServiceHost};
use selfserv_discovery::{DiscoveryConfig, PeerDiscovery};
use selfserv_expr::Value;
use selfserv_net::{Envelope, Network, NetworkConfig, NodeId, TcpTransport, Transport};
use selfserv_runtime::{Executor, Flow, NodeCtx, NodeLogic, TimerToken};
use selfserv_statechart::{Statechart, StatechartBuilder, TaskDef, TransitionDef};
use selfserv_wsdl::{MessageDoc, OperationDef, ParamType};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn members(n: usize) -> Vec<Member> {
    (0..n)
        .map(|i| Member {
            id: MemberId(format!("m{i:03}")),
            provider: format!("P{i}"),
            endpoint: NodeId::new(format!("svc.m{i}")),
            qos: QosProfile::default()
                .with_cost(1.0 + i as f64)
                .with_duration_ms(10.0 + (i * 7 % 90) as f64)
                .with_reliability(0.8 + (i % 5) as f64 * 0.04)
                .with_reputation((i % 10) as f64 / 10.0),
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_policy");
    for n in [4usize, 16, 64] {
        let ms = members(n);
        let refs: Vec<&Member> = ms.iter().collect();
        let history = ExecutionHistory::new();
        for m in &ms {
            history.start(&m.id);
            history.complete(&m.id, Duration::from_millis(20), Outcome::Success);
        }
        let req = MessageDoc::request("op");
        let policies: Vec<(&str, Box<dyn SelectionPolicy>)> = vec![
            ("round_robin", Box::new(RoundRobin::new())),
            ("random", Box::new(RandomChoice::new(5))),
            ("least_loaded", Box::new(LeastLoaded)),
            ("saw", Box::new(WeightedScoring::default())),
            ("history_aware", Box::new(HistoryAware::default())),
        ];
        for (name, policy) in policies {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let ctx = SelectionContext {
                        operation: "op",
                        request: &req,
                        history: &history,
                        liveness: None,
                    };
                    policy.select(&refs, &ctx).unwrap().id.clone()
                });
            });
        }
    }
    group.finish();
}

/// Workers on the bench executor (the acceptance pool size).
const WORKERS: usize = 4;
/// Invocations per measured burst.
const BURST: usize = 64;
/// Per-replica admission cap in the replica-scaling bench.
const REPLICA_CAP: usize = 8;
/// Simulated member service time in the replica-scaling bench.
const MEMBER_LATENCY: Duration = Duration::from_millis(4);

/// One community-task composite: `s0` delegates `op` to `community`.
fn community_chart(name: &str, community: &str) -> Statechart {
    StatechartBuilder::new(name)
        .variable("payload", ParamType::Str)
        .variable("served_by", ParamType::Str)
        .initial("s0")
        .task(
            TaskDef::new("s0", "Svc")
                .community(community, "op")
                .input("payload", "payload")
                .output("echoed_by", "served_by"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "s0", "f"))
        .build()
        .expect("well-formed chart")
}

/// Submits `BURST` instances on one deployment and collects every
/// completion, returning the worst `blocked_workers` reading sampled
/// between collections.
fn run_burst(dep: &Deployment, exec: &Executor) -> usize {
    for i in 0..BURST {
        dep.submit(MessageDoc::request("execute").with("payload", Value::str(format!("p{i}"))))
            .expect("submit accepted");
    }
    let mut max_blocked = 0;
    for _ in 0..BURST {
        let (_, outcome) = dep
            .collect_result(Duration::from_secs(30))
            .expect("completion arrives");
        outcome.expect("instance completes cleanly");
        max_blocked = max_blocked.max(exec.handle().blocked_workers());
    }
    max_blocked
}

/// 64 concurrent invocations through the real community server, echo
/// member, zero blocked workers on a 4-worker pool — on the instant
/// fabric and over real TCP sockets.
fn bench_concurrent_delegation(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_server");
    for transport in ["fabric", "tcp"] {
        group.bench_with_input(
            BenchmarkId::new("community_64_concurrent", transport),
            &transport,
            |b, &transport| {
                let exec = Executor::new(WORKERS);
                let net: Box<dyn Transport> = if transport == "fabric" {
                    Box::new(Network::new(NetworkConfig::instant()))
                } else {
                    Box::new(TcpTransport::new())
                };
                let member = ServiceHost::spawn_on(
                    &*net,
                    &exec.handle(),
                    "svc.echo-member",
                    Arc::new(EchoService::new("Echo")),
                )
                .expect("member spawns");
                let server = CommunityServer::spawn_on(
                    &*net,
                    &exec.handle(),
                    "community.bench",
                    Community::new("Bench", "").with_operation(OperationDef::new("op")),
                    Arc::new(RoundRobin::new()),
                    CommunityServerConfig {
                        member_timeout: Duration::from_secs(30),
                        ..Default::default()
                    },
                )
                .expect("community spawns");
                let admin = CommunityClient::connect(&*net, "admin", server.node().clone())
                    .expect("admin connects");
                admin
                    .join(&Member {
                        id: MemberId("echo".into()),
                        provider: "echo".into(),
                        endpoint: NodeId::new("svc.echo-member"),
                        qos: QosProfile::default(),
                    })
                    .expect("member joins");
                let mut deployer = Deployer::new(&*net).with_executor(exec.handle());
                deployer.invoke_timeout = Duration::from_secs(30);
                let dep = deployer
                    .deploy(&community_chart("Bench64", "bench"), &HashMap::new())
                    .expect("deploys");

                b.iter(|| {
                    let max_blocked = run_burst(&dep, &exec);
                    assert_eq!(max_blocked, 0, "delegation must never block a pool worker");
                });

                dep.undeploy();
                drop(admin);
                member.stop();
                server.stop();
                exec.shutdown();
            },
        );
    }
    group.finish();
}

/// A community member that replies after [`MEMBER_LATENCY`] via a timer —
/// a latency-bound service that never blocks a worker, so the burst's
/// drain rate is governed purely by how many delegations the community
/// tier admits at once.
struct SleepyMember {
    latency: Duration,
    next_token: u64,
    parked: HashMap<u64, Envelope>,
}

impl SleepyMember {
    fn new(latency: Duration) -> SleepyMember {
        SleepyMember {
            latency,
            next_token: 0,
            parked: HashMap::new(),
        }
    }
}

impl NodeLogic for SleepyMember {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        if env.kind == "invoke" {
            let token = self.next_token;
            self.next_token += 1;
            self.parked.insert(token, env);
            ctx.set_timer(self.latency, TimerToken(token));
        }
        Flow::Continue
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) -> Flow {
        if let Some(request) = self.parked.remove(&timer.0) {
            let op = MessageDoc::from_xml(&request.body)
                .map(|m| m.operation)
                .unwrap_or_else(|_| "op".to_string());
            let response = MessageDoc::response(op).with("echoed_by", Value::str("Sleepy"));
            let _ = ctx
                .endpoint()
                .reply(&request, "invoke.result", response.to_xml());
        }
        Flow::Continue
    }
}

/// 1 vs 2 admission-capped replicas draining the same latency-bound
/// burst: the 2-replica run should finish in roughly half the waves.
fn bench_replica_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_replicas");
    for replicas in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("burst64", replicas), &replicas, |b, &n| {
            let exec = Executor::new(WORKERS);
            let net = Network::new(NetworkConfig::instant());
            let member = exec.handle().spawn_node(
                net.connect("svc.sleepy-member").expect("member connects"),
                SleepyMember::new(MEMBER_LATENCY),
            );
            // Replicas must be live before deploy: the deployer probes
            // `community.sleepy.rN` names to build the replica set the
            // coordinator rendezvous-routes over.
            let servers = CommunityServer::spawn_replicas_on(
                &net,
                &exec.handle(),
                "community.sleepy",
                n,
                Community::new("Sleepy", "").with_operation(OperationDef::new("op")),
                Arc::new(RoundRobin::new()),
                CommunityServerConfig {
                    member_timeout: Duration::from_secs(30),
                    max_in_flight: REPLICA_CAP,
                    ..Default::default()
                },
            )
            .expect("replicas spawn");
            let admin = CommunityClient::connect(&net, "admin", servers[0].node().clone())
                .expect("admin connects");
            admin
                .join(&Member {
                    id: MemberId("sleepy".into()),
                    provider: "sleepy".into(),
                    endpoint: NodeId::new("svc.sleepy-member"),
                    qos: QosProfile::default(),
                })
                .expect("member joins");
            // The join landed on replica 0; the others hold their OWN
            // tables and learn the row via membership gossip — wait for
            // every pool before any delegation can pick an empty one.
            let deadline = Instant::now() + Duration::from_secs(10);
            while servers.iter().any(|s| s.member_count() == 0) {
                assert!(Instant::now() < deadline, "membership never gossiped");
                std::thread::sleep(Duration::from_millis(5));
            }
            let mut deployer = Deployer::new(&net).with_executor(exec.handle());
            deployer.invoke_timeout = Duration::from_secs(30);
            let dep = deployer
                .deploy(&community_chart("SleepyBurst", "sleepy"), &HashMap::new())
                .expect("deploys");

            b.iter(|| {
                let max_blocked = run_burst(&dep, &exec);
                assert_eq!(max_blocked, 0, "timer-based members block nobody");
            });

            dep.undeploy();
            drop(admin);
            member.stop();
            for server in servers {
                server.stop();
            }
            exec.shutdown();
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Cross-process replica scaling
// ---------------------------------------------------------------------------

/// Argument that flips this bench binary into "remote replica host" mode.
const XPROC_CHILD_FLAG: &str = "--xproc-replica-host";
/// Community used by the cross-process rows.
const XPROC_COMMUNITY: &str = "SleepyX";

fn xproc_config(directory: Option<selfserv_net::PeerDirectory>) -> CommunityServerConfig {
    CommunityServerConfig {
        member_timeout: Duration::from_secs(30),
        max_in_flight: REPLICA_CAP,
        replication: ReplicationConfig {
            directory,
            gossip_interval: Some(Duration::from_millis(50)),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The child process: joins the network through the seed address, hosts
/// replica 1 of the community, and parks until the parent kills it. Its
/// membership table starts empty and fills purely from gossip.
fn xproc_child(seed: std::net::SocketAddr) {
    let hub = TcpTransport::new();
    let disc = PeerDiscovery::spawn(
        &hub,
        DiscoveryConfig::default()
            .with_cadence(Duration::from_millis(50))
            .with_seed(seed),
    )
    .expect("child discovery spawns");
    let _replica = CommunityServer::spawn_replica_on(
        &hub,
        selfserv_runtime::shared(),
        naming::community(XPROC_COMMUNITY).as_str(),
        1,
        2,
        Community::new(XPROC_COMMUNITY, "").with_operation(OperationDef::new("op")),
        Arc::new(RoundRobin::new()),
        xproc_config(Some(disc.directory().clone())),
    )
    .expect("remote replica spawns");
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// Same burst, over real TCP, with 1 local replica vs 2 replicas of
/// which the second runs in a separate OS process spawned from this very
/// binary. No shared membership state exists in the 2-replica row: the
/// join lands on replica 0 and crosses the process boundary as gossip.
fn bench_replica_scaling_xproc(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_replicas_xproc");
    for replicas in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("burst64", replicas), &replicas, |b, &n| {
            let exec = Executor::new(WORKERS);
            let hub = TcpTransport::new();
            let disc = PeerDiscovery::spawn(
                &hub,
                DiscoveryConfig::default().with_cadence(Duration::from_millis(50)),
            )
            .expect("discovery spawns");
            let member = exec.handle().spawn_node(
                hub.connect(NodeId::new("svc.sleepyx-member"))
                    .expect("member connects"),
                SleepyMember::new(MEMBER_LATENCY),
            );
            let base = naming::community(XPROC_COMMUNITY);
            let replica0 = CommunityServer::spawn_replica_on(
                &hub,
                &exec.handle(),
                base.as_str(),
                0,
                n,
                Community::new(XPROC_COMMUNITY, "").with_operation(OperationDef::new("op")),
                Arc::new(RoundRobin::new()),
                xproc_config(Some(disc.directory().clone())),
            )
            .expect("local replica spawns");
            let mut child = None;
            if n == 2 {
                child = Some(ChildGuard(Some(
                    std::process::Command::new(std::env::current_exe().expect("own path"))
                        .arg(XPROC_CHILD_FLAG)
                        .arg(disc.seed_addr().to_string())
                        .spawn()
                        .expect("spawn remote replica process"),
                )));
                // The deployer's replica probe runs at deploy time — the
                // remote name must have gossiped in by then.
                assert!(
                    disc.wait_until_bound(
                        naming::community_replica(XPROC_COMMUNITY, 1).as_str(),
                        Duration::from_secs(30),
                    ),
                    "remote replica never surfaced via discovery"
                );
            }
            let admin = CommunityClient::connect(&hub, "admin", replica0.node().clone())
                .expect("admin connects");
            admin
                .join(&Member {
                    id: MemberId("sleepy".into()),
                    provider: "sleepy".into(),
                    endpoint: NodeId::new("svc.sleepyx-member"),
                    qos: QosProfile::default(),
                })
                .expect("member joins");
            let mut deployer = Deployer::new(&hub).with_executor(exec.handle());
            deployer.invoke_timeout = Duration::from_secs(30);
            let dep = deployer
                .deploy(
                    &community_chart("SleepyXBurst", XPROC_COMMUNITY),
                    &HashMap::new(),
                )
                .expect("deploys");
            // Warm-up probe doubles as readiness: in the 2-replica row it
            // only succeeds once the join has gossiped into the remote
            // process (an instance routed there would otherwise fault on
            // an empty member pool).
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let probe = dep.execute(
                    MessageDoc::request("execute").with("payload", Value::str("warmup")),
                    Duration::from_secs(1),
                );
                if probe.is_ok() {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "remote replica never became servable"
                );
            }

            b.iter(|| {
                let max_blocked = run_burst(&dep, &exec);
                assert_eq!(max_blocked, 0, "timer-based members block nobody");
            });

            dep.undeploy();
            drop(admin);
            drop(child);
            member.stop();
            replica0.stop();
            disc.stop();
            exec.shutdown();
        });
    }
    group.finish();
}

/// Kills the remote replica process on drop — a bench panic must not
/// leave an orphan parked on inherited stdio.
struct ChildGuard(Option<std::process::Child>);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20);
    targets = bench_policies, bench_concurrent_delegation, bench_replica_scaling,
        bench_replica_scaling_xproc
}

// Hand-rolled `criterion_main!` (the vendored macro expands to just the
// group calls): the binary doubles as the remote replica host when
// re-executed with [`XPROC_CHILD_FLAG`].
fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some(XPROC_CHILD_FLAG) {
        xproc_child(args[2].parse().expect("seed address argument"));
        return;
    }
    benches();
}
