//! E2 (Figure 2): editor/deployer pipeline — XML codec, validation, and
//! routing-table generation versus statechart size and topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfserv_statechart::{synth, Statechart};

fn bench_deployment(c: &mut Criterion) {
    let mut group = c.benchmark_group("deployer");
    for n in [5usize, 20, 80, 160] {
        let sc = synth::sequence(n);
        let xml = sc.to_xml().to_pretty_xml();
        group.bench_with_input(BenchmarkId::new("parse_validate_seq", n), &n, |b, _| {
            b.iter(|| {
                let parsed = Statechart::from_xml_str(&xml).unwrap();
                assert!(parsed.validate().is_ok());
                parsed
            });
        });
        group.bench_with_input(BenchmarkId::new("generate_tables_seq", n), &n, |b, _| {
            b.iter(|| selfserv_routing::generate(&sc).unwrap());
        });
    }
    for n in [4usize, 8, 16] {
        let par = synth::parallel(n);
        group.bench_with_input(
            BenchmarkId::new("generate_tables_parallel", n),
            &n,
            |b, _| {
                b.iter(|| selfserv_routing::generate(&par).unwrap());
            },
        );
        let ladder = synth::ladder(4, n / 2);
        group.bench_with_input(
            BenchmarkId::new("generate_tables_ladder4", n),
            &n,
            |b, _| {
                b.iter(|| selfserv_routing::generate(&ladder).unwrap());
            },
        );
    }
    group.finish();

    c.bench_function("travel_full_pipeline", |b| {
        let sc = selfserv_statechart::travel::travel_statechart();
        let xml = sc.to_xml().to_pretty_xml();
        b.iter(|| {
            let parsed = Statechart::from_xml_str(&xml).unwrap();
            assert!(parsed.validate().is_ok());
            selfserv_routing::generate(&parsed).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20);
    targets = bench_deployment
}
criterion_main!(benches);
