//! Transport seam microbenchmarks: the in-process fabric vs. real TCP
//! sockets, carrying identical envelopes.
//!
//! Five shapes, each over both transports (plus a TCP-only
//! syscall-coalescing check, `burst_syscalls`):
//! * round-trip latency — `Endpoint::rpc` ping/pong against an echo node.
//!   Replies demultiplex on the caller's persistent endpoint, so an rpc is
//!   two frames on pooled connections — no per-call endpoint, listener, or
//!   thread on any transport (on TCP this replaced a fresh listener +
//!   accept thread + reply connection per call, ~110µs and 3 fds);
//! * concurrent round trips — 64 rpcs in flight from one endpoint at
//!   once on scoped threads, exercising the correlation table under
//!   contention *plus* 64 thread spawn/joins per iteration;
//! * pooled concurrent round trips — the same 64-rpc burst issued as
//!   executor tasks on a pre-warmed worker pool, so no thread is spawned
//!   or joined inside the measurement and the correlation-table cost is
//!   isolated from harness thread churn;
//! * asynchronous concurrent round trips — the same 64-rpc burst issued
//!   continuation-passing (`NodeCtx::rpc_async`) from one node on a
//!   4-worker executor: zero threads park for the round trips (the pooled
//!   variant needs 64 workers because each rpc parks one), the shape of
//!   the continuation-passing coordinator's invocation burst;
//! * one-way throughput — a burst of notifications drained by the
//!   receiver, the shape of coordinator completion traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfserv_net::{Endpoint, Envelope, Network, NetworkConfig, NodeId, TcpTransport, Transport};
use selfserv_runtime::{Executor, Flow, NodeCtx, NodeLogic, RpcDone, RpcToken};
use selfserv_xml::Element;
use std::time::Duration;

const BURST: usize = 64;

/// Spawns an echo node answering `ping` with `pong` until `stop`.
fn spawn_echo(server: Endpoint) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        match server.recv() {
            Ok(req) if req.kind == "ping" => {
                let _ = server.reply(&req, "pong", Element::new("pong"));
            }
            Ok(req) if req.kind == "stop" => return,
            Ok(_) => {}
            Err(_) => return,
        }
    })
}

fn bench_transport(c: &mut Criterion, label: &str, net: &dyn Transport) {
    let echo = spawn_echo(net.connect(NodeId::new("echo")).expect("connect echo"));
    let client = net.connect(NodeId::new("client")).expect("connect client");
    let sink = net.connect(NodeId::new("sink")).expect("connect sink");

    let mut group = c.benchmark_group("transport");
    group.bench_with_input(BenchmarkId::new("round_trip", label), &(), |b, _| {
        b.iter(|| {
            client
                .rpc(
                    "echo",
                    "ping",
                    Element::new("ping"),
                    Duration::from_secs(10),
                )
                .expect("rpc completes")
        });
    });
    group.bench_with_input(BenchmarkId::new("rpc_64_concurrent", label), &(), |b, _| {
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..BURST {
                    let sender = client.sender();
                    s.spawn(move || {
                        sender
                            .rpc(
                                "echo",
                                "ping",
                                Element::new("ping"),
                                Duration::from_secs(10),
                            )
                            .expect("concurrent rpc completes")
                    });
                }
            });
        });
    });
    // Pre-warmed pool sized to the burst: every rpc parks a worker for
    // its round trip, none spawns a thread inside the measurement.
    let exec = Executor::new(BURST);
    let pool = exec.handle();
    group.bench_with_input(
        BenchmarkId::new("rpc_64_concurrent_pooled", label),
        &(),
        |b, _| {
            b.iter(|| {
                let (done_tx, done_rx) = crossbeam::channel::unbounded();
                for _ in 0..BURST {
                    let sender = client.sender();
                    let done = done_tx.clone();
                    pool.spawn_task(move || {
                        sender
                            .rpc(
                                "echo",
                                "ping",
                                Element::new("ping"),
                                Duration::from_secs(10),
                            )
                            .expect("pooled rpc completes");
                        let _ = done.send(());
                    });
                }
                for _ in 0..BURST {
                    done_rx
                        .recv_timeout(Duration::from_secs(10))
                        .expect("pooled burst completes");
                }
            });
        },
    );
    // The same burst continuation-passing: a single node issues all 64
    // requests via rpc_async and replies "done" when the last completion
    // arrives. Runs on a small 4-worker pool — nothing parks, so the
    // burst doesn't need burst-many workers.
    let async_exec = Executor::new(4);
    let burster = async_exec.handle().spawn_node(
        net.connect(NodeId::new("burster"))
            .expect("connect burster"),
        Burster {
            awaiting: 0,
            report_to: None,
        },
    );
    group.bench_with_input(
        BenchmarkId::new("rpc_64_concurrent_async", label),
        &(),
        |b, _| {
            b.iter(|| {
                client
                    .rpc("burster", "go", Element::new("go"), Duration::from_secs(10))
                    .expect("async burst completes")
            });
        },
    );
    group.bench_with_input(BenchmarkId::new("burst_one_way", label), &(), |b, _| {
        b.iter(|| {
            for i in 0..BURST {
                client
                    .send(
                        "sink",
                        "notify",
                        Element::new("n").with_attr("i", i.to_string()),
                    )
                    .expect("send accepted");
            }
            for _ in 0..BURST {
                sink.recv_timeout(Duration::from_secs(10))
                    .expect("delivered");
            }
        });
    });
    group.finish();
    exec.shutdown();
    burster.stop();
    async_exec.shutdown();

    let _ = client.send("echo", "stop", Element::new("stop"));
    let _ = echo.join();
}

/// On `go`, fires [`BURST`] concurrent `rpc_async` pings at the echo node
/// and answers the requester once the last completion arrives.
struct Burster {
    awaiting: usize,
    report_to: Option<Envelope>,
}

impl NodeLogic for Burster {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        if env.kind == "go" {
            self.awaiting = BURST;
            self.report_to = Some(env);
            for i in 0..BURST {
                ctx.rpc_async(
                    "echo",
                    "ping",
                    Element::new("ping"),
                    Duration::from_secs(10),
                    RpcToken(i as u64),
                );
            }
        }
        Flow::Continue
    }

    fn on_rpc_done(&mut self, ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
        done.result.expect("echo answers");
        self.awaiting -= 1;
        if self.awaiting == 0 {
            if let Some(report_to) = self.report_to.take() {
                let _ = ctx
                    .endpoint()
                    .reply(&report_to, "done", Element::new("done"));
            }
        }
        Flow::Continue
    }
}

fn bench_fabric_vs_tcp(c: &mut Criterion) {
    let fabric = Network::new(NetworkConfig::instant());
    bench_transport(c, "fabric", &fabric);
    let tcp = TcpTransport::new();
    bench_transport(c, "tcp", &tcp);
}

/// Syscall-coalescing proof for the queued TCP write path: a 64-frame
/// one-way burst must gather into at most 8 vectored writes (the old
/// write-per-frame path under the pool mutex cost ~128 write syscalls
/// plus a flush each). Uses the concrete [`TcpTransport`] for its
/// [`TcpTransport::io_stats`] counters, and reports the measured
/// writev-calls-per-burst average over the whole criterion run.
fn bench_burst_syscalls(c: &mut Criterion) {
    let tcp = TcpTransport::new();
    let client = Transport::connect(&tcp, NodeId::new("client")).expect("connect client");
    let sink = Transport::connect(&tcp, NodeId::new("sink")).expect("connect sink");
    let burst = || {
        for i in 0..BURST {
            client
                .send(
                    "sink",
                    "notify",
                    Element::new("n").with_attr("i", i.to_string()),
                )
                .expect("send accepted");
        }
        for _ in 0..BURST {
            sink.recv_timeout(Duration::from_secs(10))
                .expect("delivered");
        }
    };
    burst(); // warm the pooled connection and its writer thread
             // Coalescing assertion: scheduling noise can inflate one burst, so
             // take the best over a handful — the gather heuristic must reach ≤ 8
             // writevs for a 64-frame burst at least once under warm conditions.
    let mut best = u64::MAX;
    for _ in 0..10 {
        let before = tcp.io_stats();
        burst();
        let delta = tcp.io_stats().delta_since(&before);
        assert_eq!(delta.frames_sent, BURST as u64, "all frames hit the wire");
        best = best.min(delta.writev_calls);
    }
    assert!(
        best <= 8,
        "a warm 64-frame burst cost {best} writev calls (want <= 8)"
    );
    let start = tcp.io_stats();
    let mut bursts = 0u64;
    let mut group = c.benchmark_group("transport_io");
    group.bench_function("burst_syscalls/tcp", |b| {
        b.iter(|| {
            bursts += 1;
            burst();
        });
    });
    group.finish();
    let delta = tcp.io_stats().delta_since(&start);
    eprintln!(
        "burst_syscalls: {} bursts of {} frames, {:.2} writev calls/burst, \
         {:.1} frames/writev, max batch {} frames",
        bursts,
        BURST,
        delta.writev_calls as f64 / bursts as f64,
        delta.frames_sent as f64 / delta.writev_calls as f64,
        delta.max_batch_frames,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(30);
    targets = bench_fabric_vs_tcp, bench_burst_syscalls
}
criterion_main!(benches);
