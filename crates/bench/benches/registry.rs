//! E1 (Figure 1): discovery-engine operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfserv_bench::seed_registry;
use selfserv_registry::FindQuery;

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_find");
    for size in [100usize, 1_000, 10_000] {
        let reg = seed_registry(size);
        group.bench_with_input(BenchmarkId::new("by_operation", size), &size, |b, _| {
            let mut q = 0usize;
            b.iter(|| {
                q = (q + 1) % 50;
                reg.find(&FindQuery::any().operation(format!("op{q}")))
            });
        });
        group.bench_with_input(BenchmarkId::new("by_name_exact", size), &size, |b, _| {
            let mut q = 0usize;
            b.iter(|| {
                q = (q + 7) % size;
                reg.find(&FindQuery::any().service_name(format!("Service{q:05}")))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("by_provider_prefix", size),
            &size,
            |b, _| {
                b.iter(|| reg.find(&FindQuery::any().provider("Provider000")));
            },
        );
    }
    group.finish();

    c.bench_function("registry_publish_one", |b| {
        let reg = seed_registry(1_000);
        let biz = reg.save_business("BenchCo", "x").key;
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let desc = selfserv_wsdl::ServiceDescription::new(format!("Extra{i}"), "BenchCo")
                .with_operation(selfserv_wsdl::OperationDef::new("op"))
                .with_binding(selfserv_wsdl::Binding::fabric("svc.x"));
            reg.save_service(&biz, "bench", desc, None).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20);
    targets = bench_registry
}
criterion_main!(benches);
