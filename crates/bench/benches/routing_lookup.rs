//! E7: per-notification routing-table decision cost — the "no complex
//! scheduling algorithm" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfserv_routing::NotificationLabel;
use selfserv_statechart::synth;

fn bench_routing_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_lookup");
    for n in [5usize, 40, 160] {
        let sc = synth::sequence(n);
        let plan = selfserv_routing::generate(&sc).unwrap();
        let mid = format!("s{}", n / 2);
        let table = plan.table(&mid.as_str().into()).unwrap().clone();
        let seen = vec![NotificationLabel::Completed(
            format!("s{}", n / 2 - 1).as_str().into(),
        )];
        group.bench_with_input(BenchmarkId::new("linear_precondition", n), &n, |b, _| {
            b.iter(|| {
                table
                    .preconditions
                    .iter()
                    .position(|p| p.satisfied_by(&seen))
            })
        });
    }
    for w in [2usize, 8, 16] {
        let sc = synth::ladder(w, 1);
        let plan = selfserv_routing::generate(&sc).unwrap();
        let fin = plan.wrapper.finish_alternatives[0].clone();
        let all = fin.labels.clone();
        group.bench_with_input(BenchmarkId::new("and_join", w), &w, |b, _| {
            b.iter(|| fin.satisfied_by(&all))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20);
    targets = bench_routing_lookup
}
criterion_main!(benches);
