//! E4: peer-to-peer coordination vs the centralized engine, per-instance
//! latency as composition width grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfserv_bench::{deploy_central, deploy_p2p, instant_net, synth_input};
use selfserv_statechart::synth;
use std::time::Duration;

fn bench_p2p_vs_central(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2p_vs_central");
    for n in [2usize, 8, 32] {
        let sc = synth::sequence(n);
        {
            let net = instant_net();
            let dep = deploy_p2p(&net, &sc, Duration::ZERO);
            group.bench_with_input(BenchmarkId::new("p2p_sequence", n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    i += 1;
                    dep.execute(synth_input(i), Duration::from_secs(30))
                        .unwrap()
                });
            });
        }
        {
            let net = instant_net();
            let (_hosts, central) = deploy_central(&net, &sc, Duration::ZERO);
            group.bench_with_input(BenchmarkId::new("central_sequence", n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    i += 1;
                    central
                        .execute(synth_input(i), Duration::from_secs(30))
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20);
    targets = bench_p2p_vs_central
}
criterion_main!(benches);
