//! Shared workload generators and measurement harness for the SELF-SERV
//! experiments (used by both the Criterion benches and the `experiments`
//! binary that regenerates the paper-shaped tables).

use selfserv_core::{
    CentralConfig, CentralHandle, CentralizedOrchestrator, Deployer, Deployment, EchoService,
    FunctionLibrary, ServiceBackend, ServiceHost, ServiceHostHandle, SyntheticService,
};
use selfserv_expr::Value;
use selfserv_net::{MetricsSnapshot, Network, NetworkConfig};
use selfserv_registry::UddiRegistry;
use selfserv_statechart::{synth, Statechart};
use selfserv_wsdl::{Binding, MessageDoc, OperationDef, Param, ParamType, ServiceDescription};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds backends for every `SynthService<i>` referenced by a synthetic
/// chart, echoing inputs with the given simulated service time.
pub fn synth_backends(n: usize, latency: Duration) -> HashMap<String, Arc<dyn ServiceBackend>> {
    let mut map: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for i in 0..n {
        let name = synth::synth_service_name(i);
        let backend: Arc<dyn ServiceBackend> = if latency.is_zero() {
            Arc::new(EchoService::new(name.clone()))
        } else {
            Arc::new(SyntheticService::new(name.clone()).with_latency(latency))
        };
        map.insert(name, backend);
    }
    map
}

/// Number of synthetic services a chart references.
pub fn synth_service_count(sc: &Statechart) -> usize {
    sc.referenced_services().len()
}

/// Deploys a synthetic chart peer-to-peer and returns the deployment.
pub fn deploy_p2p(net: &Network, sc: &Statechart, service_latency: Duration) -> Deployment {
    let backends = synth_backends(synth_service_count(sc), service_latency);
    Deployer::new(net)
        .with_functions(FunctionLibrary::new())
        .deploy(sc, &backends)
        .expect("p2p deployment")
}

/// Spawns remote hosts plus the centralized engine for the same chart.
pub fn deploy_central(
    net: &Network,
    sc: &Statechart,
    service_latency: Duration,
) -> (Vec<ServiceHostHandle>, CentralHandle) {
    let mut hosts = Vec::new();
    let mut service_nodes = HashMap::new();
    for (i, name) in sc.referenced_services().into_iter().enumerate() {
        let _ = i;
        let node = selfserv_core::naming::service_host(&name);
        let backend: Arc<dyn ServiceBackend> = if service_latency.is_zero() {
            Arc::new(EchoService::new(name.clone()))
        } else {
            Arc::new(SyntheticService::new(name.clone()).with_latency(service_latency))
        };
        hosts.push(ServiceHost::spawn(net, node.clone(), backend).expect("host"));
        service_nodes.insert(name, node);
    }
    let central = CentralizedOrchestrator::spawn(
        net,
        CentralConfig {
            statechart: sc.clone(),
            functions: FunctionLibrary::new(),
            service_nodes,
            community_nodes: HashMap::new(),
        },
    )
    .expect("central engine");
    (hosts, central)
}

/// The standard input for synthetic-chart executions.
pub fn synth_input(i: usize) -> MessageDoc {
    MessageDoc::request("execute")
        .with("payload", Value::str(format!("case-{i}")))
        .with("branch", Value::Int((i % 3) as i64))
}

/// Latency/throughput statistics of one batch run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Instances completed successfully.
    pub completed: usize,
    /// Instances that faulted or timed out.
    pub failed: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Sorted per-instance latencies (successes only).
    pub latencies: Vec<Duration>,
}

impl RunStats {
    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32
    }

    /// Latency percentile (0.0–1.0).
    pub fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((self.latencies.len() as f64 - 1.0) * p).round() as usize;
        self.latencies[idx]
    }

    /// Completed instances per second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.wall.as_secs_f64()
    }

    /// Success fraction.
    pub fn success_rate(&self) -> f64 {
        let total = self.completed + self.failed;
        if total == 0 {
            0.0
        } else {
            self.completed as f64 / total as f64
        }
    }
}

/// Runs `total` executions through `execute` with `concurrency` worker
/// threads; `execute` receives the case index.
pub fn run_batch<F>(total: usize, concurrency: usize, execute: F) -> RunStats
where
    F: Fn(usize) -> Result<MessageDoc, selfserv_core::ExecError> + Send + Sync,
{
    let execute = &execute;
    let started = Instant::now();
    let results: Vec<(bool, Duration)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..concurrency {
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                let mut i = w;
                while i < total {
                    let t0 = Instant::now();
                    let ok = execute(i).is_ok();
                    local.push((ok, t0.elapsed()));
                    i += concurrency;
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall = started.elapsed();
    let mut latencies: Vec<Duration> = results
        .iter()
        .filter(|(ok, _)| *ok)
        .map(|(_, d)| *d)
        .collect();
    latencies.sort();
    let completed = latencies.len();
    RunStats {
        completed,
        failed: results.len() - completed,
        wall,
        latencies,
    }
}

/// Seeds a registry with `n` synthetic services across `n / 10 + 1`
/// providers, with realistic name/operation variety.
pub fn seed_registry(n: usize) -> UddiRegistry {
    let reg = UddiRegistry::new();
    let categories = [
        "flight-booking",
        "accommodation",
        "car-rental",
        "insurance",
        "search",
    ];
    let mut businesses = Vec::new();
    for b in 0..(n / 10 + 1) {
        businesses.push(
            reg.save_business(format!("Provider{b:04}"), "ops@example")
                .key,
        );
    }
    for i in 0..n {
        let business = &businesses[i % businesses.len()];
        let desc = ServiceDescription::new(
            format!("Service{i:05}"),
            format!("Provider{:04}", i % businesses.len()),
        )
        .with_operation(
            OperationDef::new(format!("op{}", i % 50))
                .with_input(Param::required("arg", ParamType::Str)),
        )
        .with_operation(OperationDef::new("describe"))
        .with_binding(Binding::fabric(format!("svc.n{i}")));
        reg.save_service(business, categories[i % categories.len()], desc, None)
            .expect("seed publish");
    }
    reg
}

/// A fresh instant-latency fabric with a fixed seed.
pub fn instant_net() -> Network {
    Network::new(NetworkConfig::instant())
}

/// Pretty-prints an aligned table: `header` then rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(4)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Microseconds with one decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Summarises the busiest node among those whose name matches `pred`.
pub fn busiest(metrics: &MetricsSnapshot, pred: impl Fn(&str) -> bool) -> (String, u64, u64) {
    match metrics.busiest_matching(pred) {
        Some(n) => (n.node.as_str().to_string(), n.handled(), n.bytes_handled()),
        None => ("-".to_string(), 0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_batch_counts_and_orders() {
        let stats = run_batch(20, 4, |i| {
            if i % 5 == 0 {
                Err(selfserv_core::ExecError::Timeout)
            } else {
                Ok(MessageDoc::response("execute"))
            }
        });
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.failed, 4);
        assert!((stats.success_rate() - 0.8).abs() < 1e-9);
        assert!(stats.percentile(0.5) >= Duration::ZERO);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn seed_registry_sizes() {
        let reg = seed_registry(100);
        assert_eq!(reg.service_count(), 100);
        assert!(reg.business_count() >= 10);
        let hits = reg.find(&selfserv_registry::FindQuery::any().operation("op1"));
        assert!(!hits.is_empty());
    }

    #[test]
    fn p2p_and_central_harness_agree() {
        let sc = synth::sequence(3);
        let net = instant_net();
        let dep = deploy_p2p(&net, &sc, Duration::ZERO);
        let out1 = dep.execute(synth_input(1), Duration::from_secs(5)).unwrap();

        let net2 = instant_net();
        let (_hosts, central) = deploy_central(&net2, &sc, Duration::ZERO);
        let out2 = central
            .execute(synth_input(1), Duration::from_secs(5))
            .unwrap();
        assert_eq!(out1.get_str("payload"), out2.get_str("payload"));
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(ms(Duration::from_millis(1)), "1.00");
        assert_eq!(us(Duration::from_micros(5)), "5.0");
    }
}
