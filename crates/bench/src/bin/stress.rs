//! `selfserv-stress` — sustained-load stress harness with live Prometheus
//! scraping.
//!
//! Spawns N in-process [`TcpTransport`] hubs (real sockets, real frames)
//! bootstrapped through discovery from hub 0's seed address. Each hub runs
//! its own executor, discovery node, execution monitor, and metrics
//! registry with an HTTP `/metrics` endpoint. Every hub owns one community
//! backed by event-driven delay members, but its replicas are **pinned to
//! distinct hubs** (replica `j` of community `i` lives on hub `(i+j)%N`)
//! with independent membership tables kept convergent by gossip. Composite
//! charts from the workload corpus (`--corpus`) are deployed per hub with
//! every task rebound to the *neighbor* hub's community, so all invocation
//! traffic crosses TCP between hubs; `--churn` cycles members during load.
//!
//! Client populations drive the deployments either **closed-loop** (a fixed
//! in-flight window per deployment, refilled on every completion — the mode
//! that holds N concurrent composite executions open) or **open-loop**
//! (fixed submission rate regardless of completions). A scraper thread
//! polls every hub's `/metrics` endpoint for the whole run — latency
//! quantiles, throughput counters, and drop/duplicate counts are read the
//! same way an external Prometheus would read them — and the summary goes
//! to `BENCH_stress.json`.
//!
//! ```text
//! cargo run --release -p selfserv-bench --bin selfserv-stress -- \
//!     --hubs 2 --duration-secs 20 --target-inflight 10000
//! ```

use selfserv_community::{
    Community, CommunityClient, CommunityMetrics, CommunityServer, CommunityServerConfig,
    CommunityServerHandle, Member, MemberId, MembershipGossip, QosProfile, ReplicationConfig,
    RoundRobin,
};
use selfserv_core::{
    naming, Deployer, Deployment, ExecutionMonitor, MonitorMetrics, MonitorOptions,
};
use selfserv_discovery::{DiscoveryConfig, PeerDiscovery};
use selfserv_expr::Value;
use selfserv_net::{Envelope, GossipPayloads, MessageId, NodeId, TcpTransport, Transport};
use selfserv_obs::{http_get, parse, MetricsServer, Registry};
use selfserv_runtime::{Executor, Flow, NodeCtx, NodeHandle, NodeLogic, TimerToken};
use selfserv_statechart::{
    synth, ServiceBinding, StateKind, Statechart, StatechartBuilder, TaskDef, TransitionDef,
};
use selfserv_wsdl::{MessageDoc, ParamType};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Config {
    hubs: usize,
    duration: Duration,
    /// Closed loop: total in-flight window across all hubs and charts.
    target_inflight: usize,
    /// Open loop: total submissions per second across all drivers.
    rate: f64,
    open_loop: bool,
    msg_bytes: usize,
    fanout: usize,
    seq_len: usize,
    hold: Duration,
    members: usize,
    replicas: usize,
    community_cap: usize,
    scrape_every: Duration,
    workers_per_hub: usize,
    drain: Duration,
    min_throughput: f64,
    /// Workload family set: basic | deep | wide | loop | event | all.
    corpus: String,
    /// Cycle an extra member through join/leave on every community during
    /// the measured window.
    churn: bool,
    out: String,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hubs: 2,
            duration: Duration::from_secs(10),
            target_inflight: 10_000,
            rate: 2_000.0,
            open_loop: false,
            msg_bytes: 64,
            fanout: 2,
            seq_len: 3,
            hold: Duration::from_millis(5),
            members: 4,
            replicas: 2,
            community_cap: usize::MAX,
            scrape_every: Duration::from_millis(500),
            workers_per_hub: 2,
            drain: Duration::from_secs(60),
            min_throughput: 0.0,
            corpus: "basic".to_string(),
            churn: false,
            out: "BENCH_stress.json".to_string(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "selfserv-stress: sustained-load harness over N TCP hubs\n\
         \n\
         --hubs N              TCP hubs (default 2)\n\
         --duration-secs S     measured window (default 10)\n\
         --target-inflight N   closed-loop window, total (default 10000)\n\
         --mode closed|open    driver mode (default closed)\n\
         --rate R              open-loop submissions/sec, total (default 2000)\n\
         --msg-bytes B         payload padding per instance (default 64)\n\
         --fanout K            parallel-chart width, 0 disables it (default 2)\n\
         --seq-len K           sequence-chart length (default 3)\n\
         --hold-ms MS          member service time (default 5)\n\
         --members M           delay members per community (default 4)\n\
         --replicas R          community replicas per hub (default 2)\n\
         --community-cap N     max_in_flight per community replica (default unbounded)\n\
         --scrape-ms MS        /metrics scrape period (default 500)\n\
         --workers W           executor workers per hub (default 2)\n\
         --min-throughput T    exit nonzero below T completed/sec (default off)\n\
         --corpus FAMILY       workload families: basic|deep|wide|loop|event|all (default basic)\n\
         --churn               cycle an extra member join/leave per community during load\n\
         --out PATH            summary path (default BENCH_stress.json)"
    );
    std::process::exit(2)
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i - 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        match flag.as_str() {
            "--hubs" => cfg.hubs = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration-secs" => {
                cfg.duration =
                    Duration::from_secs_f64(next(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--target-inflight" => {
                cfg.target_inflight = next(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--mode" => match next(&mut i).as_str() {
                "closed" => cfg.open_loop = false,
                "open" => cfg.open_loop = true,
                _ => usage(),
            },
            "--rate" => cfg.rate = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--msg-bytes" => cfg.msg_bytes = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fanout" => cfg.fanout = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seq-len" => cfg.seq_len = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--hold-ms" => {
                cfg.hold = Duration::from_millis(next(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--members" => cfg.members = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--replicas" => cfg.replicas = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--community-cap" => {
                cfg.community_cap = next(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--scrape-ms" => {
                cfg.scrape_every =
                    Duration::from_millis(next(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--workers" => cfg.workers_per_hub = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--min-throughput" => {
                cfg.min_throughput = next(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--corpus" => cfg.corpus = next(&mut i),
            "--churn" => cfg.churn = true,
            "--out" => cfg.out = next(&mut i),
            _ => usage(),
        }
    }
    if cfg.hubs == 0 || cfg.seq_len == 0 || cfg.members == 0 || cfg.replicas == 0 {
        usage();
    }
    if !matches!(
        cfg.corpus.as_str(),
        "basic" | "deep" | "wide" | "loop" | "event" | "all"
    ) {
        usage();
    }
    cfg
}

// ---------------------------------------------------------------------------
// Event-driven delay member: a community member that answers every `invoke`
// roughly `hold` after it arrived, from a timer — no thread ever parks for
// the service time, so thousands of in-flight invocations cost zero blocked
// workers (the property the executor gauges must show under load).
// ---------------------------------------------------------------------------

struct DelayMember {
    name: String,
    hold: Duration,
    holding: Vec<Envelope>,
    armed: bool,
}

const FLUSH: TimerToken = TimerToken(1);

impl DelayMember {
    fn answer(&self, ctx: &NodeCtx<'_>, request: &Envelope) {
        // Echo every request param back (the charts map `payload` through
        // each task) and sign the response.
        let reply = match MessageDoc::from_xml(&request.body) {
            Ok(msg) => {
                let mut out = MessageDoc::response(msg.operation.clone());
                for (k, v) in msg.iter() {
                    out.set(k, v.clone());
                }
                out.set("served_by", Value::str(self.name.clone()));
                out
            }
            Err(e) => MessageDoc::fault("invoke", e.to_string()),
        };
        let _ = ctx.endpoint().reply(
            request,
            selfserv_community::kinds::MEMBER_RESULT,
            reply.to_xml(),
        );
    }
}

impl NodeLogic for DelayMember {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        if env.kind != selfserv_community::kinds::MEMBER_INVOKE {
            return Flow::Continue;
        }
        if self.hold.is_zero() {
            self.answer(ctx, &env);
            return Flow::Continue;
        }
        self.holding.push(env);
        if !self.armed {
            self.armed = true;
            ctx.set_timer(self.hold, FLUSH);
        }
        Flow::Continue
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: TimerToken) -> Flow {
        self.armed = false;
        let held = std::mem::take(&mut self.holding);
        for request in &held {
            self.answer(ctx, request);
        }
        Flow::Continue
    }
}

// ---------------------------------------------------------------------------
// Per-hub assembly
// ---------------------------------------------------------------------------

struct Hub {
    index: usize,
    hub: TcpTransport,
    exec: Executor,
    registry: Registry,
    metrics_addr: SocketAddr,
    _metrics_server: MetricsServer,
    disc: selfserv_discovery::DiscoveryHandle,
    _monitor: selfserv_core::MonitorHandle,
    /// Gossip-payload registry shared with this hub's discovery node;
    /// community replicas hosted here register their membership streams
    /// into it after spawn (register-later).
    payloads: GossipPayloads,
    /// Community replicas HOSTED on this hub, tagged with the community
    /// name they belong to — with cross-hub pinning a hub hosts one
    /// replica of several different communities.
    community: Vec<(String, CommunityServerHandle)>,
    _members: Vec<NodeHandle>,
    deployments: Vec<(String, Deployment)>,
}

fn community_name(hub: usize) -> String {
    format!("stress-h{hub}")
}

/// Rewrites every `Service` task binding of a synth chart to the given
/// community (operation preserved) so executions delegate instead of
/// invoking co-located backends.
fn rebind_to_community(sc: &Statechart, community: &str) -> Statechart {
    let mut out = sc.clone();
    let ids: Vec<_> = out.states().map(|s| s.id.clone()).collect();
    for id in ids {
        let Some(state) = out.state(&id) else {
            continue;
        };
        let mut state = state.clone();
        if let StateKind::Task(spec) = &mut state.kind {
            if let ServiceBinding::Service { operation, .. } = &spec.binding {
                spec.binding = ServiceBinding::Community {
                    community: community.to_string(),
                    operation: operation.clone(),
                };
                out.insert_state(state);
            }
        }
    }
    out
}

/// Loop-heavy family: a cyclic Work → Check chart that re-enters the task
/// `iterations` times — each composite execution costs `iterations`
/// delegations plus the transition evaluations between them.
fn loop_chart(iterations: i64) -> Statechart {
    StatechartBuilder::new(format!("StressLoop{iterations}"))
        .variable("payload", ParamType::Str)
        .variable("branch", ParamType::Int)
        .variable_init("attempts", ParamType::Int, Value::Int(0))
        .initial("work")
        .task(
            TaskDef::new("work", "Work")
                .service("LoopWorker", "run")
                .input("payload", "payload")
                .output("payload", "payload"),
        )
        .choice("check", "Check")
        .final_state("done")
        .transition(TransitionDef::new("t1", "work", "check").action("attempts", "attempts + 1"))
        .transition(
            TransitionDef::new("t_retry", "check", "work")
                .guard(format!("attempts < {iterations}")),
        )
        .transition(
            TransitionDef::new("t_done", "check", "done")
                .guard(format!("attempts >= {iterations}")),
        )
        .build()
        .expect("loop chart is well-formed")
}

/// Event-driven family: the second task is gated on an external `release`
/// event, so every instance parks mid-flight until a pumper thread raises
/// it — the ECA path under sustained load. The name prefix is how `main`
/// finds the deployments that need pumping.
fn event_chart() -> Statechart {
    StatechartBuilder::new("event-gated")
        .variable("payload", ParamType::Str)
        .variable("branch", ParamType::Int)
        .initial("prepare")
        .task(
            TaskDef::new("prepare", "Prepare")
                .service("Prep", "run")
                .input("payload", "payload")
                .output("payload", "payload"),
        )
        .task(
            TaskDef::new("ship", "Ship")
                .service("Ship", "run")
                .input("payload", "payload")
                .output("payload", "payload"),
        )
        .final_state("done")
        .transition(TransitionDef::new("t1", "prepare", "ship").event("release"))
        .transition(TransitionDef::new("t2", "ship", "done"))
        .build()
        .expect("event chart is well-formed")
}

/// The workload-corpus charts one hub deploys, selected by `--corpus` and
/// renamed per hub so wrapper and coordinator node names stay unique in
/// the gossiped namespace.
fn hub_charts(cfg: &Config, hub: usize) -> Vec<Statechart> {
    let corpus = cfg.corpus.as_str();
    let mut charts = Vec::new();
    if matches!(corpus, "basic" | "all") {
        charts.push(synth::sequence(cfg.seq_len));
        if cfg.fanout >= 2 {
            charts.push(synth::parallel(cfg.fanout));
        }
    }
    if matches!(corpus, "deep" | "all") {
        charts.push(synth::nested(3));
    }
    if matches!(corpus, "wide" | "all") {
        charts.push(synth::ladder(cfg.fanout.max(2), 2));
    }
    if matches!(corpus, "loop" | "all") {
        charts.push(loop_chart(cfg.seq_len.max(2) as i64));
    }
    if matches!(corpus, "event" | "all") {
        charts.push(event_chart());
    }
    for sc in &mut charts {
        sc.name = format!("{}-h{hub}", sc.name);
    }
    charts
}

fn spawn_hub(cfg: &Config, index: usize, seed: Option<SocketAddr>) -> Hub {
    let hub = TcpTransport::new();
    let exec = Executor::new(cfg.workers_per_hub);
    let registry = Registry::new();
    let hub_label = format!("h{index}");
    let labels: [(&str, &str); 1] = [("hub", hub_label.as_str())];

    let payloads = GossipPayloads::new();
    let mut disc_cfg = DiscoveryConfig::default().with_payloads(payloads.clone());
    if let Some(seed) = seed {
        disc_cfg = disc_cfg.with_seed(seed);
    }
    let disc = PeerDiscovery::spawn_on(&hub, &exec.handle(), disc_cfg).expect("discovery spawns");

    hub.register_metrics(&registry, &labels);
    exec.handle().register_metrics(&registry, &labels);
    disc.register_metrics(&registry, &labels);

    let monitor_metrics = MonitorMetrics::register(&registry, &labels);
    let monitor = ExecutionMonitor::spawn_with(
        &hub,
        &exec.handle(),
        &format!("monitor.h{index}"),
        MonitorOptions {
            metrics: Some(monitor_metrics),
            max_traces: Some(4096),
        },
    )
    .expect("monitor spawns");

    // Event-driven member nodes. They JOIN nothing yet — membership is
    // registered through `CommunityClient` once the (cross-hub pinned)
    // community replicas are up, so it flows through the replicated
    // membership tables instead of a shared `Community`.
    let mut members = Vec::new();
    let mut member_nodes: Vec<String> = (0..cfg.members)
        .map(|m| format!("member.h{index}.m{m}"))
        .collect();
    if cfg.churn {
        member_nodes.push(format!("member.h{index}.churn"));
    }
    for node in member_nodes {
        let endpoint = Transport::connect(&hub, NodeId::new(&node)).expect("member connects");
        members.push(exec.handle().spawn_node(
            endpoint,
            DelayMember {
                name: node.clone(),
                hold: cfg.hold,
                holding: Vec::new(),
                armed: false,
            },
        ));
    }

    let metrics_server =
        MetricsServer::serve(registry.clone(), "127.0.0.1:0").expect("metrics endpoint binds");
    let metrics_addr = metrics_server.addr();

    Hub {
        index,
        hub,
        exec,
        registry,
        metrics_addr,
        _metrics_server: metrics_server,
        disc,
        _monitor: monitor,
        payloads,
        community: Vec::new(),
        _members: members,
        deployments: Vec::new(),
    }
}

/// Spawns every community with its replicas PINNED to distinct hubs:
/// replica `j` of hub `i`'s community runs on hub `(i + j) % hubs`. No two
/// replicas of one community share membership state — they converge
/// through replica anti-entropy (`community.msync` over the fabric) plus
/// the discovery gossip payload channel each host hub carries.
fn spawn_communities(cfg: &Config, hubs: &mut [Hub]) {
    let n = hubs.len();
    for i in 0..n {
        let name = community_name(i);
        let base = naming::community(&name);
        for j in 0..cfg.replicas {
            let host = &mut hubs[(i + j) % n];
            let hub_label = format!("h{}", host.index);
            let replica_label = j.to_string();
            let labels = [
                ("hub", hub_label.as_str()),
                ("community", name.as_str()),
                ("replica", replica_label.as_str()),
            ];
            let metrics = CommunityMetrics::register(&host.registry, &labels);
            let replica = CommunityServer::spawn_replica_on(
                &host.hub,
                &host.exec.handle(),
                base.as_str(),
                j,
                cfg.replicas,
                Community::new(name.clone(), "stress workload community"),
                Arc::new(RoundRobin::new()),
                CommunityServerConfig {
                    mode: selfserv_community::DelegationMode::Proxy,
                    member_timeout: Duration::from_secs(60),
                    max_attempts: 2,
                    max_in_flight: cfg.community_cap,
                    liveness: Some(host.disc.liveness()),
                    metrics: Some(metrics),
                    replication: ReplicationConfig {
                        peers: Vec::new(),
                        directory: Some(host.disc.directory().clone()),
                        gossip_interval: None,
                    },
                },
            )
            .expect("community replica spawns");
            replica.register_metrics(&host.registry, &labels);
            host.payloads.register(MembershipGossip::new(
                base.as_str(),
                Arc::clone(replica.membership()),
            ));
            host.community.push((name.clone(), replica));
        }
    }
}

/// Registers each hub's member nodes with its community through the rpc
/// path (replica 0 is always local to the owning hub), then waits until
/// every replica — including the ones hosted on OTHER hubs — has learned
/// the full member set through membership gossip.
fn join_members(cfg: &Config, hubs: &[Hub]) {
    for (i, hub) in hubs.iter().enumerate() {
        let client = CommunityClient::connect(
            &hub.hub,
            &format!("ctl.join.h{i}"),
            naming::community(&community_name(i)),
        )
        .expect("join client connects");
        for m in 0..cfg.members {
            let node = format!("member.h{i}.m{m}");
            client
                .join(&Member {
                    id: MemberId(node.clone()),
                    provider: format!("hub-{i}"),
                    endpoint: NodeId::new(&node),
                    qos: QosProfile::default(),
                })
                .expect("member joins");
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    for hub in hubs {
        for (name, replica) in &hub.community {
            while replica.member_count() < cfg.members {
                assert!(
                    Instant::now() < deadline,
                    "replica of {name} on hub {} only learned {}/{} members",
                    hub.index,
                    replica.member_count(),
                    cfg.members,
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Deploys this hub's charts, every task delegating to the *neighbor*
/// hub's community so invocations cross TCP.
fn deploy_hub_charts(cfg: &Config, hubs: &mut [Hub], h: usize) {
    let neighbor = (h + 1) % hubs.len();
    let target = community_name(neighbor);
    // Wait until gossip has delivered every replica name of the neighbor's
    // community, so the deployer discovers the full replica set.
    for r in 0..cfg.replicas {
        let name = selfserv_core::naming::community_replica(&target, r);
        assert!(
            hubs[h]
                .disc
                .wait_until_bound(name.as_str(), Duration::from_secs(30)),
            "hub {h} never learned {name} via gossip"
        );
    }
    let charts: Vec<Statechart> = hub_charts(cfg, h)
        .iter()
        .map(|sc| rebind_to_community(sc, &target))
        .collect();
    for sc in charts {
        let mut deployer = Deployer::new(&hubs[h].hub)
            .with_executor(hubs[h].exec.handle().clone())
            .with_monitor(NodeId::new(format!("monitor.h{h}")))
            .with_liveness(hubs[h].disc.liveness());
        deployer.invoke_timeout = Duration::from_secs(120);
        deployer.instance_ttl = Duration::from_secs(600);
        let dep = deployer
            .deploy(&sc, &HashMap::new())
            .expect("chart deploys");
        hubs[h].deployments.push((sc.name.clone(), dep));
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

#[derive(Default, Debug, Clone)]
struct DriverStats {
    submitted: u64,
    completed: u64,
    faulted: u64,
    duplicates: u64,
    drops: u64,
    submit_errors: u64,
}

struct DriverMetrics {
    latency: Arc<selfserv_obs::Histogram>,
    submitted: Arc<selfserv_obs::Counter>,
    completed: Arc<selfserv_obs::Counter>,
    faulted: Arc<selfserv_obs::Counter>,
    duplicates: Arc<selfserv_obs::Counter>,
    drops: Arc<selfserv_obs::Counter>,
}

fn driver_metrics(registry: &Registry, hub: &str, chart: &str) -> DriverMetrics {
    let labels: [(&str, &str); 2] = [("hub", hub), ("chart", chart)];
    DriverMetrics {
        latency: registry.histogram(
            "selfserv_stress_client_latency_us",
            "Client-observed composite latency in microseconds (submit to collect).",
            &labels,
        ),
        submitted: registry.counter(
            "selfserv_stress_submitted_total",
            "Composite executions submitted by the stress drivers.",
            &labels,
        ),
        completed: registry.counter(
            "selfserv_stress_completed_total",
            "Composite executions completed successfully.",
            &labels,
        ),
        faulted: registry.counter(
            "selfserv_stress_faulted_total",
            "Composite executions that returned a fault.",
            &labels,
        ),
        duplicates: registry.counter(
            "selfserv_stress_duplicates_total",
            "Completions whose id matched no outstanding submission.",
            &labels,
        ),
        drops: registry.counter(
            "selfserv_stress_drops_total",
            "Submissions still unanswered when the drain deadline passed.",
            &labels,
        ),
    }
}

fn stress_input(i: u64, payload: &str) -> MessageDoc {
    MessageDoc::request("execute")
        .with("payload", Value::str(payload.to_string()))
        .with("branch", Value::Int((i % 3) as i64))
}

/// One driver: keeps `window` submissions outstanding (closed loop) or
/// paces submissions at `rate`/sec (open loop) until `deadline`, then
/// drains. Completions are matched to submissions by message id; an id
/// with no outstanding entry is a duplicate, an entry never answered by
/// the drain deadline is a drop.
#[allow(clippy::too_many_arguments)]
fn drive(
    dep: &Deployment,
    metrics: &DriverMetrics,
    window: usize,
    rate: f64,
    open_loop: bool,
    payload: &str,
    deadline: Instant,
    drain: Duration,
) -> DriverStats {
    let mut stats = DriverStats::default();
    let mut outstanding: HashMap<MessageId, Instant> = HashMap::new();
    let mut seq: u64 = 0;
    let started = Instant::now();

    let submit_one =
        |stats: &mut DriverStats, outstanding: &mut HashMap<MessageId, Instant>, seq: &mut u64| {
            match dep.submit(stress_input(*seq, payload)) {
                Ok(id) => {
                    outstanding.insert(id, Instant::now());
                    stats.submitted += 1;
                    metrics.submitted.inc();
                    *seq += 1;
                }
                Err(_) => {
                    // Transport backpressure (outbound queue full): back off
                    // and let completions drain the pipe.
                    stats.submit_errors += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        };
    let collect_one = |stats: &mut DriverStats,
                       outstanding: &mut HashMap<MessageId, Instant>,
                       timeout: Duration|
     -> bool {
        match dep.collect_result(timeout) {
            Ok((id, outcome)) => {
                match outstanding.remove(&id) {
                    Some(t0) => {
                        metrics.latency.record(t0.elapsed().as_micros() as u64);
                        if outcome.is_ok() {
                            stats.completed += 1;
                            metrics.completed.inc();
                        } else {
                            stats.faulted += 1;
                            metrics.faulted.inc();
                        }
                    }
                    None => {
                        stats.duplicates += 1;
                        metrics.duplicates.inc();
                    }
                }
                true
            }
            Err(_) => false,
        }
    };

    if open_loop {
        let period = Duration::from_secs_f64(1.0 / rate.max(0.001));
        let mut next_submit = started;
        while Instant::now() < deadline {
            let now = Instant::now();
            if now >= next_submit {
                submit_one(&mut stats, &mut outstanding, &mut seq);
                next_submit += period;
                continue;
            }
            collect_one(&mut stats, &mut outstanding, next_submit - now);
        }
    } else {
        while outstanding.len() < window && Instant::now() < deadline {
            submit_one(&mut stats, &mut outstanding, &mut seq);
        }
        while Instant::now() < deadline {
            if collect_one(&mut stats, &mut outstanding, Duration::from_millis(100))
                && outstanding.len() < window
                && Instant::now() < deadline
            {
                submit_one(&mut stats, &mut outstanding, &mut seq);
            }
        }
    }

    // Drain: everything still outstanding gets `drain` to finish.
    let drain_deadline = Instant::now() + drain;
    while !outstanding.is_empty() && Instant::now() < drain_deadline {
        collect_one(&mut stats, &mut outstanding, Duration::from_millis(250));
    }
    stats.drops = outstanding.len() as u64;
    metrics.drops.add(stats.drops);
    stats
}

// ---------------------------------------------------------------------------
// Scraper
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ScrapeLog {
    scrapes: u64,
    failures: u64,
    peak_open: u64,
    last: Vec<Option<parse::Exposition>>,
}

fn scrape_loop(
    addrs: Vec<SocketAddr>,
    every: Duration,
    stop: Arc<AtomicBool>,
    log: Arc<Mutex<ScrapeLog>>,
) {
    while !stop.load(Ordering::Relaxed) {
        let mut open_total = 0.0;
        let mut round: Vec<Option<parse::Exposition>> = Vec::with_capacity(addrs.len());
        let mut failures = 0u64;
        for addr in &addrs {
            let expo = http_get(*addr, "/metrics", Duration::from_secs(2))
                .ok()
                .and_then(|text| parse::parse(&text).ok());
            match &expo {
                Some(e) => {
                    if e.validate().is_err() {
                        failures += 1;
                    }
                    open_total += e.value("selfserv_instances_open", &[]).unwrap_or(0.0);
                }
                None => failures += 1,
            }
            round.push(expo);
        }
        {
            let mut log = log.lock().unwrap();
            log.scrapes += 1;
            log.failures += failures;
            log.peak_open = log.peak_open.max(open_total as u64);
            log.last = round;
        }
        std::thread::sleep(every);
    }
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

/// Pulls a scraped value for a hub, defaulting to 0.
fn scraped(expo: &Option<parse::Exposition>, name: &str, labels: &[(&str, &str)]) -> f64 {
    expo.as_ref()
        .and_then(|e| e.value(name, labels))
        .unwrap_or(0.0)
}

fn main() {
    let cfg = parse_args();
    println!(
        "selfserv-stress: {} hubs, {:?} window, {} mode ({}), {} B payload, fanout {}, \
         hold {:?}, {} members x {} replicas per community (cross-hub pinned), \
         corpus {}, churn {}",
        cfg.hubs,
        cfg.duration,
        if cfg.open_loop { "open" } else { "closed" },
        if cfg.open_loop {
            format!("{}/s total", cfg.rate)
        } else {
            format!("{} in flight total", cfg.target_inflight)
        },
        cfg.msg_bytes,
        cfg.fanout,
        cfg.hold,
        cfg.members,
        cfg.replicas,
        cfg.corpus,
        cfg.churn,
    );

    // --- Topology -----------------------------------------------------------
    let t0 = Instant::now();
    let mut hubs: Vec<Hub> = Vec::with_capacity(cfg.hubs);
    for h in 0..cfg.hubs {
        let seed = hubs.first().map(|h0| h0.disc.seed_addr());
        hubs.push(spawn_hub(&cfg, h, seed));
    }
    spawn_communities(&cfg, &mut hubs);
    join_members(&cfg, &hubs);
    for h in 0..cfg.hubs {
        deploy_hub_charts(&cfg, &mut hubs, h);
    }
    let charts_per_hub = hubs[0].deployments.len();
    println!(
        "topology up in {:?}: {} deployments/hub, /metrics at {}",
        t0.elapsed(),
        charts_per_hub,
        hubs.iter()
            .map(|h| format!("http://{}/metrics", h.metrics_addr))
            .collect::<Vec<_>>()
            .join(" "),
    );

    // --- Scraper ------------------------------------------------------------
    let stop = Arc::new(AtomicBool::new(false));
    let log = Arc::new(Mutex::new(ScrapeLog::default()));
    let scraper = {
        let addrs: Vec<SocketAddr> = hubs.iter().map(|h| h.metrics_addr).collect();
        let stop = Arc::clone(&stop);
        let log = Arc::clone(&log);
        let every = cfg.scrape_every;
        std::thread::spawn(move || scrape_loop(addrs, every, stop, log))
    };

    // --- Drivers ------------------------------------------------------------
    let drivers_total = cfg.hubs * charts_per_hub;
    let window = cfg.target_inflight.div_ceil(drivers_total);
    let rate = cfg.rate / drivers_total as f64;
    let payload = "x".repeat(cfg.msg_bytes.max(1));
    let deadline = Instant::now() + cfg.duration;
    let run_start = Instant::now();
    // Churn threads and event pumpers stop once every driver (including
    // its drain) has finished.
    let aux_stop = Arc::new(AtomicBool::new(false));
    let results: Vec<(usize, String, DriverStats)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for hub in &hubs {
            for (chart, dep) in &hub.deployments {
                let metrics = driver_metrics(&hub.registry, &format!("h{}", hub.index), chart);
                let payload = payload.as_str();
                let index = hub.index;
                let chart = chart.clone();
                let cfg = &cfg;
                handles.push(scope.spawn(move || {
                    let stats = drive(
                        dep,
                        &metrics,
                        window,
                        rate,
                        cfg.open_loop,
                        payload,
                        deadline,
                        cfg.drain,
                    );
                    (index, chart, stats)
                }));
            }
        }
        // Event pumpers: any event-gated deployment parks every instance
        // until `release` is raised, so a pumper per deployment keeps
        // broadcasting it for as long as drivers are in flight.
        for hub in &hubs {
            for (chart, dep) in &hub.deployments {
                if !chart.starts_with("event") {
                    continue;
                }
                let stop = Arc::clone(&aux_stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        dep.raise_event("release", None);
                        std::thread::sleep(Duration::from_millis(10));
                    }
                });
            }
        }
        // Churn: one extra member per community cycles join -> leave for
        // the whole measured window, through the same rpc path real
        // providers use — every cycle is a tombstone plus a higher-versioned
        // rejoin racing the replica gossip.
        if cfg.churn {
            for (i, hub) in hubs.iter().enumerate() {
                let stop = Arc::clone(&aux_stop);
                scope.spawn(move || {
                    let client = CommunityClient::connect(
                        &hub.hub,
                        &format!("ctl.churn.h{i}"),
                        naming::community(&community_name(i)),
                    )
                    .expect("churn client connects");
                    let node = format!("member.h{i}.churn");
                    let member = Member {
                        id: MemberId(node.clone()),
                        provider: format!("hub-{i}-churn"),
                        endpoint: NodeId::new(&node),
                        qos: QosProfile::default(),
                    };
                    while !stop.load(Ordering::Relaxed) {
                        let _ = client.join(&member);
                        std::thread::sleep(Duration::from_millis(50));
                        let _ = client.leave(&member.id);
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    // End on a leave so the convergence check compares
                    // tables that all agree the churn member is gone.
                    let _ = client.leave(&member.id);
                });
            }
        }
        let results: Vec<(usize, String, DriverStats)> = handles
            .into_iter()
            .map(|h| h.join().expect("driver"))
            .collect();
        aux_stop.store(true, Ordering::Relaxed);
        results
    });
    let wall = run_start.elapsed();

    // --- Membership convergence ---------------------------------------------
    // After quiescence every replica of a community — pinned to different
    // hubs — must agree on the membership table, fingerprint-for-fingerprint.
    let mut replica_sets: HashMap<String, Vec<&CommunityServerHandle>> = HashMap::new();
    for hub in &hubs {
        for (name, replica) in &hub.community {
            replica_sets.entry(name.clone()).or_default().push(replica);
        }
    }
    let mut membership_converged = true;
    let converge_deadline = Instant::now() + Duration::from_secs(10);
    for (name, replicas) in &replica_sets {
        loop {
            let prints: Vec<u64> = replicas
                .iter()
                .map(|r| r.membership().read().fingerprint())
                .collect();
            if prints.windows(2).all(|w| w[0] == w[1]) {
                break;
            }
            if Instant::now() >= converge_deadline {
                eprintln!("FAIL: membership of {name} did not converge: {prints:?}");
                membership_converged = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    println!(
        "membership: {} communities x {} replicas, converged: {membership_converged}",
        replica_sets.len(),
        cfg.replicas,
    );

    // One final scrape round so the summary reflects the drained state.
    std::thread::sleep(cfg.scrape_every + Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper joins");

    // --- Aggregate ----------------------------------------------------------
    let mut total = DriverStats::default();
    for (_, _, s) in &results {
        total.submitted += s.submitted;
        total.completed += s.completed;
        total.faulted += s.faulted;
        total.duplicates += s.duplicates;
        total.drops += s.drops;
        total.submit_errors += s.submit_errors;
    }
    let throughput = total.completed as f64 / wall.as_secs_f64();
    let log = log.lock().unwrap();

    // Client latency across all drivers, merged from the per-driver
    // histograms (mergeable snapshots are exactly what makes this legal).
    let mut client_lat = selfserv_obs::HistogramSnapshot::empty();
    for hub in &hubs {
        for (chart, _) in &hub.deployments {
            let m = driver_metrics(&hub.registry, &format!("h{}", hub.index), chart);
            client_lat = client_lat.merge(&m.latency.snapshot());
        }
    }

    println!(
        "\nrun: {} submitted, {} completed ({:.0}/s), {} faulted, {} duplicates, {} drops, \
         peak open {} (scraped {} times, {} scrape failures)",
        total.submitted,
        total.completed,
        throughput,
        total.faulted,
        total.duplicates,
        total.drops,
        log.peak_open,
        log.scrapes,
        log.failures,
    );
    println!(
        "client latency: p50 {} us, p99 {} us, p999 {} us (n={})",
        client_lat.p50(),
        client_lat.p99(),
        client_lat.p999(),
        client_lat.count(),
    );

    // --- Per-hub scraped summary + JSON -------------------------------------
    let mut hub_objects = Vec::new();
    for hub in &hubs {
        let h = format!("h{}", hub.index);
        let expo = log.last.get(hub.index).cloned().flatten();
        let expo = &Some(expo).flatten();
        let hub_stats: Vec<&DriverStats> = results
            .iter()
            .filter(|(i, _, _)| *i == hub.index)
            .map(|(_, _, s)| s)
            .collect();
        let submitted: u64 = hub_stats.iter().map(|s| s.submitted).sum();
        let completed: u64 = hub_stats.iter().map(|s| s.completed).sum();
        let faulted: u64 = hub_stats.iter().map(|s| s.faulted).sum();
        let duplicates: u64 = hub_stats.iter().map(|s| s.duplicates).sum();
        let drops: u64 = hub_stats.iter().map(|s| s.drops).sum();
        let hl = [("hub", h.as_str())];
        let q = |quant: &str| {
            scraped(
                expo,
                "selfserv_instance_latency_us",
                &[("hub", h.as_str()), ("quantile", quant)],
            )
        };
        hub_objects.push(format!(
            "    {{\n      \"hub\": \"{h}\",\n      \"metrics_url\": \"http://{}/metrics\",\n      \
             \"submitted\": {submitted}, \"completed\": {completed}, \"faulted\": {faulted}, \
             \"duplicates\": {duplicates}, \"drops\": {drops},\n      \
             \"instance_latency_us\": {{ \"p50\": {}, \"p99\": {}, \"p999\": {} }},\n      \
             \"scraped\": {{\n        \
             \"instances_finished\": {},\n        \
             \"frames_sent\": {},\n        \
             \"bytes_sent\": {},\n        \
             \"backpressure_waits\": {},\n        \
             \"stale_replies\": {},\n        \
             \"executor_steals\": {},\n        \
             \"community_delegations\": {},\n        \
             \"community_failovers\": {},\n        \
             \"gossip_rounds\": {},\n        \
             \"directory_size\": {}\n      }}\n    }}",
            hub.metrics_addr,
            q("0.5"),
            q("0.99"),
            q("0.999"),
            scraped(expo, "selfserv_instances_finished_total", &hl),
            scraped(expo, "selfserv_transport_frames_sent_total", &hl),
            scraped(expo, "selfserv_transport_bytes_sent_total", &hl),
            scraped(expo, "selfserv_transport_backpressure_waits_total", &hl),
            scraped(expo, "selfserv_transport_stale_replies_total", &hl),
            scraped(expo, "selfserv_executor_steals_total", &hl),
            scraped(expo, "selfserv_community_delegations_total", &[("hub", h.as_str())]),
            scraped(expo, "selfserv_community_failovers_total", &[("hub", h.as_str())]),
            scraped(expo, "selfserv_discovery_gossip_rounds_total", &hl),
            scraped(expo, "selfserv_discovery_directory_size", &hl),
        ));
    }

    let mode = if cfg.open_loop { "open" } else { "closed" };
    let json = format!(
        "{{\n  \"benchmark\": \"crates/bench/src/bin/stress.rs\",\n  \
         \"command\": \"cargo run --release -p selfserv-bench --bin selfserv-stress -- --hubs {} --duration-secs {} \
         --mode {} --target-inflight {} --msg-bytes {} --fanout {} --hold-ms {} --replicas {} \
         --corpus {}{}\",\n  \
         \"config\": {{ \"hubs\": {}, \"duration_secs\": {}, \"mode\": \"{}\", \
         \"target_inflight\": {}, \"rate_per_sec\": {}, \"msg_bytes\": {}, \"fanout\": {}, \
         \"seq_len\": {}, \"hold_ms\": {}, \"members\": {}, \"replicas\": {}, \
         \"workers_per_hub\": {}, \"corpus\": \"{}\", \"churn\": {} }},\n  \
         \"results\": {{\n    \"wall_secs\": {},\n    \"submitted\": {},\n    \"completed\": {},\n    \
         \"faulted\": {},\n    \"duplicates\": {},\n    \"drops\": {},\n    \
         \"submit_backpressure_retries\": {},\n    \"throughput_per_sec\": {},\n    \
         \"membership_converged\": {},\n    \
         \"peak_open_instances\": {},\n    \
         \"client_latency_us\": {{ \"p50\": {}, \"p99\": {}, \"p999\": {}, \"mean\": {}, \"count\": {} }},\n    \
         \"scrapes\": {},\n    \"scrape_failures\": {}\n  }},\n  \
         \"hubs\": [\n{}\n  ],\n  \
         \"note\": \"{}\"\n}}\n",
        cfg.hubs,
        cfg.duration.as_secs(),
        mode,
        cfg.target_inflight,
        cfg.msg_bytes,
        cfg.fanout,
        cfg.hold.as_millis(),
        cfg.replicas,
        cfg.corpus,
        if cfg.churn { " --churn" } else { "" },
        cfg.hubs,
        cfg.duration.as_secs(),
        mode,
        cfg.target_inflight,
        cfg.rate,
        cfg.msg_bytes,
        cfg.fanout,
        cfg.seq_len,
        cfg.hold.as_millis(),
        cfg.members,
        cfg.replicas,
        cfg.workers_per_hub,
        json_escape(&cfg.corpus),
        cfg.churn,
        fmt2(wall.as_secs_f64()),
        total.submitted,
        total.completed,
        total.faulted,
        total.duplicates,
        total.drops,
        total.submit_errors,
        fmt2(throughput),
        membership_converged,
        log.peak_open,
        client_lat.p50(),
        client_lat.p99(),
        client_lat.p999(),
        fmt2(client_lat.mean()),
        client_lat.count(),
        log.scrapes,
        log.failures,
        hub_objects.join(",\n"),
        json_escape(
            "Sustained-load harness: N TcpTransport hubs in one process joined by discovery \
             seed, workload-corpus composites per hub (--corpus: basic|deep|wide|loop|event|all) \
             with every task delegated to the NEIGHBOR hub's community (all invokes cross real \
             TCP). Community replicas are PINNED to distinct hubs -- replica j of community i \
             runs on hub (i+j)%N with its own membership table, synchronized by replica \
             anti-entropy plus the discovery gossip payload channel -- and --churn cycles an \
             extra member join/leave per community for the whole window. Event-driven delay \
             members (zero blocked workers at any in-flight depth), closed- or open-loop \
             drivers, and a live Prometheus scraper polling every hub's /metrics for the whole \
             run. instance_latency quantiles are scraped (server-side, wrapper start->finish); \
             client_latency is submit->collect including client-side queueing; \
             membership_converged asserts fingerprint agreement across hubs after quiescence."
        ),
    );
    std::fs::write(&cfg.out, &json).expect("summary written");
    println!("summary -> {}", cfg.out);

    // --- Teardown -----------------------------------------------------------
    drop(log);
    for mut hub in hubs {
        for (_, dep) in hub.deployments.drain(..) {
            dep.undeploy();
        }
        while let Some((_, replica)) = hub.community.pop() {
            replica.stop();
        }
        drop(hub._members);
        drop(hub._monitor);
        hub.disc.stop();
        drop(hub._metrics_server);
        let _ = hub.registry;
        hub.exec.shutdown();
        drop(hub.hub);
    }

    if cfg.min_throughput > 0.0 && throughput < cfg.min_throughput {
        eprintln!(
            "FAIL: throughput {throughput:.1}/s below required {:.1}/s",
            cfg.min_throughput
        );
        std::process::exit(1);
    }
}
