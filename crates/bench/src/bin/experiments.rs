//! The experiments harness: regenerates a paper-shaped table for every
//! figure/claim of the SELF-SERV demo paper (see DESIGN.md §4 and
//! EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p selfserv-bench --release --bin experiments            # all
//! cargo run -p selfserv-bench --release --bin experiments -- e4 e5  # subset
//! ```

use selfserv_bench::*;
use selfserv_community::{
    Community, CommunityClient, CommunityServer, HistoryAware, LeastLoaded, Member, MemberId,
    QosProfile, RandomChoice, RoundRobin, SelectionPolicy, WeightedScoring,
};
use selfserv_core::{
    naming, AccommodationChoice, ServiceBackend, ServiceHost, SyntheticService, TravelDemo,
    TravelDemoConfig,
};
use selfserv_expr::Value;
use selfserv_net::{Network, NetworkConfig, NodeId};
use selfserv_registry::{FindQuery, RegistryClient, RegistryServer};
use selfserv_statechart::{synth, Statechart};
use selfserv_wsdl::{MessageDoc, OperationDef, Param, ParamType};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| run_all || args.iter().any(|a| a == name);

    println!("SELF-SERV experiment harness (see DESIGN.md §4 for the experiment index)");
    if want("e1") {
        e1_discovery();
    }
    if want("e2") {
        e2_deployment();
    }
    if want("e3") {
        e3_travel();
    }
    if want("e4") {
        e4_p2p_vs_central();
    }
    if want("e5") {
        e5_availability();
    }
    if want("e6") {
        e6_selection_policies();
    }
    if want("e7") {
        e7_routing_lookup();
    }
    println!("\ndone.");
}

// ---------------------------------------------------------------------
// E1 — Figure 1: the discovery engine (UDDI registry) under load.
// ---------------------------------------------------------------------
fn e1_discovery() {
    let mut rows = Vec::new();
    for &size in &[100usize, 1_000, 10_000] {
        let t0 = Instant::now();
        let reg = seed_registry(size);
        let publish_total = t0.elapsed();

        let queries = 1_000;
        let time_queries = |f: &dyn Fn(usize)| {
            let t0 = Instant::now();
            for q in 0..queries {
                f(q);
            }
            t0.elapsed() / queries as u32
        };
        let by_provider = time_queries(&|q| {
            let _ = reg.find(&FindQuery::any().provider(format!("Provider{:04}", q % 7)));
        });
        let by_name = time_queries(&|q| {
            let _ = reg.find(&FindQuery::any().service_name(format!("Service{:05}", q % size)));
        });
        let by_operation = time_queries(&|q| {
            let _ = reg.find(&FindQuery::any().operation(format!("op{}", q % 50)));
        });
        rows.push(vec![
            size.to_string(),
            format!("{:.1}", size as f64 / publish_total.as_secs_f64()),
            us(by_provider),
            us(by_name),
            us(by_operation),
        ]);
    }
    print_table(
        "E1 (Figure 1) — discovery engine: publish throughput and find latency (local API)",
        &[
            "services",
            "publish/s",
            "find-by-provider us",
            "find-by-name us",
            "find-by-op us",
        ],
        &rows,
    );

    // The SOAP-call shape: the same finds through the fabric.
    let net = instant_net();
    let registry = Arc::new(seed_registry(1_000));
    let _server = RegistryServer::spawn(&net, "uddi", Arc::clone(&registry)).unwrap();
    let client = RegistryClient::connect(&net, "e1-client", "uddi").unwrap();
    let t0 = Instant::now();
    let calls = 500;
    for q in 0..calls {
        client
            .find(&FindQuery::any().operation(format!("op{}", q % 50)))
            .unwrap();
    }
    let per_call = t0.elapsed() / calls as u32;
    println!(
        "\nSOAP-style find over the fabric (1k services, incl. XML round trip): {} us/call",
        us(per_call)
    );
    println!(
        "expected shape: near-linear growth with registry size; remote call adds an \
         envelope-codec constant."
    );
}

// ---------------------------------------------------------------------
// E2 — Figure 2: the editor→deployer pipeline (statechart XML → routing
// tables).
// ---------------------------------------------------------------------
fn e2_deployment() {
    type ShapeFn = Box<dyn Fn(usize) -> Statechart>;
    let shapes: Vec<(&str, ShapeFn)> = vec![
        ("sequence", Box::new(synth::sequence)),
        ("xor-choice", Box::new(synth::xor_choice)),
        ("parallel", Box::new(|n| synth::parallel(n.max(2)))),
        (
            "ladder(4 wide)",
            Box::new(|n| synth::ladder(4, (n / 4).max(1))),
        ),
    ];
    let mut rows = Vec::new();
    for (name, make) in &shapes {
        for &n in &[5usize, 10, 20, 40, 80, 160] {
            let sc = make(n);
            let xml = sc.to_xml().to_pretty_xml();
            let reps = 20u32;
            let t0 = Instant::now();
            for _ in 0..reps {
                let parsed = Statechart::from_xml_str(&xml).unwrap();
                assert!(parsed.validate().is_ok());
            }
            let parse_validate = t0.elapsed() / reps;
            let t0 = Instant::now();
            let mut plan = None;
            for _ in 0..reps {
                plan = Some(selfserv_routing::generate(&sc).unwrap());
            }
            let generate = t0.elapsed() / reps;
            let plan = plan.unwrap();
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                (xml.len() / 1024).to_string(),
                us(parse_validate),
                us(generate),
                plan.tables.len().to_string(),
                plan.total_preconditions().to_string(),
                plan.total_notifications().to_string(),
            ]);
        }
    }
    print_table(
        "E2 (Figure 2) — editor/deployer pipeline cost vs statechart size",
        &[
            "topology",
            "tasks",
            "xml KiB",
            "parse+validate us",
            "gen tables us",
            "tables",
            "preconds",
            "notifs",
        ],
        &rows,
    );
    println!(
        "expected shape: all stages stay in the micro/millisecond range even at 160 states \
         ('rapid composition'); table counts grow linearly."
    );
}

// ---------------------------------------------------------------------
// E3 — Figure 3 + Section 4: locate and execute the travel scenario.
// ---------------------------------------------------------------------
fn e3_travel() {
    let net = Network::new(NetworkConfig::instant());
    let demo = TravelDemo::launch(
        &net,
        TravelDemoConfig {
            service_latency: Duration::from_millis(5),
            accommodation: AccommodationChoice::Mixed,
            ..Default::default()
        },
    )
    .unwrap();

    // Locate (Search panel): find by operation through the discovery
    // engine.
    let t0 = Instant::now();
    let hits = demo
        .manager
        .registry()
        .find(&FindQuery::any().service_name("Travel Planning"));
    let locate = t0.elapsed();
    assert_eq!(hits.len(), 1);

    // Execute both branches repeatedly.
    let mut rows = Vec::new();
    for (label, destination) in [
        ("domestic (Sydney)", "Sydney"),
        ("international (Hong Kong)", "Hong Kong"),
    ] {
        net.reset_metrics();
        let stats = run_batch(40, 4, |i| {
            demo.book_trip(
                &format!("Customer{i}"),
                destination,
                "2002-08-20",
                "2002-08-27",
            )
        });
        let metrics = net.metrics();
        let notify_messages: u64 = metrics
            .nodes
            .iter()
            .filter(|n| n.node.as_str().contains(".coord."))
            .map(|n| n.sent)
            .sum();
        rows.push(vec![
            label.to_string(),
            stats.completed.to_string(),
            ms(stats.mean()),
            ms(stats.percentile(0.95)),
            format!(
                "{:.1}",
                notify_messages as f64 / stats.completed.max(1) as f64
            ),
        ]);
    }
    print_table(
        "E3 (Figure 3) — locating and executing the travel composite (5 ms/service)",
        &[
            "branch",
            "completed",
            "mean ms",
            "p95 ms",
            "coord msgs/instance",
        ],
        &rows,
    );
    println!("locate via discovery engine: {} us", us(locate));
    println!(
        "expected shape: international branch is slower (extra insurance hop inside ITA); \
         coordination adds a handful of messages per instance."
    );
}

// ---------------------------------------------------------------------
// E4 — Section 1 claim: P2P avoids the central coordination bottleneck.
// ---------------------------------------------------------------------
fn e4_p2p_vs_central() {
    let mut rows = Vec::new();
    let instances = 200;
    let concurrency = 8;
    for &n in &[2usize, 4, 8, 16, 32] {
        let sc = synth::sequence(n);

        // P2P.
        let net = instant_net();
        let dep = deploy_p2p(&net, &sc, Duration::ZERO);
        net.reset_metrics();
        let p2p = run_batch(instances, concurrency, |i| {
            dep.execute(synth_input(i), Duration::from_secs(30))
        });
        let m = net.metrics();
        let (_, p2p_hot, _) = busiest(&m, |name| name.contains(".coord."));
        let p2p_total: u64 = m.total_sent();
        drop(dep);

        // Central.
        let net = instant_net();
        let (_hosts, central) = deploy_central(&net, &sc, Duration::ZERO);
        net.reset_metrics();
        let cen = run_batch(instances, concurrency, |i| {
            central.execute(synth_input(i), Duration::from_secs(30))
        });
        let m = net.metrics();
        let (_, cen_hot, _) = busiest(&m, |name| name.ends_with(".central"));
        let cen_total: u64 = m.total_sent();

        rows.push(vec![
            n.to_string(),
            format!("{:.0}", p2p.throughput()),
            format!("{:.0}", cen.throughput()),
            format!("{:.1}", p2p_hot as f64 / instances as f64),
            format!("{:.1}", cen_hot as f64 / instances as f64),
            format!("{:.1}", p2p_total as f64 / instances as f64),
            format!("{:.1}", cen_total as f64 / instances as f64),
        ]);
    }
    print_table(
        &format!(
            "E4 — P2P vs centralized orchestration, sequence(N), {instances} instances, \
             concurrency {concurrency}"
        ),
        &[
            "N",
            "p2p inst/s",
            "central inst/s",
            "p2p hot msgs/inst",
            "central hot msgs/inst",
            "p2p total msgs/inst",
            "central total msgs/inst",
        ],
        &rows,
    );
    println!(
        "expected shape: the central engine's per-node load grows ~2N per instance while the \
         hottest P2P coordinator stays flat (~2-3); totals are comparable — the win is \
         distribution, exactly the paper's claim."
    );
}

// ---------------------------------------------------------------------
// E5 — Section 1 claim: availability under failure.
// ---------------------------------------------------------------------
fn e5_availability() {
    let instances = 60;
    let concurrency = 6;
    let sc = synth::sequence(6);
    let mut rows = Vec::new();

    // (a) centralized, engine killed mid-run.
    {
        let net = instant_net();
        let (_hosts, central) = deploy_central(&net, &sc, Duration::from_millis(3));
        let killed = std::sync::atomic::AtomicBool::new(false);
        let stats = run_batch(instances, concurrency, |i| {
            if i == instances / 3 && !killed.swap(true, std::sync::atomic::Ordering::SeqCst) {
                net.kill(central.node());
            }
            central.execute(synth_input(i), Duration::from_millis(1500))
        });
        rows.push(vec![
            "central: kill engine at 33%".to_string(),
            format!("{:.0}%", stats.success_rate() * 100.0),
        ]);
    }

    // (b) P2P, one mid-pipeline coordinator killed mid-run.
    {
        let net = instant_net();
        let dep = deploy_p2p(&net, &sc, Duration::from_millis(3));
        let victim = naming::coordinator(&sc.name, &"s3".into());
        let killed = std::sync::atomic::AtomicBool::new(false);
        let stats = run_batch(instances, concurrency, |i| {
            if i == instances / 3 && !killed.swap(true, std::sync::atomic::Ordering::SeqCst) {
                net.kill(&victim);
            }
            dep.execute(synth_input(i), Duration::from_millis(1500))
        });
        rows.push(vec![
            "p2p: kill coordinator s3 at 33%".to_string(),
            format!("{:.0}%", stats.success_rate() * 100.0),
        ]);
    }

    // (c) P2P with an XOR chart: the killed coordinator sits on a branch
    // only 1/3 of instances take — the rest are unaffected.
    {
        let xor = synth::xor_choice(3);
        let net = instant_net();
        let dep = deploy_p2p(&net, &xor, Duration::from_millis(3));
        let victim = naming::coordinator(&xor.name, &"s2".into());
        net.kill(&victim);
        let stats = run_batch(instances, concurrency, |i| {
            dep.execute(synth_input(i), Duration::from_millis(1500))
        });
        rows.push(vec![
            "p2p xor(3): branch-2 coordinator dead the whole run".to_string(),
            format!("{:.0}%", stats.success_rate() * 100.0),
        ]);
    }

    // (d) community failover masks a dead member.
    {
        let net = instant_net();
        let community = CommunityServer::spawn(
            &net,
            "community.acc",
            Community::new("acc", "").with_operation(OperationDef::new("book")),
            Arc::new(RoundRobin::new()),
            selfserv_community::CommunityServerConfig {
                member_timeout: Duration::from_millis(200),
                ..Default::default()
            },
        )
        .unwrap();
        let backend: Arc<dyn ServiceBackend> = Arc::new(SyntheticService::new("M"));
        let _h1 = ServiceHost::spawn(&net, "svc.m1", Arc::clone(&backend)).unwrap();
        let _h2 = ServiceHost::spawn(&net, "svc.m2", Arc::clone(&backend)).unwrap();
        let client = CommunityClient::connect(&net, "e5-client", "community.acc").unwrap();
        for (id, ep) in [("m1", "svc.m1"), ("m2", "svc.m2")] {
            client
                .join(&Member {
                    id: MemberId(id.into()),
                    provider: id.into(),
                    endpoint: NodeId::new(ep),
                    qos: QosProfile::default(),
                })
                .unwrap();
        }
        net.kill(&NodeId::new("svc.m1"));
        let mut ok = 0;
        for _ in 0..instances {
            if client.invoke(&MessageDoc::request("book")).is_ok() {
                ok += 1;
            }
        }
        rows.push(vec![
            "community: member m1 dead, failover to m2".to_string(),
            format!("{:.0}%", ok as f64 / instances as f64 * 100.0),
        ]);
        drop(community);
    }

    print_table(
        "E5 — availability under failure (completion rates)",
        &["scenario", "success"],
        &rows,
    );
    println!(
        "expected shape: killing the central engine aborts everything after the kill point; \
         killing one P2P coordinator only hurts instances that still need that state; \
         community failover keeps success at 100%."
    );
}

// ---------------------------------------------------------------------
// E6 — Section 2: delegatee selection policies.
// ---------------------------------------------------------------------
fn e6_selection_policies() {
    let requests = 400;
    let policies: Vec<(&str, Arc<dyn SelectionPolicy>)> = vec![
        ("round-robin", Arc::new(RoundRobin::new())),
        ("random", Arc::new(RandomChoice::new(11))),
        ("least-loaded", Arc::new(LeastLoaded)),
        ("saw", Arc::new(WeightedScoring::default())),
        ("history-aware", Arc::new(HistoryAware::default())),
    ];
    // Heterogeneous members: advertised duration equals actual for all but
    // one liar (which advertises 5 ms but takes 80 ms) and one flaky member.
    let profile: Vec<(u64, f64, bool)> = vec![
        (10, 10.0, false),
        (20, 20.0, false),
        (40, 40.0, false),
        (80, 5.0, false), // the liar
        (15, 15.0, true), // flaky: 30% failures
        (25, 25.0, false),
        (60, 60.0, false),
        (30, 30.0, false),
    ];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let net = instant_net();
        let node = format!("community.{name}");
        let community = CommunityServer::spawn(
            &net,
            &node,
            Community::new("bench", "").with_operation(
                OperationDef::new("work").with_input(Param::optional("case", ParamType::Int)),
            ),
            policy,
            selfserv_community::CommunityServerConfig {
                member_timeout: Duration::from_millis(500),
                ..Default::default()
            },
        )
        .unwrap();
        let client = CommunityClient::connect(&net, "e6-client", node.as_str()).unwrap();
        let mut hosts = Vec::new();
        for (i, (actual_ms, advertised_ms, flaky)) in profile.iter().enumerate() {
            let ep = format!("svc.member{i}");
            let mut backend = SyntheticService::new(format!("member{i}"))
                .with_latency(Duration::from_millis(*actual_ms));
            if *flaky {
                backend = backend.with_failure_probability(0.3).with_seed(5);
            }
            hosts.push(
                ServiceHost::spawn(
                    &net,
                    ep.as_str(),
                    Arc::new(backend) as Arc<dyn ServiceBackend>,
                )
                .unwrap(),
            );
            client
                .join(&Member {
                    id: MemberId(format!("member{i}")),
                    provider: format!("member{i}"),
                    endpoint: NodeId::new(ep),
                    qos: QosProfile::default()
                        .with_duration_ms(*advertised_ms)
                        .with_cost(1.0)
                        .with_reliability(0.99),
                })
                .unwrap();
        }
        let t0 = Instant::now();
        let mut ok = 0usize;
        let mut latencies = Vec::with_capacity(requests);
        for i in 0..requests {
            let q0 = Instant::now();
            let result =
                client.invoke(&MessageDoc::request("work").with("case", Value::Int(i as i64)));
            if result.is_ok() {
                ok += 1;
                latencies.push(q0.elapsed());
            }
        }
        let wall = t0.elapsed();
        latencies.sort();
        let mean = if latencies.is_empty() {
            Duration::ZERO
        } else {
            latencies.iter().sum::<Duration>() / latencies.len() as u32
        };
        // Load skew via history in-flight totals is gone after completion;
        // approximate share from per-member completed counts.
        let hist = community.history().all();
        let counts: Vec<u64> = hist.values().map(|s| s.completed).collect();
        let max_share = counts.iter().copied().max().unwrap_or(0) as f64
            / counts.iter().copied().sum::<u64>().max(1) as f64;
        rows.push(vec![
            name.to_string(),
            ms(mean),
            format!("{:.0}%", ok as f64 / requests as f64 * 100.0),
            format!("{:.0}%", max_share * 100.0),
            format!("{:.0}", requests as f64 / wall.as_secs_f64()),
        ]);
        drop(community);
    }
    print_table(
        "E6 — community selection policies (8 heterogeneous members, one liar, one flaky, 400 sequential requests)",
        &["policy", "mean ms", "success", "busiest member share", "req/s"],
        &rows,
    );
    println!(
        "expected shape: history-aware beats advertised-QoS SAW once the liar is observed and \
         routes around the flaky member; round-robin spreads load most evenly (share ≈ 1/8) but \
         pays mean latency."
    );

    e6_delegation_modes();
}

/// Ablation (DESIGN.md §5.3): proxy vs redirect delegation. Proxy keeps
/// the community on the data path (it relays request + reply); redirect
/// hands the caller the member binding and steps aside.
fn e6_delegation_modes() {
    use selfserv_community::DelegationMode;
    let requests = 300;
    let mut rows = Vec::new();
    for (label, mode) in [
        ("proxy", DelegationMode::Proxy),
        ("redirect", DelegationMode::Redirect),
    ] {
        let net = instant_net();
        let node = format!("community.mode-{label}");
        let community = CommunityServer::spawn(
            &net,
            &node,
            Community::new("mode-bench", "").with_operation(OperationDef::new("work")),
            Arc::new(RoundRobin::new()),
            selfserv_community::CommunityServerConfig {
                mode,
                ..Default::default()
            },
        )
        .unwrap();
        let client = CommunityClient::connect(&net, "mode-client", node.as_str()).unwrap();
        let mut hosts = Vec::new();
        for i in 0..4 {
            let ep = format!("svc.mode{i}");
            hosts.push(
                ServiceHost::spawn(
                    &net,
                    ep.as_str(),
                    Arc::new(SyntheticService::new(format!("m{i}"))) as Arc<dyn ServiceBackend>,
                )
                .unwrap(),
            );
            client
                .join(&Member {
                    id: MemberId(format!("m{i}")),
                    provider: format!("m{i}"),
                    endpoint: NodeId::new(ep),
                    qos: QosProfile::default(),
                })
                .unwrap();
        }
        net.reset_metrics();
        // A ~1 KiB payload so the broker's data-path cost is visible.
        let request = MessageDoc::request("work").with("blob", Value::str("x".repeat(1024)));
        let t0 = Instant::now();
        for _ in 0..requests {
            client.invoke(&request).unwrap();
        }
        let wall = t0.elapsed();
        let m = net.metrics();
        // Aggregate the community node plus its delegation workers (which
        // send under derived names).
        let (community_node, community_bytes) = m
            .nodes
            .iter()
            .filter(|n| n.node.as_str().starts_with(node.as_str()))
            .fold((0u64, 0u64), |(msgs, bytes), n| {
                (msgs + n.handled(), bytes + n.bytes_handled())
            });
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", community_node as f64 / requests as f64),
            format!("{:.0}", community_bytes as f64 / requests as f64),
            us(wall / requests as u32),
        ]);
        drop(community);
    }
    print_table(
        "E6b (ablation) — delegation mode: load on the community node per request",
        &[
            "mode",
            "community msgs/req",
            "community bytes/req",
            "mean us/req",
        ],
        &rows,
    );
    println!(
        "expected shape: redirect keeps the (potentially large) payload off the community node \
         — fewer bytes per request through the broker — at the cost of one extra client hop."
    );
}

// ---------------------------------------------------------------------
// E7 — Section 2: 'no complex scheduling algorithm' — per-notification
// routing-table decision cost.
// ---------------------------------------------------------------------
fn e7_routing_lookup() {
    use selfserv_routing::NotificationLabel;
    let mut rows = Vec::new();
    for &n in &[5usize, 20, 80, 160] {
        let sc = synth::sequence(n);
        let plan = selfserv_routing::generate(&sc).unwrap();
        let table = plan.table(&format!("s{}", n / 2).as_str().into()).unwrap();
        let seen = vec![NotificationLabel::Completed(
            format!("s{}", n / 2 - 1).as_str().into(),
        )];
        let reps = 200_000u32;
        let t0 = Instant::now();
        let mut hits = 0usize;
        for _ in 0..reps {
            for pre in &table.preconditions {
                if pre.satisfied_by(&seen) {
                    hits += 1;
                    break;
                }
            }
        }
        let per = t0.elapsed() / reps;
        assert!(hits > 0);

        // Worst case: the AND-join table of a wide ladder stage.
        let wide = synth::ladder(8, 1);
        let wide_plan = selfserv_routing::generate(&wide).unwrap();
        let fin = &wide_plan.wrapper.finish_alternatives[0];
        let all: Vec<NotificationLabel> = fin.labels.clone();
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(fin.satisfied_by(&all));
        }
        let join_per = t0.elapsed() / reps;
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", per.as_nanos()),
            format!("{:.0}", join_per.as_nanos()),
        ]);
    }
    print_table(
        "E7 — routing-table decision cost per notification",
        &["chart tasks", "linear precondition ns", "8-way AND-join ns"],
        &rows,
    );
    println!(
        "expected shape: constant nanoseconds regardless of composition size — the coordinator \
         'does not implement any complex scheduling algorithm'."
    );
}
