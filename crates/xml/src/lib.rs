//! # selfserv-xml
//!
//! A small, dependency-free XML library used as the wire and storage format
//! of the SELF-SERV platform.
//!
//! In the original system (VLDB 2002 demo), *every* artefact exchanged
//! between platform components is an XML document: statechart definitions
//! produced by the service editor, routing tables produced by the service
//! deployer, SOAP-style discovery requests, and the messages coordinators
//! exchange at run time. The original implementation used Oracle's XML
//! Parser 2.0 / JAXP; this crate provides the equivalent functionality from
//! scratch:
//!
//! * [`Element`] / [`Node`] — an owned document tree,
//! * [`Element::to_xml`] / [`Element::to_pretty_xml`] — serialization with
//!   correct escaping,
//! * [`parse`] — a strict, well-formedness-checking parser for the subset of
//!   XML the platform emits (elements, attributes, text, CDATA, comments,
//!   processing instructions, the five predefined entities and numeric
//!   character references),
//! * path-style convenience queries ([`Element::find`],
//!   [`Element::find_all`], [`Element::child_text`], …).
//!
//! The parser rejects malformed input with positioned [`XmlError`]s rather
//! than guessing, because routing tables uploaded to remote hosts must be
//! trustworthy: a silently mis-parsed precondition would stall a composite
//! service instance forever.
//!
//! ## Example
//!
//! ```
//! use selfserv_xml::{Element, parse};
//!
//! let doc = Element::new("routingTable")
//!     .with_attr("state", "CR")
//!     .with_child(Element::new("precondition").with_text("AB & AS"));
//! let xml = doc.to_pretty_xml();
//! let back = parse(&xml).unwrap();
//! assert_eq!(back.attr("state"), Some("CR"));
//! ```

mod doc;
mod error;
mod parser;
mod query;
mod writer;

pub use doc::{Element, Node};
pub use error::{Position, XmlError};
pub use parser::{parse, parse_document, Document};
pub use query::path_escape;

#[cfg(test)]
mod proptests;
