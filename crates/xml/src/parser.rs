//! A strict recursive-descent parser for the XML subset used by the
//! SELF-SERV platform.
//!
//! Supported constructs: the XML declaration, processing instructions
//! (skipped), `DOCTYPE` declarations (skipped), comments (preserved), CDATA
//! sections, elements, attributes quoted with `"` or `'`, character data,
//! the five predefined entities and decimal/hex character references.
//!
//! ## Whitespace policy
//!
//! Text nodes consisting entirely of whitespace that appear *next to element
//! children* are treated as indentation and dropped; in mixed content the
//! remaining text nodes are trimmed. Elements whose children are text-only
//! keep their text verbatim. This makes `parse(e.to_pretty_xml()) == parse(e.to_xml())`
//! for every tree the platform produces.

use crate::doc::{Element, Node};
use crate::error::{Position, XmlError};

/// A parsed document: the root element plus any comments that appeared
/// before or after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Comments preceding the root element.
    pub leading_comments: Vec<String>,
    /// The document element.
    pub root: Element,
    /// Comments following the root element.
    pub trailing_comments: Vec<String>,
}

/// Parses a complete XML document and returns its root element.
///
/// This is the entry point used throughout the platform; use
/// [`parse_document`] if top-level comments matter.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    parse_document(input).map(|d| d.root)
}

/// Parses a complete XML document, retaining top-level comments.
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let mut leading_comments = Vec::new();
    loop {
        p.skip_whitespace();
        if p.starts_with("<!--") {
            leading_comments.push(p.read_comment()?);
        } else if p.starts_with("<?") {
            p.skip_pi()?;
        } else if p.starts_with("<!DOCTYPE") {
            p.skip_doctype()?;
        } else {
            break;
        }
    }
    p.skip_whitespace();
    if p.eof() {
        return Err(XmlError::NoRootElement);
    }
    if !p.starts_with("<") {
        return Err(XmlError::UnexpectedChar {
            expected: "document element",
            found: p.peek_char().unwrap(),
            position: p.position(),
        });
    }
    let root = p.read_element()?;
    let mut trailing_comments = Vec::new();
    loop {
        p.skip_whitespace();
        if p.eof() {
            break;
        }
        if p.starts_with("<!--") {
            trailing_comments.push(p.read_comment()?);
        } else if p.starts_with("<?") {
            p.skip_pi()?;
        } else {
            return Err(XmlError::TrailingContent {
                position: p.position(),
            });
        }
    }
    Ok(Document {
        leading_comments,
        root,
        trailing_comments,
    })
}

struct Parser<'a> {
    src: &'a str,
    /// Byte offset into `src`.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.col,
        }
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn peek_char(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn advance_char(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Advances past `s`, which the caller has verified is next.
    fn consume(&mut self, s: &str) {
        debug_assert!(self.starts_with(s));
        for _ in s.chars() {
            self.advance_char();
        }
    }

    fn expect(&mut self, s: &'static str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.consume(s);
            Ok(())
        } else if self.eof() {
            Err(XmlError::UnexpectedEof {
                expected: s,
                position: self.position(),
            })
        } else {
            Err(XmlError::UnexpectedChar {
                expected: s,
                found: self.peek_char().unwrap(),
                position: self.position(),
            })
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek_char(), Some(c) if c.is_whitespace()) {
            self.advance_char();
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            self.skip_pi()?;
        }
        Ok(())
    }

    fn skip_pi(&mut self) -> Result<(), XmlError> {
        self.consume("<?");
        loop {
            if self.eof() {
                return Err(XmlError::UnexpectedEof {
                    expected: "?> to close processing instruction",
                    position: self.position(),
                });
            }
            if self.starts_with("?>") {
                self.consume("?>");
                return Ok(());
            }
            self.advance_char();
        }
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.consume("<!DOCTYPE");
        let mut bracket_depth = 0usize;
        loop {
            match self.peek_char() {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        expected: "> to close DOCTYPE",
                        position: self.position(),
                    })
                }
                Some('[') => {
                    bracket_depth += 1;
                    self.advance_char();
                }
                Some(']') => {
                    bracket_depth = bracket_depth.saturating_sub(1);
                    self.advance_char();
                }
                Some('>') if bracket_depth == 0 => {
                    self.advance_char();
                    return Ok(());
                }
                Some(_) => {
                    self.advance_char();
                }
            }
        }
    }

    fn read_comment(&mut self) -> Result<String, XmlError> {
        self.consume("<!--");
        let start = self.pos;
        loop {
            if self.eof() {
                return Err(XmlError::UnexpectedEof {
                    expected: "--> to close comment",
                    position: self.position(),
                });
            }
            if self.starts_with("-->") {
                let text = self.src[start..self.pos].to_string();
                self.consume("-->");
                return Ok(text);
            }
            self.advance_char();
        }
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')
    }

    fn read_name(&mut self, what: &'static str) -> Result<String, XmlError> {
        match self.peek_char() {
            None => Err(XmlError::UnexpectedEof {
                expected: what,
                position: self.position(),
            }),
            Some(c) if !Self::is_name_start(c) => Err(XmlError::UnexpectedChar {
                expected: what,
                found: c,
                position: self.position(),
            }),
            Some(_) => {
                let start = self.pos;
                while matches!(self.peek_char(), Some(c) if Self::is_name_char(c)) {
                    self.advance_char();
                }
                Ok(self.src[start..self.pos].to_string())
            }
        }
    }

    /// Reads an entity reference; the cursor is on `&`.
    fn read_entity(&mut self, out: &mut String) -> Result<(), XmlError> {
        let ent_pos = self.position();
        self.consume("&");
        let start = self.pos;
        // Entities are short; cap the scan so an unterminated `&` gives a
        // focused error instead of consuming the document.
        for _ in 0..12 {
            match self.peek_char() {
                Some(';') => {
                    let entity = &self.src[start..self.pos];
                    self.advance_char();
                    let decoded = match entity {
                        "amp" => '&',
                        "lt" => '<',
                        "gt" => '>',
                        "apos" => '\'',
                        "quot" => '"',
                        _ => {
                            let code = if let Some(hex) = entity
                                .strip_prefix("#x")
                                .or_else(|| entity.strip_prefix("#X"))
                            {
                                u32::from_str_radix(hex, 16).ok()
                            } else if let Some(dec) = entity.strip_prefix('#') {
                                dec.parse::<u32>().ok()
                            } else {
                                None
                            };
                            match code.and_then(char::from_u32) {
                                Some(c) => c,
                                None => {
                                    return Err(XmlError::InvalidEntity {
                                        entity: entity.to_string(),
                                        position: ent_pos,
                                    })
                                }
                            }
                        }
                    };
                    out.push(decoded);
                    return Ok(());
                }
                Some(_) => {
                    self.advance_char();
                }
                None => break,
            }
        }
        Err(XmlError::InvalidEntity {
            entity: self.src[start..self.pos].to_string(),
            position: ent_pos,
        })
    }

    fn read_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek_char() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => {
                return Err(XmlError::UnexpectedChar {
                    expected: "quoted attribute value",
                    found: c,
                    position: self.position(),
                })
            }
            None => {
                return Err(XmlError::UnexpectedEof {
                    expected: "quoted attribute value",
                    position: self.position(),
                })
            }
        };
        self.advance_char();
        let mut value = String::new();
        loop {
            match self.peek_char() {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        expected: "closing attribute quote",
                        position: self.position(),
                    })
                }
                Some(c) if c == quote => {
                    self.advance_char();
                    return Ok(value);
                }
                Some('&') => self.read_entity(&mut value)?,
                Some('<') => {
                    return Err(XmlError::UnexpectedChar {
                        expected: "attribute value character",
                        found: '<',
                        position: self.position(),
                    })
                }
                Some(c) => {
                    value.push(c);
                    self.advance_char();
                }
            }
        }
    }

    /// Reads one element; the cursor is on `<`.
    fn read_element(&mut self) -> Result<Element, XmlError> {
        self.expect("<")?;
        let name = self.read_name("element name")?;
        let mut element = Element::new(name);
        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek_char() {
                Some('>') => {
                    self.advance_char();
                    break;
                }
                Some('/') => {
                    self.advance_char();
                    self.expect(">")?;
                    return Ok(element);
                }
                Some(c) if Self::is_name_start(c) => {
                    let attr_pos = self.position();
                    let attr_name = self.read_name("attribute name")?;
                    if element.attr(&attr_name).is_some() {
                        return Err(XmlError::DuplicateAttribute {
                            name: attr_name,
                            position: attr_pos,
                        });
                    }
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.read_attr_value()?;
                    element.attrs.push((attr_name, value));
                }
                Some(c) => {
                    return Err(XmlError::UnexpectedChar {
                        expected: "attribute, '>', or '/>'",
                        found: c,
                        position: self.position(),
                    })
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        expected: "end of start tag",
                        position: self.position(),
                    })
                }
            }
        }
        // Children until matching close tag.
        let mut raw_children: Vec<Node> = Vec::new();
        loop {
            if self.eof() {
                return Err(XmlError::UnexpectedEof {
                    expected: "closing tag",
                    position: self.position(),
                });
            }
            if self.starts_with("</") {
                let close_pos = self.position();
                self.consume("</");
                let close_name = self.read_name("closing tag name")?;
                self.skip_whitespace();
                self.expect(">")?;
                if close_name != element.name {
                    return Err(XmlError::MismatchedTag {
                        open: element.name.clone(),
                        close: close_name,
                        position: close_pos,
                    });
                }
                element.children = normalize_children(raw_children);
                return Ok(element);
            } else if self.starts_with("<!--") {
                let c = self.read_comment()?;
                raw_children.push(Node::Comment(c));
            } else if self.starts_with("<![CDATA[") {
                self.consume("<![CDATA[");
                let start = self.pos;
                loop {
                    if self.eof() {
                        return Err(XmlError::UnexpectedEof {
                            expected: "]]> to close CDATA",
                            position: self.position(),
                        });
                    }
                    if self.starts_with("]]>") {
                        raw_children.push(Node::Text(self.src[start..self.pos].to_string()));
                        self.consume("]]>");
                        break;
                    }
                    self.advance_char();
                }
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<") {
                raw_children.push(Node::Element(self.read_element()?));
            } else {
                // Character data run.
                let mut text = String::new();
                loop {
                    match self.peek_char() {
                        None | Some('<') => break,
                        Some('&') => self.read_entity(&mut text)?,
                        Some(c) => {
                            text.push(c);
                            self.advance_char();
                        }
                    }
                }
                raw_children.push(Node::Text(text));
            }
        }
    }
}

/// Applies the whitespace policy described in the module docs and merges
/// adjacent text runs (which arise from entity boundaries).
fn normalize_children(raw: Vec<Node>) -> Vec<Node> {
    // Merge adjacent text nodes first.
    let mut merged: Vec<Node> = Vec::with_capacity(raw.len());
    for node in raw {
        if let (Some(Node::Text(prev)), Node::Text(t)) = (merged.last_mut(), &node) {
            prev.push_str(t);
            continue;
        }
        merged.push(node);
    }
    let has_element = merged.iter().any(|n| matches!(n, Node::Element(_)));
    if !has_element {
        return merged;
    }
    merged
        .into_iter()
        .filter_map(|n| match n {
            Node::Text(t) => {
                let trimmed = t.trim();
                if trimmed.is_empty() {
                    None
                } else {
                    Some(Node::Text(trimmed.to_string()))
                }
            }
            other => Some(other),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.is_empty());
    }

    #[test]
    fn parses_prolog_doctype_and_pi() {
        let e = parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE statechart [ <!ELEMENT x (y)> ]>\n<?pi data?>\n<a/>",
        )
        .unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn parses_attributes_with_both_quote_styles() {
        let e = parse("<t a=\"1\" b='two'/>").unwrap();
        assert_eq!(e.attr("a"), Some("1"));
        assert_eq!(e.attr("b"), Some("two"));
    }

    #[test]
    fn decodes_entities_in_text_and_attributes() {
        let e = parse("<t g=\"a &lt; b &amp;&amp; c &#62; d\">&quot;x&apos; &#x41;</t>").unwrap();
        assert_eq!(e.attr("g"), Some("a < b && c > d"));
        assert_eq!(e.text(), "\"x' A");
    }

    #[test]
    fn rejects_invalid_entity() {
        let err = parse("<t>&bogus;</t>").unwrap_err();
        assert!(matches!(err, XmlError::InvalidEntity { .. }), "{err:?}");
    }

    #[test]
    fn rejects_mismatched_tags_with_position() {
        let err = parse("<a><b></a></b>").unwrap_err();
        match err {
            XmlError::MismatchedTag {
                open,
                close,
                position,
            } => {
                assert_eq!(open, "b");
                assert_eq!(close, "a");
                assert_eq!(position.line, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let err = parse("<t a=\"1\" a=\"2\"/>").unwrap_err();
        assert!(matches!(err, XmlError::DuplicateAttribute { .. }));
    }

    #[test]
    fn rejects_trailing_content() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::TrailingContent { .. }));
    }

    #[test]
    fn rejects_empty_input() {
        assert_eq!(parse("   \n ").unwrap_err(), XmlError::NoRootElement);
    }

    #[test]
    fn rejects_unclosed_element_at_eof() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn cdata_is_read_verbatim() {
        let e = parse("<t><![CDATA[a < b && <tag>]]></t>").unwrap();
        assert_eq!(e.text(), "a < b && <tag>");
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let e = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 2);
    }

    #[test]
    fn text_only_elements_keep_whitespace() {
        let e = parse("<a>  padded  </a>").unwrap();
        assert_eq!(e.text(), "  padded  ");
    }

    #[test]
    fn mixed_content_text_is_trimmed() {
        let e = parse("<a>\n  hello\n  <b/>\n</a>").unwrap();
        assert_eq!(e.text(), "hello");
        assert_eq!(e.child_element_count(), 1);
    }

    #[test]
    fn comments_inside_elements_are_preserved() {
        let e = parse("<a><!-- note --><b/></a>").unwrap();
        assert!(e
            .children
            .iter()
            .any(|n| matches!(n, Node::Comment(c) if c.contains("note"))));
    }

    #[test]
    fn document_level_comments_are_collected() {
        let d = parse_document("<!-- head --><a/><!-- tail -->").unwrap();
        assert_eq!(d.leading_comments, vec![" head ".to_string()]);
        assert_eq!(d.trailing_comments, vec![" tail ".to_string()]);
    }

    #[test]
    fn error_positions_track_lines() {
        let err = parse("<a>\n<b x=1/>\n</a>").unwrap_err();
        let pos = err.position().unwrap();
        assert_eq!(pos.line, 2);
    }

    #[test]
    fn non_ascii_text_round_trips() {
        let e = parse("<t>naïve — ✓</t>").unwrap();
        assert_eq!(e.text(), "naïve — ✓");
    }

    #[test]
    fn deeply_nested_elements_parse() {
        let mut xml = String::new();
        for i in 0..200 {
            xml.push_str(&format!("<n{i}>"));
        }
        for i in (0..200).rev() {
            xml.push_str(&format!("</n{i}>"));
        }
        let e = parse(&xml).unwrap();
        assert_eq!(e.name, "n0");
        assert_eq!(e.subtree_size(), 200);
    }

    #[test]
    fn pretty_and_compact_forms_parse_identically() {
        let e = Element::new("statechart")
            .with_attr("name", "Travel")
            .with_child(
                Element::new("state")
                    .with_attr("id", "AB")
                    .with_child(Element::new("doc").with_text("Accommodation Booking")),
            )
            .with_child(Element::new("transition").with_attr("guard", "near(a, b) == false"));
        let from_pretty = parse(&e.to_pretty_xml()).unwrap();
        let from_compact = parse(&e.to_xml()).unwrap();
        assert_eq!(from_pretty, from_compact);
        assert_eq!(from_pretty, e);
    }
}
