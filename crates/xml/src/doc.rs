//! The owned XML document tree: [`Element`] and [`Node`].

use std::fmt;

/// A node in an XML document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data. Stored unescaped; escaping happens on write.
    Text(String),
    /// A comment (`<!-- ... -->`). Preserved so that generated documents can
    /// carry provenance notes (e.g. which deployer version produced a
    /// routing table).
    Comment(String),
}

impl Node {
    /// Returns the element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Returns the text inside this node, if it is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: a name, ordered attributes, and ordered child nodes.
///
/// Attribute order is preserved (it matters for deterministic golden tests
/// of generated routing tables). Lookup is linear, which is appropriate for
/// the small fan-out of platform documents (a handful of attributes per
/// element).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name (e.g. `statechart`, `precondition`).
    pub name: String,
    /// Attribute `(name, value)` pairs in document order. Values are stored
    /// unescaped.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: adds an attribute and returns `self`.
    ///
    /// Setting an attribute that already exists replaces its value in place,
    /// matching DOM semantics.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder: appends a child element and returns `self`.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: appends every element of an iterator as a child.
    pub fn with_children(mut self, children: impl IntoIterator<Item = Element>) -> Self {
        self.children
            .extend(children.into_iter().map(Node::Element));
        self
    }

    /// Builder: appends a text node and returns `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Builder: appends an optional attribute (no-op on `None`).
    pub fn with_opt_attr(
        mut self,
        name: impl Into<String>,
        value: Option<impl Into<String>>,
    ) -> Self {
        if let Some(v) = value {
            self.set_attr(name, v);
        }
        self
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Appends a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Appends a text node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Appends a comment node.
    pub fn push_comment(&mut self, text: impl Into<String>) {
        self.children.push(Node::Comment(text.into()));
    }

    /// Returns the value of an attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns an attribute value or a positioned error message suitable for
    /// bubbling out of document decoders.
    pub fn require_attr(&self, name: &str) -> Result<&str, String> {
        self.attr(name)
            .ok_or_else(|| format!("<{}> is missing required attribute {:?}", self.name, name))
    }

    /// Iterates over the direct child elements (skipping text and comments).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Number of direct child elements.
    pub fn child_element_count(&self) -> usize {
        self.child_elements().count()
    }

    /// First direct child element with the given tag name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All direct child elements with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// First direct child element with the given name, or an error message.
    pub fn require(&self, name: &str) -> Result<&Element, String> {
        self.find(name)
            .ok_or_else(|| format!("<{}> is missing required child <{}>", self.name, name))
    }

    /// Concatenated text of the *direct* text children of this element.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Node::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Text content of the first child element with the given name
    /// (`<name>text</name>`), if that child exists.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.find(name).map(Element::text)
    }

    /// True if the element has no attributes and no children.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty() && self.children.is_empty()
    }

    /// Total number of elements in this subtree, including `self`.
    /// Used by benches to size generated documents.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Descends through the tree following `/`-separated child element names
    /// (e.g. `"definitions/service/operation"`). Returns the first match at
    /// each step.
    pub fn get_path(&self, path: &str) -> Option<&Element> {
        let mut cur = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur = cur.find(seg)?;
        }
        Some(cur)
    }
}

impl fmt::Display for Element {
    /// Displays the element as compact XML.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("state")
            .with_attr("id", "CR")
            .with_attr("name", "Car Rental")
            .with_child(Element::new("input").with_attr("param", "city"))
            .with_child(Element::new("input").with_attr("param", "dates"))
            .with_text("trailing")
    }

    #[test]
    fn attr_lookup_and_replacement() {
        let mut e = sample();
        assert_eq!(e.attr("id"), Some("CR"));
        assert_eq!(e.attr("missing"), None);
        e.set_attr("id", "CR2");
        assert_eq!(e.attr("id"), Some("CR2"));
        // replacement must not duplicate
        assert_eq!(e.attrs.iter().filter(|(n, _)| n == "id").count(), 1);
    }

    #[test]
    fn require_attr_reports_element_name() {
        let e = sample();
        let err = e.require_attr("nope").unwrap_err();
        assert!(err.contains("state"), "{err}");
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn find_and_find_all() {
        let e = sample();
        assert_eq!(e.find("input").unwrap().attr("param"), Some("city"));
        assert_eq!(e.find_all("input").count(), 2);
        assert!(e.find("output").is_none());
    }

    #[test]
    fn text_concatenates_direct_text_only() {
        let e = Element::new("a")
            .with_text("x")
            .with_child(Element::new("b").with_text("hidden"))
            .with_text("y");
        assert_eq!(e.text(), "xy");
    }

    #[test]
    fn child_text_reads_wrapped_value() {
        let e = Element::new("service")
            .with_child(Element::new("name").with_text("Accommodation Booking"));
        assert_eq!(
            e.child_text("name").as_deref(),
            Some("Accommodation Booking")
        );
        assert_eq!(e.child_text("absent"), None);
    }

    #[test]
    fn get_path_descends() {
        let doc = Element::new("definitions").with_child(
            Element::new("service").with_child(Element::new("operation").with_attr("name", "book")),
        );
        let op = doc.get_path("service/operation").unwrap();
        assert_eq!(op.attr("name"), Some("book"));
        assert!(doc.get_path("service/missing").is_none());
        // empty path returns self
        assert_eq!(doc.get_path("").unwrap().name, "definitions");
    }

    #[test]
    fn subtree_size_counts_elements() {
        assert_eq!(sample().subtree_size(), 3);
        assert_eq!(Element::new("x").subtree_size(), 1);
    }

    #[test]
    fn with_opt_attr() {
        let e = Element::new("t")
            .with_opt_attr("a", Some("1"))
            .with_opt_attr("b", None::<String>);
        assert_eq!(e.attr("a"), Some("1"));
        assert_eq!(e.attr("b"), None);
    }

    #[test]
    fn is_empty() {
        assert!(Element::new("x").is_empty());
        assert!(!sample().is_empty());
    }
}
