//! Small query helpers shared by the document decoders in the higher-level
//! crates.

/// Escapes a string for embedding in a `/`-separated path (used by
/// deployment descriptors that reference states by path). `/` and `%` are
/// percent-encoded; everything else passes through.
pub fn path_escape(segment: &str) -> String {
    let mut out = String::with_capacity(segment.len());
    for c in segment.chars() {
        match c {
            '/' => out.push_str("%2F"),
            '%' => out.push_str("%25"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_slash_and_percent() {
        assert_eq!(path_escape("a/b%c"), "a%2Fb%25c");
    }

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(path_escape("CarRental-1.2"), "CarRental-1.2");
    }
}
