//! Error and source-position types for the XML parser.

use std::fmt;

/// A 1-based line/column position inside an XML source string.
///
/// Positions are tracked by the parser so that a malformed statechart or
/// routing-table document can be reported precisely to the service composer
/// (the original platform surfaced such errors in the service editor GUI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line; the platform's
    /// documents are ASCII apart from text content).
    pub column: u32,
}

impl Position {
    /// The start of a document.
    pub const START: Position = Position { line: 1, column: 1 };
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        expected: &'static str,
        /// Where the input ended.
        position: Position,
    },
    /// A character that cannot start or continue the current construct.
    UnexpectedChar {
        /// What the parser expected instead.
        expected: &'static str,
        /// The offending character.
        found: char,
        /// Where it was found.
        position: Position,
    },
    /// `</close>` did not match the innermost open element.
    MismatchedTag {
        /// Name of the element that is open.
        open: String,
        /// Name found in the closing tag.
        close: String,
        /// Where the closing tag starts.
        position: Position,
    },
    /// An attribute appeared twice on the same element.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
        /// Where the repeated attribute starts.
        position: Position,
    },
    /// An entity reference (`&...;`) that is not one of the five predefined
    /// entities or a well-formed numeric character reference.
    InvalidEntity {
        /// The raw entity text between `&` and `;` (possibly truncated).
        entity: String,
        /// Where the entity starts.
        position: Position,
    },
    /// Content found after the document element closed.
    TrailingContent {
        /// Where the extra content starts.
        position: Position,
    },
    /// The document contained no root element.
    NoRootElement,
}

impl XmlError {
    /// The position the error was detected at, if the error carries one.
    pub fn position(&self) -> Option<Position> {
        match self {
            XmlError::UnexpectedEof { position, .. }
            | XmlError::UnexpectedChar { position, .. }
            | XmlError::MismatchedTag { position, .. }
            | XmlError::DuplicateAttribute { position, .. }
            | XmlError::InvalidEntity { position, .. }
            | XmlError::TrailingContent { position } => Some(*position),
            XmlError::NoRootElement => None,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { expected, position } => {
                write!(
                    f,
                    "{position}: unexpected end of input while reading {expected}"
                )
            }
            XmlError::UnexpectedChar {
                expected,
                found,
                position,
            } => {
                write!(f, "{position}: expected {expected}, found {found:?}")
            }
            XmlError::MismatchedTag {
                open,
                close,
                position,
            } => {
                write!(
                    f,
                    "{position}: closing tag </{close}> does not match open element <{open}>"
                )
            }
            XmlError::DuplicateAttribute { name, position } => {
                write!(f, "{position}: duplicate attribute {name:?}")
            }
            XmlError::InvalidEntity { entity, position } => {
                write!(f, "{position}: invalid entity reference &{entity};")
            }
            XmlError::TrailingContent { position } => {
                write!(f, "{position}: content after document element")
            }
            XmlError::NoRootElement => write!(f, "document contains no root element"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_displays_line_and_column() {
        let p = Position {
            line: 3,
            column: 17,
        };
        assert_eq!(p.to_string(), "3:17");
    }

    #[test]
    fn error_display_is_informative() {
        let e = XmlError::MismatchedTag {
            open: "state".into(),
            close: "transition".into(),
            position: Position { line: 2, column: 5 },
        };
        let s = e.to_string();
        assert!(s.contains("state"));
        assert!(s.contains("transition"));
        assert!(s.contains("2:5"));
    }

    #[test]
    fn error_position_accessor() {
        assert_eq!(XmlError::NoRootElement.position(), None);
        let e = XmlError::TrailingContent {
            position: Position::START,
        };
        assert_eq!(e.position(), Some(Position::START));
    }
}
