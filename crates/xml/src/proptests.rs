//! Property tests: serialization followed by parsing must reproduce the
//! original tree, for both the compact and the pretty writer.

use crate::{parse, Element, Node};
use proptest::prelude::*;

/// Attribute/element names: XML name subset.
fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,11}"
}

/// Text content without leading/trailing whitespace (the parser trims text
/// in mixed content, see the whitespace policy) and without control chars.
fn arb_text() -> impl Strategy<Value = String> {
    "[ -~]{0,24}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

fn arb_attr_value() -> impl Strategy<Value = String> {
    // Attribute values may contain anything printable plus tab/newline
    // (escaped as character references on write).
    "[ -~\t\n]{0,20}"
}

fn arb_attrs() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((arb_name(), arb_attr_value()), 0..4).prop_map(|pairs| {
        // Deduplicate attribute names: duplicates are a parse error by
        // design, so generated trees must not contain them.
        let mut seen = std::collections::HashSet::new();
        pairs
            .into_iter()
            .filter(|(n, _)| seen.insert(n.clone()))
            .collect::<Vec<_>>()
    })
}

fn arb_element(depth: u32) -> impl Strategy<Value = Element> {
    let leaf = (arb_name(), arb_attrs(), proptest::option::of(arb_text())).prop_map(
        |(name, attrs, text)| {
            let mut e = Element::new(name);
            e.attrs = attrs;
            if let Some(t) = text {
                e.push_text(t);
            }
            e
        },
    );
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_element(depth - 1);
    (
        arb_name(),
        arb_attrs(),
        proptest::collection::vec(inner, 0..4),
    )
        .prop_map(|(name, attrs, children)| {
            let mut e = Element::new(name);
            e.attrs = attrs;
            for c in children {
                e.push_child(c);
            }
            e
        })
        .boxed()
}

/// Drops empty text nodes that the generator may have produced via empty
/// strings — the parser would never produce them.
fn normalize(mut e: Element) -> Element {
    e.children = e
        .children
        .into_iter()
        .filter_map(|n| match n {
            Node::Text(t) if t.is_empty() => None,
            Node::Element(c) => Some(Node::Element(normalize(c))),
            other => Some(other),
        })
        .collect();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_round_trip(e in arb_element(3)) {
        let e = normalize(e);
        let xml = e.to_xml();
        let back = parse(&xml).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn pretty_round_trip(e in arb_element(3)) {
        let e = normalize(e);
        let xml = e.to_pretty_xml();
        let back = parse(&xml).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~<>&\"']{0,64}") {
        // Errors are fine; panics are not.
        let _ = parse(&s);
    }

    #[test]
    fn attr_values_round_trip_exactly(v in "[ -~\t\n]{0,32}") {
        let e = Element::new("t").with_attr("v", v.clone());
        let back = parse(&e.to_xml()).unwrap();
        prop_assert_eq!(back.attr("v"), Some(v.as_str()));
    }

    #[test]
    fn text_only_content_round_trips_exactly(t in "[ -~]{1,48}") {
        let e = Element::new("t").with_text(t.clone());
        let back = parse(&e.to_xml()).unwrap();
        prop_assert_eq!(back.text(), t);
    }
}
