//! Serialization of [`Element`] trees back to XML text.

use crate::doc::{Element, Node};

/// Escapes character data for use between tags.
fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value (always double-quoted on output).
fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

/// Comments may not contain `--`; we substitute a visually similar sequence
/// rather than erroring, because comments are advisory provenance only.
fn sanitize_comment(s: &str) -> String {
    s.replace("--", "- -")
}

impl Element {
    /// Serializes the subtree to compact (single-line) XML.
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(self.subtree_size() * 32);
        self.write_compact(&mut out);
        out
    }

    /// Serializes the subtree to indented XML with a standard document
    /// prolog, matching the "XML document" panels of the original service
    /// editor.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::with_capacity(self.subtree_size() * 48);
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_open_tag(&self, out: &mut String, self_close: bool) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_attr(v, out);
            out.push('"');
        }
        if self_close {
            out.push_str("/>");
        } else {
            out.push('>');
        }
    }

    fn write_compact(&self, out: &mut String) {
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        self.write_open_tag(out, false);
        for child in &self.children {
            match child {
                Node::Element(e) => e.write_compact(out),
                Node::Text(t) => escape_text(t, out),
                Node::Comment(c) => {
                    out.push_str("<!--");
                    out.push_str(&sanitize_comment(c));
                    out.push_str("-->");
                }
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// True when the element's children are text-only, in which case the
    /// pretty printer keeps the element on one line so that values like
    /// `<name>Car Rental</name>` stay readable (and text round-trips without
    /// gaining indentation whitespace).
    fn is_text_only(&self) -> bool {
        self.children.iter().all(|c| matches!(c, Node::Text(_)))
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        if self.is_text_only() {
            self.write_open_tag(out, false);
            for child in &self.children {
                if let Node::Text(t) = child {
                    escape_text(t, out);
                }
            }
            out.push_str("</");
            out.push_str(&self.name);
            out.push('>');
            return;
        }
        self.write_open_tag(out, false);
        for child in &self.children {
            out.push('\n');
            match child {
                Node::Element(e) => e.write_pretty(out, depth + 1),
                Node::Text(t) => {
                    // Mixed content: indent the text on its own line. The
                    // parser, when later reading this pretty output, trims
                    // pure-whitespace runs between elements but keeps the
                    // text itself.
                    out.push_str(&"  ".repeat(depth + 1));
                    escape_text(t.trim(), out);
                }
                Node::Comment(c) => {
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str("<!--");
                    out.push_str(&sanitize_comment(c));
                    out.push_str("-->");
                }
            }
        }
        out.push('\n');
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse, Element};

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(Element::new("final").to_xml(), "<final/>");
    }

    #[test]
    fn attributes_are_escaped() {
        let e = Element::new("t").with_attr("guard", "a < b & \"q\"");
        assert_eq!(e.to_xml(), "<t guard=\"a &lt; b &amp; &quot;q&quot;\"/>");
    }

    #[test]
    fn text_is_escaped() {
        let e = Element::new("cond").with_text("x<y && z>0");
        assert_eq!(e.to_xml(), "<cond>x&lt;y &amp;&amp; z&gt;0</cond>");
    }

    #[test]
    fn newlines_in_attributes_survive_round_trip() {
        let e = Element::new("t").with_attr("doc", "line1\nline2\ttabbed");
        let back = parse(&e.to_xml()).unwrap();
        assert_eq!(back.attr("doc"), Some("line1\nline2\ttabbed"));
    }

    #[test]
    fn pretty_output_has_prolog_and_indentation() {
        let e = Element::new("statechart")
            .with_child(Element::new("state").with_attr("id", "a"))
            .with_child(Element::new("state").with_attr("id", "b"));
        let xml = e.to_pretty_xml();
        assert!(xml.starts_with("<?xml version=\"1.0\""));
        assert!(xml.contains("\n  <state id=\"a\"/>"));
    }

    #[test]
    fn pretty_keeps_text_only_elements_inline() {
        let e = Element::new("svc").with_child(Element::new("name").with_text("Car Rental"));
        let xml = e.to_pretty_xml();
        assert!(xml.contains("<name>Car Rental</name>"), "{xml}");
    }

    #[test]
    fn comments_are_emitted_and_double_dash_sanitized() {
        let mut e = Element::new("root");
        e.push_comment("generated -- by deployer");
        let xml = e.to_xml();
        assert!(xml.contains("<!--generated - - by deployer-->"), "{xml}");
        // must still be parseable
        parse(&xml).unwrap();
    }

    #[test]
    fn compact_round_trip_preserves_structure() {
        let e = Element::new("a")
            .with_attr("k", "v")
            .with_child(Element::new("b").with_text("hello & goodbye"))
            .with_child(Element::new("c"));
        let back = parse(&e.to_xml()).unwrap();
        assert_eq!(back, e);
    }
}
