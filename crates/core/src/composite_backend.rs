//! Nested composition: using a deployed composite service as a component
//! of another composite.
//!
//! The paper's service model is recursive — "SELF-SERV distinguishes three
//! types of services: elementary services, composite services, and service
//! communities", and a composite "aggregates multiple Web services which
//! are referred to as its components", with no restriction that components
//! be elementary. [`CompositeBackend`] adapts a running deployment's
//! wrapper endpoint to the [`ServiceBackend`] interface so a task state of
//! an outer composite can invoke an inner composite exactly like any other
//! provider.

use crate::backend::{ForwardCall, ServiceBackend};
use crate::protocol::{kinds, PersistentClient};
use selfserv_net::{NodeId, RpcError, Transport};
use selfserv_wsdl::MessageDoc;
use std::time::Duration;

/// A [`ServiceBackend`] that forwards invocations to a composite service's
/// wrapper node over the fabric.
pub struct CompositeBackend {
    name: String,
    wrapper_node: NodeId,
    /// Deadline for the nested execution (nested composites can be slow —
    /// they run a whole orchestration).
    pub timeout: Duration,
    /// Carries blocking-path invocations ([`ServiceBackend::invoke`]);
    /// concurrent calls demultiplex on its endpoint, so nothing is
    /// allocated per call. Coordinators bypass it entirely — they forward
    /// from their own node via `rpc_async` — so it connects lazily only if
    /// a blocking caller ever shows up.
    client: PersistentClient,
}

impl CompositeBackend {
    /// Adapts the composite behind `wrapper_node` (e.g.
    /// [`crate::Deployment::wrapper_node`]) as a backend named `name`,
    /// over any [`Transport`]. Connects one client node (`nested.<name>~n`)
    /// that carries every invocation.
    pub fn new(name: impl Into<String>, net: &dyn Transport, wrapper_node: NodeId) -> Self {
        let name = name.into();
        CompositeBackend {
            client: PersistentClient::new(net, format!("nested.{name}")),
            name,
            wrapper_node,
            timeout: Duration::from_secs(60),
        }
    }
}

impl CompositeBackend {
    /// The nested composite takes its inputs as execute parameters.
    fn execute_request(&self, input: &MessageDoc) -> MessageDoc {
        let mut request = MessageDoc::request("execute");
        for (k, v) in input.iter() {
            request.set(k, v.clone());
        }
        request
    }
}

impl ServiceBackend for CompositeBackend {
    /// Blocking form, for callers that can't suspend (e.g. a
    /// [`crate::ServiceHost`] task). Coordinators never take this path:
    /// they pick up [`ServiceBackend::forward`] below and await the nested
    /// execution continuation-passing instead.
    fn invoke(&self, _operation: &str, input: &MessageDoc) -> Result<MessageDoc, String> {
        let request = self.execute_request(input);
        let reply = self
            .client
            .sender()
            .rpc(
                self.wrapper_node.clone(),
                kinds::EXECUTE,
                request.to_xml(),
                self.timeout,
            )
            .map_err(|e| match e {
                RpcError::Timeout => format!("nested composite '{}' timed out", self.name),
                RpcError::Send(s) => format!("nested composite '{}' unreachable: {s}", self.name),
            })?;
        let response = MessageDoc::from_xml(&reply.body).map_err(|e| e.to_string())?;
        if response.is_fault() {
            return Err(format!(
                "nested composite '{}' faulted: {}",
                self.name,
                response.fault_reason().unwrap_or("unspecified")
            ));
        }
        Ok(response)
    }

    /// A nested invocation is pure forwarding — one request to the inner
    /// wrapper, one reply — so a coordinator carries it with zero parked
    /// workers for however long the whole nested orchestration takes.
    fn forward(&self, _operation: &str, input: &MessageDoc) -> Option<ForwardCall> {
        Some(ForwardCall {
            to: self.wrapper_node.clone(),
            kind: kinds::EXECUTE.to_string(),
            body: self.execute_request(input).to_xml(),
            timeout: self.timeout,
            label: format!("nested composite '{}'", self.name),
        })
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::EchoService;
    use crate::deploy::Deployer;
    use selfserv_expr::Value;
    use selfserv_net::{Network, NetworkConfig};
    use selfserv_statechart::{StatechartBuilder, TaskDef, TransitionDef};
    use selfserv_wsdl::ParamType;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn inner_chart() -> selfserv_statechart::Statechart {
        StatechartBuilder::new("Inner Pricing")
            .variable("item", ParamType::Str)
            .variable("quote", ParamType::Str)
            .initial("q")
            .task(
                TaskDef::new("q", "Quote")
                    .service("PriceDb", "lookup")
                    .input("item", "item")
                    .output("echoed_by", "quote"),
            )
            .final_state("f")
            .transition(TransitionDef::new("t", "q", "f"))
            .build()
            .unwrap()
    }

    fn outer_chart() -> selfserv_statechart::Statechart {
        StatechartBuilder::new("Outer Order")
            .variable("item", ParamType::Str)
            .variable("quote", ParamType::Str)
            .variable("order_ref", ParamType::Str)
            .initial("price")
            .task(
                TaskDef::new("price", "Price via nested composite")
                    .service("Inner Pricing", "execute")
                    .input("item", "item")
                    .output("quote", "quote"),
            )
            .task(
                TaskDef::new("order", "Order")
                    .service("OrderDesk", "place")
                    .input("item", "item")
                    .output("echoed_by", "order_ref"),
            )
            .final_state("f")
            .transition(TransitionDef::new("t1", "price", "order"))
            .transition(TransitionDef::new("t2", "order", "f"))
            .build()
            .unwrap()
    }

    #[test]
    fn composite_as_component_of_composite() {
        let net = Network::new(NetworkConfig::instant());
        // Deploy the inner composite.
        let mut inner_backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        inner_backends.insert("PriceDb".into(), Arc::new(EchoService::new("PriceDb")));
        let inner = Deployer::new(&net)
            .deploy(&inner_chart(), &inner_backends)
            .unwrap();

        // Wire the inner composite in as a backend of the outer one.
        let mut outer_backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        outer_backends.insert(
            "Inner Pricing".into(),
            Arc::new(CompositeBackend::new(
                "Inner Pricing",
                &net,
                inner.wrapper_node().clone(),
            )),
        );
        outer_backends.insert("OrderDesk".into(), Arc::new(EchoService::new("OrderDesk")));
        let outer = Deployer::new(&net)
            .deploy(&outer_chart(), &outer_backends)
            .unwrap();

        let out = outer
            .execute(
                MessageDoc::request("execute").with("item", Value::str("beans")),
                Duration::from_secs(10),
            )
            .unwrap();
        assert_eq!(out.get_str("quote"), Some("PriceDb"), "{out:?}");
        assert_eq!(out.get_str("order_ref"), Some("OrderDesk"));
    }

    #[test]
    fn nested_fault_propagates_to_outer_instance() {
        let net = Network::new(NetworkConfig::instant());
        let mut inner_backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        inner_backends.insert(
            "PriceDb".into(),
            Arc::new(crate::backend::FailingService::new("PriceDb", "db down")),
        );
        let inner = Deployer::new(&net)
            .deploy(&inner_chart(), &inner_backends)
            .unwrap();

        let mut outer_backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        outer_backends.insert(
            "Inner Pricing".into(),
            Arc::new(CompositeBackend::new(
                "Inner Pricing",
                &net,
                inner.wrapper_node().clone(),
            )),
        );
        outer_backends.insert("OrderDesk".into(), Arc::new(EchoService::new("OrderDesk")));
        let outer = Deployer::new(&net)
            .deploy(&outer_chart(), &outer_backends)
            .unwrap();

        let err = outer
            .execute(
                MessageDoc::request("execute").with("item", Value::str("beans")),
                Duration::from_secs(10),
            )
            .unwrap_err();
        match err {
            crate::ExecError::Fault(reason) => {
                assert!(reason.contains("db down"), "{reason}")
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn undeployed_inner_composite_times_out() {
        let net = Network::new(NetworkConfig::instant());
        let mut outer_backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        let mut backend =
            CompositeBackend::new("Inner Pricing", &net, NodeId::new("ghost.wrapper"));
        backend.timeout = Duration::from_millis(100);
        outer_backends.insert("Inner Pricing".into(), Arc::new(backend));
        outer_backends.insert("OrderDesk".into(), Arc::new(EchoService::new("OrderDesk")));
        let outer = Deployer::new(&net)
            .deploy(&outer_chart(), &outer_backends)
            .unwrap();
        let err = outer
            .execute(
                MessageDoc::request("execute").with("item", Value::str("x")),
                Duration::from_secs(5),
            )
            .unwrap_err();
        assert!(matches!(err, crate::ExecError::Fault(_)), "{err:?}");
    }
}
