//! The centralized-orchestration baseline.
//!
//! Section 1 of the paper: "the execution of an integrated service in
//! existing approaches is usually centralised, whereas the underlying
//! services are distributed and autonomous. This calls for the
//! investigation of distributed execution paradigms (e.g., peer-to-peer
//! models), that do not suffer of the scalability and availability problems
//! of centralised coordination."
//!
//! This module implements that foil faithfully: a single engine node
//! interprets the statechart, keeps all instance state, evaluates every
//! guard, and invokes every component service remotely over the fabric —
//! so *all* control and data traffic converges on one node. Experiments
//! E4/E5 compare it against the coordinator-based deployment.

use crate::coordinator::{apply_actions, build_input, eval_guard};
use crate::functions::FunctionLibrary;
use crate::protocol::{kinds, naming, ExecError, InstanceId, PersistentClient};
use selfserv_expr::Value;
use selfserv_net::{
    ConnectError, Endpoint, Envelope, MessageId, NodeId, Transport, TransportHandle,
};
use selfserv_runtime::{ExecutorHandle, Flow, NodeCtx, NodeHandle, NodeLogic};
use selfserv_statechart::{ServiceBinding, StateId, StateKind, Statechart};
use selfserv_wsdl::MessageDoc;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Duration;

/// Configuration of the central engine.
pub struct CentralConfig {
    /// The statechart to interpret.
    pub statechart: Statechart,
    /// Guard predicates.
    pub functions: FunctionLibrary,
    /// Service name → host node. Every direct task binding must resolve
    /// here; the engine has no co-located backends (that is the point).
    pub service_nodes: HashMap<String, NodeId>,
    /// Community name → community node.
    pub community_nodes: HashMap<String, NodeId>,
}

/// Spawner for the centralized engine.
pub struct CentralizedOrchestrator;

/// Handle to a spawned central engine.
pub struct CentralHandle {
    node: NodeId,
    net: TransportHandle,
    handle: Option<NodeHandle>,
    client: PersistentClient,
}

impl CentralHandle {
    /// The engine's node.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// Executes the composite operation through the central engine (same
    /// client protocol as [`crate::Deployment::execute`]; the handle's
    /// persistent client node carries every call).
    pub fn execute(&self, input: MessageDoc, timeout: Duration) -> Result<MessageDoc, ExecError> {
        crate::deploy::decode_execute_reply(self.client.sender().rpc(
            self.node.clone(),
            kinds::EXECUTE,
            input.to_xml(),
            timeout,
        ))
    }

    /// Executes from a specific endpoint.
    pub fn execute_from(
        &self,
        client: &Endpoint,
        input: MessageDoc,
        timeout: Duration,
    ) -> Result<MessageDoc, ExecError> {
        crate::deploy::decode_execute_reply(client.rpc(
            self.node.clone(),
            kinds::EXECUTE,
            input.to_xml(),
            timeout,
        ))
    }

    /// Stops the engine.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // Clear any kill left by failure injection so the name isn't
            // poisoned for a redeploy.
            self.net.revive(&self.node);
            handle.stop();
        }
    }
}

impl Drop for CentralHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

struct CInstance {
    vars: BTreeMap<String, Value>,
    regions_done: HashSet<(StateId, usize)>,
    reply_to: (NodeId, MessageId),
    finished: bool,
}

struct Engine {
    cfg: CentralConfig,
    instances: HashMap<InstanceId, CInstance>,
    /// Outstanding remote invocations: request message id → (instance,
    /// invoking state).
    pending: HashMap<MessageId, (InstanceId, StateId)>,
    next_instance: u64,
}

impl CentralizedOrchestrator {
    /// Spawns the engine on `<composite>.central`, over any [`Transport`],
    /// scheduled on the process-wide shared executor.
    pub fn spawn(net: &dyn Transport, cfg: CentralConfig) -> Result<CentralHandle, ConnectError> {
        Self::spawn_on(net, selfserv_runtime::shared(), cfg)
    }

    /// Spawns the engine scheduled on an explicit executor.
    pub fn spawn_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        cfg: CentralConfig,
    ) -> Result<CentralHandle, ConnectError> {
        let endpoint = net.connect(naming::central(&cfg.statechart.name))?;
        let node = endpoint.node().clone();
        let engine = Engine {
            cfg,
            instances: HashMap::new(),
            pending: HashMap::new(),
            next_instance: 0,
        };
        Ok(CentralHandle {
            node,
            net: net.handle(),
            handle: Some(exec.spawn_node(endpoint, engine)),
            client: PersistentClient::new(net, "client"),
        })
    }
}

impl NodeLogic for Engine {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        match env.kind.as_str() {
            kinds::STOP => return Flow::Stop,
            kinds::EXECUTE => self.on_execute(ctx.endpoint(), &env),
            kinds::INVOKE_RESULT | "community.result" | "community.fault" => {
                self.on_reply(ctx.endpoint(), &env)
            }
            _ => {}
        }
        Flow::Continue
    }
}

impl Engine {
    fn on_execute(&mut self, endpoint: &Endpoint, env: &Envelope) {
        let input = match MessageDoc::from_xml(&env.body) {
            Ok(m) => m,
            Err(e) => {
                let fault = MessageDoc::fault("execute", format!("malformed request: {e}"));
                let _ = endpoint.send_correlated(
                    env.from.clone(),
                    kinds::EXECUTE_RESULT,
                    fault.to_xml(),
                    Some(env.id),
                );
                return;
            }
        };
        self.next_instance += 1;
        let id = InstanceId(self.next_instance);
        let mut vars = BTreeMap::new();
        for decl in &self.cfg.statechart.variables {
            if let Some(init) = &decl.initial {
                vars.insert(decl.name.clone(), init.clone());
            }
        }
        for (k, v) in input.iter() {
            vars.insert(k.to_string(), v.clone());
        }
        self.instances.insert(
            id,
            CInstance {
                vars,
                regions_done: HashSet::new(),
                reply_to: (env.from.clone(), env.id),
                finished: false,
            },
        );
        let initial = self.cfg.statechart.initial.clone();
        self.enter(endpoint, id, &initial);
    }

    fn on_reply(&mut self, endpoint: &Endpoint, env: &Envelope) {
        let Some(correlation) = env.correlation else {
            return;
        };
        let Some((instance, state_id)) = self.pending.remove(&correlation) else {
            return;
        };
        if self.instances.get(&instance).is_none_or(|i| i.finished) {
            return;
        }
        if env.kind == "community.fault" {
            let reason = env
                .body
                .attr("reason")
                .unwrap_or("community fault")
                .to_string();
            self.fault(endpoint, instance, &format!("state '{state_id}': {reason}"));
            return;
        }
        let response = match MessageDoc::from_xml(&env.body) {
            Ok(m) => m,
            Err(e) => {
                self.fault(
                    endpoint,
                    instance,
                    &format!("state '{state_id}': malformed reply: {e}"),
                );
                return;
            }
        };
        if response.is_fault() {
            let reason = response.fault_reason().unwrap_or("fault").to_string();
            self.fault(endpoint, instance, &format!("state '{state_id}': {reason}"));
            return;
        }
        // Capture outputs.
        let sc = &self.cfg.statechart;
        if let Some(spec) = sc.state(&state_id).and_then(|s| s.task()) {
            let outputs = spec.outputs.clone();
            if let Some(inst) = self.instances.get_mut(&instance) {
                crate::coordinator::apply_outputs(&outputs, &response, &mut inst.vars);
            }
        }
        self.complete(endpoint, instance, &state_id);
    }

    /// Enters a state, resolving compound/concurrent entry like the routing
    /// generator does — but dynamically, at the engine.
    fn enter(&mut self, endpoint: &Endpoint, instance: InstanceId, state_id: &StateId) {
        let Some(state) = self.cfg.statechart.state(state_id).cloned() else {
            self.fault(endpoint, instance, &format!("missing state '{state_id}'"));
            return;
        };
        match &state.kind {
            StateKind::Choice => self.complete(endpoint, instance, state_id),
            StateKind::Compound { initial } => {
                let initial = initial.clone();
                self.enter(endpoint, instance, &initial);
            }
            StateKind::Concurrent { regions } => {
                let initials: Vec<StateId> = regions.iter().map(|r| r.initial.clone()).collect();
                for initial in initials {
                    self.enter(endpoint, instance, &initial);
                }
            }
            StateKind::Final => self.region_complete(endpoint, instance, &state),
            StateKind::Task(spec) => {
                let Some(inst) = self.instances.get(&instance) else {
                    return;
                };
                let input = match build_input(
                    spec.binding.operation(),
                    &spec.inputs,
                    &self.cfg.functions,
                    &inst.vars,
                ) {
                    Ok(m) => m,
                    Err(reason) => {
                        self.fault(endpoint, instance, &format!("state '{state_id}': {reason}"));
                        return;
                    }
                };
                let (target, kind): (NodeId, &str) = match &spec.binding {
                    ServiceBinding::Service { service, .. } => {
                        match self.cfg.service_nodes.get(service) {
                            Some(node) => (node.clone(), kinds::INVOKE),
                            None => {
                                self.fault(
                                    endpoint,
                                    instance,
                                    &format!("no host for service '{service}'"),
                                );
                                return;
                            }
                        }
                    }
                    ServiceBinding::Community { community, .. } => {
                        match self.cfg.community_nodes.get(community) {
                            Some(node) => (node.clone(), "community.invoke"),
                            None => {
                                self.fault(
                                    endpoint,
                                    instance,
                                    &format!("no node for community '{community}'"),
                                );
                                return;
                            }
                        }
                    }
                };
                match endpoint.send(target, kind, input.to_xml()) {
                    Ok(mid) => {
                        self.pending.insert(mid, (instance, state_id.clone()));
                    }
                    Err(e) => {
                        self.fault(endpoint, instance, &format!("state '{state_id}': {e}"));
                    }
                }
            }
        }
    }

    /// A state completed: fire its first enabled outgoing transition.
    fn complete(&mut self, endpoint: &Endpoint, instance: InstanceId, state_id: &StateId) {
        let transitions: Vec<_> = self
            .cfg
            .statechart
            .outgoing(state_id)
            .into_iter()
            .cloned()
            .collect();
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        let mut chosen = None;
        for t in &transitions {
            match eval_guard(&t.guard, &self.cfg.functions, &inst.vars) {
                Ok(true) => {
                    chosen = Some(t.clone());
                    break;
                }
                Ok(false) => continue,
                Err(reason) => {
                    self.fault(endpoint, instance, &format!("state '{state_id}': {reason}"));
                    return;
                }
            }
        }
        let Some(t) = chosen else {
            self.fault(
                endpoint,
                instance,
                &format!("no outgoing transition enabled after state '{state_id}'"),
            );
            return;
        };
        if let Some(inst) = self.instances.get_mut(&instance) {
            if let Err(reason) = apply_actions(&t.actions, &self.cfg.functions, &mut inst.vars) {
                self.fault(
                    endpoint,
                    instance,
                    &format!("transition '{}': {reason}", t.id),
                );
                return;
            }
        }
        self.enter(endpoint, instance, &t.target);
    }

    /// A final state was reached: completes the region, possibly the
    /// parent, possibly the instance.
    fn region_complete(
        &mut self,
        endpoint: &Endpoint,
        instance: InstanceId,
        final_state: &selfserv_statechart::State,
    ) {
        match &final_state.parent {
            None => self.finish(endpoint, instance),
            Some(parent_id) => {
                let parent = self.cfg.statechart.state(parent_id).cloned();
                match parent.as_ref().map(|p| &p.kind) {
                    Some(StateKind::Compound { .. }) => {
                        let pid = parent_id.clone();
                        self.complete(endpoint, instance, &pid);
                    }
                    Some(StateKind::Concurrent { regions }) => {
                        let n_regions = regions.len();
                        let pid = parent_id.clone();
                        let all_done = {
                            let Some(inst) = self.instances.get_mut(&instance) else {
                                return;
                            };
                            inst.regions_done.insert((pid.clone(), final_state.region));
                            (0..n_regions).all(|r| inst.regions_done.contains(&(pid.clone(), r)))
                        };
                        if all_done {
                            // Allow re-entry in loops.
                            if let Some(inst) = self.instances.get_mut(&instance) {
                                for r in 0..n_regions {
                                    inst.regions_done.remove(&(pid.clone(), r));
                                }
                            }
                            self.complete(endpoint, instance, &pid);
                        }
                    }
                    _ => self.fault(
                        endpoint,
                        instance,
                        &format!("final '{}' has invalid parent", final_state.id),
                    ),
                }
            }
        }
    }

    fn finish(&mut self, endpoint: &Endpoint, instance: InstanceId) {
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        if inst.finished {
            return;
        }
        inst.finished = true;
        let mut response = MessageDoc::response("execute");
        for (k, v) in &inst.vars {
            response.set(k.clone(), v.clone());
        }
        response.set("_instance", Value::str(instance.to_string()));
        let _ = endpoint.send_correlated(
            inst.reply_to.0.clone(),
            kinds::EXECUTE_RESULT,
            response.to_xml(),
            Some(inst.reply_to.1),
        );
        self.instances.remove(&instance);
    }

    fn fault(&mut self, endpoint: &Endpoint, instance: InstanceId, reason: &str) {
        if let Some(inst) = self.instances.get_mut(&instance) {
            if inst.finished {
                return;
            }
            inst.finished = true;
            let fault = MessageDoc::fault("execute", reason);
            let _ = endpoint.send_correlated(
                inst.reply_to.0.clone(),
                kinds::EXECUTE_RESULT,
                fault.to_xml(),
                Some(inst.reply_to.1),
            );
        }
        self.instances.remove(&instance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EchoService, ServiceHost};
    use selfserv_net::{Network, NetworkConfig};
    use selfserv_statechart::synth;
    use std::sync::Arc;

    fn central_setup(
        sc: &Statechart,
        n_services: usize,
    ) -> (
        Network,
        Vec<crate::backend::ServiceHostHandle>,
        CentralHandle,
    ) {
        let net = Network::new(NetworkConfig::instant());
        let mut hosts = Vec::new();
        let mut service_nodes = HashMap::new();
        for i in 0..n_services {
            let name = synth::synth_service_name(i);
            let node = naming::service_host(&name);
            hosts.push(
                ServiceHost::spawn(&net, node.clone(), Arc::new(EchoService::new(name.clone())))
                    .unwrap(),
            );
            service_nodes.insert(name, node);
        }
        let handle = CentralizedOrchestrator::spawn(
            &net,
            CentralConfig {
                statechart: sc.clone(),
                functions: FunctionLibrary::new(),
                service_nodes,
                community_nodes: HashMap::new(),
            },
        )
        .unwrap();
        (net, hosts, handle)
    }

    #[test]
    fn central_executes_sequence() {
        let sc = synth::sequence(4);
        let (_net, _hosts, central) = central_setup(&sc, 4);
        let out = central
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("p")),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(out.get_str("payload"), Some("p"));
    }

    #[test]
    fn central_executes_parallel_and_xor() {
        for (sc, n) in [(synth::parallel(3), 3), (synth::xor_choice(3), 3)] {
            let (_net, _hosts, central) = central_setup(&sc, n);
            let input = MessageDoc::request("execute")
                .with("payload", Value::str("p"))
                .with("branch", Value::Int(2));
            central.execute(input, Duration::from_secs(5)).unwrap();
        }
    }

    #[test]
    fn central_concentrates_traffic() {
        let sc = synth::sequence(6);
        let (net, _hosts, central) = central_setup(&sc, 6);
        net.reset_metrics();
        central
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("p")),
                Duration::from_secs(5),
            )
            .unwrap();
        let m = net.metrics();
        let engine = m.node(central.node().as_str()).unwrap();
        // The engine sends one invoke per task and receives one reply per
        // task (plus execute/reply): ~2N messages through one node.
        assert!(
            engine.handled() >= 12,
            "engine handled {}",
            engine.handled()
        );
        // Hosts each carry only their own pair.
        let host = m.node("svc.synthservice0").unwrap();
        assert_eq!(host.received, 1);
        assert_eq!(host.sent, 1);
    }

    #[test]
    fn central_faults_on_missing_host() {
        let sc = synth::sequence(2);
        let (_net, _hosts, central) = central_setup(&sc, 1); // host 1 missing
        let err = central
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("p")),
                Duration::from_secs(5),
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::Fault(_)), "{err:?}");
    }

    #[test]
    fn central_concurrent_instances() {
        let sc = synth::sequence(3);
        let (net, _hosts, central) = central_setup(&sc, 3);
        let central = Arc::new(central);
        let mut handles = Vec::new();
        for i in 0..6 {
            let central = Arc::clone(&central);
            let _ = &net;
            handles.push(std::thread::spawn(move || {
                let out = central
                    .execute(
                        MessageDoc::request("execute").with("payload", Value::str(format!("p{i}"))),
                        Duration::from_secs(10),
                    )
                    .unwrap();
                assert_eq!(out.get_str("payload"), Some(format!("p{i}").as_str()));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
