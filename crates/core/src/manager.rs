//! The service manager facade (Figure 1) and the one-call travel demo.

use crate::backend::{ServiceBackend, ServiceHost, ServiceHostHandle};
use crate::deploy::{Deployer, Deployment, DeploymentError};
use crate::functions::FunctionLibrary;
use crate::protocol::{naming, ExecError};
use crate::travel_backends::*;
use selfserv_community::{
    Community, CommunityClient, CommunityServer, CommunityServerHandle, Member, MemberId,
    QosProfile, RoundRobin, SelectionPolicy,
};
use selfserv_expr::Value;
use selfserv_net::{ConnectError, NodeId, Transport, TransportHandle};
use selfserv_registry::{
    BusinessKey, FindQuery, RegistryError, RegistryServer, RegistryServerHandle, ServiceKey,
    UddiRegistry,
};
use selfserv_statechart::travel::{self, services};
use selfserv_statechart::Statechart;
use selfserv_wsdl::{Binding, OperationDef, Param, ParamType, ServiceDescription};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// The SELF-SERV service manager: discovery engine + editor checks +
/// deployer, as one component.
pub struct ServiceManager {
    net: TransportHandle,
    registry: Arc<UddiRegistry>,
    registry_node: NodeId,
    _registry_server: RegistryServerHandle,
}

impl ServiceManager {
    /// Starts a manager whose discovery engine listens on `uddi`.
    pub fn start(net: &dyn Transport) -> Result<Self, ConnectError> {
        Self::start_on(net, "uddi")
    }

    /// Starts a manager with an explicit discovery-engine node name.
    pub fn start_on(net: &dyn Transport, node_name: &str) -> Result<Self, ConnectError> {
        let registry = Arc::new(UddiRegistry::new());
        let server = RegistryServer::spawn(net, node_name, Arc::clone(&registry))?;
        Ok(ServiceManager {
            net: net.handle(),
            registry,
            registry_node: server.node().clone(),
            _registry_server: server,
        })
    }

    /// Shared access to the discovery engine's store (local API; remote
    /// clients use [`selfserv_registry::RegistryClient`] against
    /// [`Self::registry_node`]).
    pub fn registry(&self) -> &Arc<UddiRegistry> {
        &self.registry
    }

    /// The discovery engine's fabric node.
    pub fn registry_node(&self) -> &NodeId {
        &self.registry_node
    }

    /// The transport this manager lives on.
    pub fn network(&self) -> &TransportHandle {
        &self.net
    }

    /// The service editor's pre-deployment analysis: statechart validation
    /// findings plus a check that every referenced component service is
    /// known to the discovery engine (the demo required components to be
    /// "previously registered with the Discovery Engine").
    pub fn edit_check(&self, sc: &Statechart) -> Vec<String> {
        let mut findings: Vec<String> =
            sc.validate().issues.iter().map(|i| i.to_string()).collect();
        for service in sc.referenced_services() {
            if self
                .registry
                .find(&FindQuery::any().service_name(&service))
                .is_empty()
            {
                findings.push(format!(
                    "warning[unregistered-service]: '{service}' is not registered with the \
                     discovery engine"
                ));
            }
        }
        for community in sc.referenced_communities() {
            let node = naming::community(&community);
            if !self.net.is_connected(node.as_str()) {
                findings.push(format!(
                    "warning[community-offline]: community '{community}' is not on the fabric"
                ));
            }
        }
        findings
    }

    /// Registers a provider and publishes one service description under it.
    pub fn publish_service(
        &self,
        provider: &str,
        contact: &str,
        category: &str,
        description: ServiceDescription,
    ) -> Result<(BusinessKey, ServiceKey), RegistryError> {
        let business = match self
            .registry
            .find_businesses(provider)
            .into_iter()
            .find(|b| b.name == provider)
        {
            Some(b) => b.key,
            None => self.registry.save_business(provider, contact).key,
        };
        let key = self
            .registry
            .save_service(&business, category, description, None)?;
        Ok((business, key))
    }

    /// Publishes a deployed composite service so end users can locate and
    /// execute it (the demo's Publish panel). The description's single
    /// `execute` operation takes the statechart variables as optional
    /// inputs and is bound to the wrapper node.
    pub fn publish_composite(
        &self,
        deployment: &Deployment,
        statechart: &Statechart,
        provider: &str,
        contact: &str,
    ) -> Result<(BusinessKey, ServiceKey), RegistryError> {
        let mut op = OperationDef::new("execute").with_doc(format!(
            "Executes the composite service '{}'",
            statechart.name
        ));
        for v in &statechart.variables {
            op.inputs.push(Param::optional(v.name.clone(), v.ty));
        }
        let description = ServiceDescription::new(statechart.name.clone(), provider)
            .with_doc("Composite service deployed by SELF-SERV")
            .with_operation(op)
            .with_binding(Binding::fabric(deployment.wrapper_node().as_str()));
        self.publish_service(provider, contact, "composite", description)
    }
}

/// Which accommodation providers join the demo community — this decides
/// whether the `near(major_attraction, accommodation)` guard holds, i.e.
/// whether the Car Rental state runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccommodationChoice {
    /// Only the hotel near the major attraction (CR is skipped).
    NearAttraction,
    /// Only the far-away hostel (CR runs).
    FarFromAttraction,
    /// Both providers, selected round-robin.
    Mixed,
}

/// Configuration of [`TravelDemo::launch`].
pub struct TravelDemoConfig {
    /// Simulated service time of every elementary provider.
    pub service_latency: Duration,
    /// Accommodation community membership.
    pub accommodation: AccommodationChoice,
    /// Member-selection policy for the community.
    pub policy: Arc<dyn SelectionPolicy>,
}

impl Default for TravelDemoConfig {
    fn default() -> Self {
        TravelDemoConfig {
            service_latency: Duration::ZERO,
            accommodation: AccommodationChoice::NearAttraction,
            policy: Arc::new(RoundRobin::new()),
        }
    }
}

/// The complete Section-4 demo, assembled: registry, community with
/// accommodation members, elementary services, and the deployed travel
/// composite.
pub struct TravelDemo {
    /// The transport everything runs on.
    pub net: TransportHandle,
    /// The service manager (registry).
    pub manager: ServiceManager,
    /// The deployed composite.
    pub deployment: Deployment,
    /// The accommodation community.
    pub community: CommunityServerHandle,
    /// Member hosts (kept alive for the demo's duration).
    _member_hosts: Vec<ServiceHostHandle>,
}

impl TravelDemo {
    /// Spins up the whole scenario on `net` (any [`Transport`] — the demo
    /// runs identically over the simulated fabric and real TCP sockets).
    pub fn launch(net: &dyn Transport, config: TravelDemoConfig) -> Result<TravelDemo, String> {
        let manager = ServiceManager::start(net).map_err(|e| e.to_string())?;

        // (i) providers register their services with the discovery engine.
        for desc in travel::travel_service_descriptions() {
            manager
                .publish_service(&desc.provider.clone(), "demo@selfserv", "travel", desc)
                .map_err(|e| e.to_string())?;
        }

        // (ii) the accommodation community and its members.
        let community = CommunityServer::spawn(
            net,
            naming::community(services::ACCOMMODATION_COMMUNITY).as_str(),
            Community::new(
                services::ACCOMMODATION_COMMUNITY,
                "Alternative accommodation providers",
            )
            .with_operation(
                OperationDef::new("bookAccommodation")
                    .with_input(Param::required("customer", ParamType::Str))
                    .with_input(Param::required("city", ParamType::Str))
                    .with_input(Param::optional("check_in", ParamType::Date))
                    .with_input(Param::optional("check_out", ParamType::Date))
                    .with_output(Param::required("location", ParamType::Str))
                    .with_output(Param::required("price", ParamType::Float)),
            ),
            config.policy.clone(),
            Default::default(),
        )
        .map_err(|e| e.to_string())?;

        let mut member_hosts = Vec::new();
        let join_client =
            CommunityClient::connect(net, "travel-demo-admin", community.node().clone())
                .map_err(|e| e.to_string())?;
        let mut join = |id: &str,
                        provider: &str,
                        location: &str,
                        rate: f64,
                        qos: QosProfile|
         -> Result<(), String> {
            let node = NodeId::new(format!("svc.accommodation.{id}"));
            let host = ServiceHost::spawn(
                net,
                node.clone(),
                Arc::new(AccommodationService::new(
                    provider,
                    location,
                    rate,
                    config.service_latency,
                )),
            )
            .map_err(|e| e.to_string())?;
            member_hosts.push(host);
            join_client
                .join(&Member {
                    id: MemberId(id.to_string()),
                    provider: provider.to_string(),
                    endpoint: node,
                    qos,
                })
                .map_err(|e| e.to_string())
        };
        let near_qos = QosProfile::default().with_cost(210.0).with_reputation(0.9);
        let far_qos = QosProfile::default().with_cost(85.0).with_reputation(0.6);
        match config.accommodation {
            AccommodationChoice::NearAttraction => {
                join(
                    "cbd-hotel",
                    "CBD Hotel Group",
                    "Sydney CBD Hotel",
                    210.0,
                    near_qos,
                )?;
            }
            AccommodationChoice::FarFromAttraction => {
                join(
                    "bondi-hostel",
                    "Bondi Backpackers",
                    "Bondi Hostel",
                    85.0,
                    far_qos,
                )?;
            }
            AccommodationChoice::Mixed => {
                join(
                    "bondi-hostel",
                    "Bondi Backpackers",
                    "Bondi Hostel",
                    85.0,
                    far_qos,
                )?;
                join(
                    "cbd-hotel",
                    "CBD Hotel Group",
                    "Sydney CBD Hotel",
                    210.0,
                    near_qos,
                )?;
            }
        }

        // (iii) elementary-service backends, co-located with their
        // coordinators.
        let lat = config.service_latency;
        let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        backends.insert(
            services::DOMESTIC_FLIGHT.to_string(),
            Arc::new(FlightBookingService::domestic(lat)),
        );
        backends.insert(
            services::INTERNATIONAL_FLIGHT.to_string(),
            Arc::new(FlightBookingService::international(lat)),
        );
        backends.insert(
            services::TRAVEL_INSURANCE.to_string(),
            Arc::new(InsuranceService::new(lat)),
        );
        backends.insert(
            services::ATTRACTION_SEARCH.to_string(),
            Arc::new(AttractionSearchService::new(lat)),
        );
        backends.insert(
            services::CAR_RENTAL.to_string(),
            Arc::new(CarRentalService::new(lat)),
        );

        // (iv) deploy and publish the composite.
        let statechart = travel::travel_statechart();
        let deployment = Deployer::new(net)
            .with_functions(FunctionLibrary::travel())
            .deploy(&statechart, &backends)
            .map_err(|e: DeploymentError| e.to_string())?;
        manager
            .publish_composite(&deployment, &statechart, "SELF-SERV Demo", "demo@selfserv")
            .map_err(|e| e.to_string())?;

        Ok(TravelDemo {
            net: net.handle(),
            manager,
            deployment,
            community,
            _member_hosts: member_hosts,
        })
    }

    /// Books a trip (the Execute panel of Figure 3).
    pub fn book_trip(
        &self,
        customer: &str,
        destination: &str,
        departure: &str,
        return_date: &str,
    ) -> Result<selfserv_wsdl::MessageDoc, ExecError> {
        let input = selfserv_wsdl::MessageDoc::request("execute")
            .with("customer", Value::str(customer))
            .with("destination", Value::str(destination))
            .with("departure_date", Value::str(departure))
            .with("return_date", Value::str(return_date));
        self.deployment.execute(input, Duration::from_secs(30))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_net::{Network, NetworkConfig};

    #[test]
    fn manager_edit_check_flags_unregistered_services() {
        let net = Network::new(NetworkConfig::instant());
        let manager = ServiceManager::start(&net).unwrap();
        let sc = travel::travel_statechart();
        let findings = manager.edit_check(&sc);
        assert!(
            findings.iter().any(|f| f.contains("unregistered-service")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.contains("community-offline")),
            "{findings:?}"
        );
        // Register everything → service warnings disappear.
        for desc in travel::travel_service_descriptions() {
            manager
                .publish_service(&desc.provider.clone(), "c", "travel", desc)
                .unwrap();
        }
        let findings = manager.edit_check(&sc);
        assert!(
            !findings.iter().any(|f| f.contains("unregistered-service")),
            "{findings:?}"
        );
    }

    #[test]
    fn demo_books_domestic_trip_near_attraction_skips_car() {
        let net = Network::new(NetworkConfig::instant());
        let demo = TravelDemo::launch(&net, TravelDemoConfig::default()).unwrap();
        let out = demo
            .book_trip("Eileen", "Sydney", "2002-08-20", "2002-08-27")
            .unwrap();
        // Domestic branch ran.
        assert!(out
            .get_str("flight_confirmation")
            .unwrap()
            .starts_with("QF-"));
        // Accommodation near the Opera House → no car rental.
        assert_eq!(out.get_str("accommodation"), Some("Sydney CBD Hotel"));
        assert_eq!(out.get_str("major_attraction"), Some("Opera House"));
        assert!(out.get("car_confirmation").is_none(), "{out:?}");
        // No insurance on the domestic branch.
        assert!(out.get("insurance_policy").is_none());
    }

    #[test]
    fn demo_far_accommodation_triggers_car_rental() {
        let net = Network::new(NetworkConfig::instant());
        let demo = TravelDemo::launch(
            &net,
            TravelDemoConfig {
                accommodation: AccommodationChoice::FarFromAttraction,
                ..Default::default()
            },
        )
        .unwrap();
        let out = demo
            .book_trip("Eileen", "Sydney", "2002-08-20", "2002-08-27")
            .unwrap();
        assert_eq!(out.get_str("accommodation"), Some("Bondi Hostel"));
        assert!(out.get_str("car_confirmation").unwrap().starts_with("CAR-"));
    }

    #[test]
    fn demo_international_trip_takes_insurance_branch() {
        let net = Network::new(NetworkConfig::instant());
        let demo = TravelDemo::launch(
            &net,
            TravelDemoConfig {
                accommodation: AccommodationChoice::FarFromAttraction,
                ..Default::default()
            },
        )
        .unwrap();
        let out = demo
            .book_trip("Quan", "Hong Kong", "2002-08-20", "2002-09-01")
            .unwrap();
        // International branch: GW flight + insurance policy.
        assert!(out
            .get_str("flight_confirmation")
            .unwrap()
            .starts_with("GW-"));
        assert!(out.get_str("insurance_policy").unwrap().starts_with("POL-"));
        // Bondi Hostel is far from the Peak Tram → car rented.
        assert!(out.get("car_confirmation").is_some());
    }

    #[test]
    fn composite_is_locatable_in_the_registry() {
        let net = Network::new(NetworkConfig::instant());
        let demo = TravelDemo::launch(&net, TravelDemoConfig::default()).unwrap();
        let hits = demo
            .manager
            .registry()
            .find(&FindQuery::any().service_name("Travel Planning"));
        assert_eq!(hits.len(), 1);
        let binding = hits[0].description.primary_binding().unwrap();
        assert_eq!(binding.endpoint, demo.deployment.wrapper_node().as_str());
        // Elementary services are all registered too.
        assert_eq!(demo.manager.registry().find(&FindQuery::any()).len(), 6);
    }
}
