//! The composite wrapper: entry and exit point of a composite service.
//!
//! "When the wrapper of the composite service receives the document, it
//! sends a message to the coordinator of the state(s) in the statechart
//! which need(s) to be entered in the first place. … Eventually, the
//! coordinators of the states which are exited in the last place send
//! their notification of termination back to the composite service
//! wrapper."

use crate::coordinator::{apply_actions, eval_guard, SweepTimer};
use crate::functions::FunctionLibrary;
use crate::protocol::{cleanup_body, kinds, naming, InstanceId, NotifyPayload};
use selfserv_expr::Value;
use selfserv_net::{ConnectError, Envelope, MessageId, NodeId, Transport, TransportHandle};
use selfserv_routing::{NotificationLabel, WrapperTable};
use selfserv_runtime::{ExecutorHandle, Flow, NodeCtx, NodeHandle, NodeLogic, TimerToken};
use selfserv_statechart::{StateId, VarDecl};
use selfserv_wsdl::MessageDoc;
use selfserv_xml::Element;
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Configuration for spawning a composite wrapper.
pub struct WrapperConfig {
    /// Composite service name.
    pub composite: String,
    /// The wrapper's routing knowledge.
    pub table: WrapperTable,
    /// Guard predicates.
    pub functions: FunctionLibrary,
    /// Declared statechart variables (initial values seed each instance).
    pub variables: Vec<VarDecl>,
    /// Event name → subscribed states (computed by the deployer from the
    /// routing plan).
    pub event_subscribers: Vec<(String, StateId)>,
    /// Instances idle longer than this are abandoned.
    pub instance_ttl: Duration,
    /// Optional monitor node receiving trace events.
    pub monitor: Option<NodeId>,
}

/// Spawner for composite wrappers.
pub struct CompositeWrapper;

/// Handle to a spawned wrapper.
pub struct WrapperHandle {
    node: NodeId,
    net: TransportHandle,
    handle: Option<NodeHandle>,
}

impl WrapperHandle {
    /// The wrapper's node.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// Stops the wrapper.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // Clear any kill left by failure injection so the name isn't
            // poisoned for a redeploy.
            self.net.revive(&self.node);
            handle.stop();
        }
    }
}

impl Drop for WrapperHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

struct WrapperSlot {
    seen: Vec<NotificationLabel>,
    vars: BTreeMap<String, Value>,
    reply_to: (NodeId, MessageId),
    started_at: Instant,
    last_touched: Instant,
}

struct WrapperLogic {
    cfg: WrapperConfig,
    next_instance: u64,
    instances: HashMap<InstanceId, WrapperSlot>,
    sweep: SweepTimer,
}

impl CompositeWrapper {
    /// Spawns the wrapper on its conventional node (`<composite>.wrapper`),
    /// over any [`Transport`], scheduled on the process-wide shared
    /// executor.
    pub fn spawn(net: &dyn Transport, cfg: WrapperConfig) -> Result<WrapperHandle, ConnectError> {
        Self::spawn_on(net, selfserv_runtime::shared(), cfg)
    }

    /// Spawns the wrapper scheduled on an explicit executor.
    pub fn spawn_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        cfg: WrapperConfig,
    ) -> Result<WrapperHandle, ConnectError> {
        let endpoint = net.connect(naming::wrapper(&cfg.composite))?;
        let node = endpoint.node().clone();
        let logic = WrapperLogic {
            cfg,
            next_instance: 0,
            instances: HashMap::new(),
            sweep: SweepTimer::new(),
        };
        Ok(WrapperHandle {
            node,
            net: net.handle(),
            handle: Some(exec.spawn_node(endpoint, logic)),
        })
    }
}

impl NodeLogic for WrapperLogic {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        match env.kind.as_str() {
            kinds::STOP => return Flow::Stop,
            kinds::EXECUTE => self.on_execute(ctx, &env),
            kinds::NOTIFY => self.on_notify(ctx, &env.body),
            kinds::FAULT => self.on_fault(ctx, &env.body),
            kinds::RAISE_EVENT => self.on_event(ctx, &env),
            _ => {}
        }
        self.sweep_stale(ctx);
        self.arm_sweep(ctx);
        Flow::Continue
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: TimerToken) -> Flow {
        self.sweep.fired();
        self.sweep_stale(ctx);
        self.arm_sweep(ctx);
        Flow::Continue
    }
}

impl WrapperLogic {
    fn trace(
        &self,
        ctx: &NodeCtx<'_>,
        instance: InstanceId,
        kind: crate::monitor::TraceKind,
        detail: &str,
    ) {
        if let Some(monitor) = &self.cfg.monitor {
            let body = crate::monitor::trace_body(instance, "wrapper", kind, detail);
            let _ = ctx
                .endpoint()
                .send(monitor.clone(), crate::monitor::TRACE_KIND, body);
        }
    }

    fn arm_sweep(&mut self, ctx: &NodeCtx<'_>) {
        self.sweep
            .arm(ctx, !self.instances.is_empty(), self.cfg.instance_ttl);
    }

    /// Abandoned instances are *faulted*, not silently dropped: the caller
    /// gets an execute fault (meaningful now that `Deployment::submit`
    /// lets thousands of executions run without a blocked caller thread
    /// each), and the cleanup broadcast clears the coordinators' slots —
    /// including any invocation state still pending for the instance.
    fn sweep_stale(&mut self, ctx: &NodeCtx<'_>) {
        let ttl = self.cfg.instance_ttl;
        if ttl.is_zero() {
            return;
        }
        let now = Instant::now();
        let expired: Vec<InstanceId> = self
            .instances
            .iter()
            .filter(|(_, s)| now.duration_since(s.last_touched) >= ttl)
            .map(|(id, _)| *id)
            .collect();
        for instance in expired {
            self.finish_fault(ctx, instance, "instance abandoned: idle past TTL");
        }
    }

    fn on_execute(&mut self, ctx: &NodeCtx<'_>, env: &Envelope) {
        let input = match MessageDoc::from_xml(&env.body) {
            Ok(m) => m,
            Err(e) => {
                let fault = MessageDoc::fault("execute", format!("malformed request: {e}"));
                let _ = ctx.endpoint().send_correlated(
                    env.from.clone(),
                    kinds::EXECUTE_RESULT,
                    fault.to_xml(),
                    Some(env.id),
                );
                return;
            }
        };
        self.next_instance += 1;
        let instance = InstanceId(self.next_instance);
        // Seed variables: declared initials, then caller parameters.
        let mut vars = BTreeMap::new();
        for decl in &self.cfg.variables {
            if let Some(init) = &decl.initial {
                vars.insert(decl.name.clone(), init.clone());
            }
        }
        for (k, v) in input.iter() {
            vars.insert(k.to_string(), v.clone());
        }
        self.instances.insert(
            instance,
            WrapperSlot {
                seen: Vec::new(),
                vars: vars.clone(),
                reply_to: (env.from.clone(), env.id),
                started_at: Instant::now(),
                last_touched: Instant::now(),
            },
        );
        self.trace(
            ctx,
            instance,
            crate::monitor::TraceKind::InstanceStarted,
            "",
        );
        // Kick off the initial state(s).
        for target in &self.cfg.table.start_targets {
            let payload = NotifyPayload {
                label: NotificationLabel::Start.encode(),
                instance,
                vars: vars.clone(),
            };
            let node = naming::coordinator(&self.cfg.composite, target);
            let _ = ctx.endpoint().send(node, kinds::NOTIFY, payload.to_xml());
        }
    }

    fn on_notify(&mut self, ctx: &NodeCtx<'_>, body: &Element) {
        let Ok(payload) = NotifyPayload::from_xml(body) else {
            return;
        };
        let Ok(label) = NotificationLabel::decode(&payload.label) else {
            return;
        };
        let Some(slot) = self.instances.get_mut(&payload.instance) else {
            return;
        };
        slot.last_touched = Instant::now();
        slot.seen.push(label);
        for (k, v) in payload.vars {
            slot.vars.insert(k, v);
        }
        self.try_finish(ctx, payload.instance);
    }

    fn try_finish(&mut self, ctx: &NodeCtx<'_>, instance: InstanceId) {
        let outcome = {
            let Some(slot) = self.instances.get(&instance) else {
                return;
            };
            let mut chosen: Option<usize> = None;
            let mut error: Option<String> = None;
            for (idx, alt) in self.cfg.table.finish_alternatives.iter().enumerate() {
                if !alt.satisfied_by(&slot.seen) {
                    continue;
                }
                match eval_guard(&alt.condition, &self.cfg.functions, &slot.vars) {
                    Ok(true) => {
                        chosen = Some(idx);
                        break;
                    }
                    Ok(false) => continue,
                    Err(reason) => {
                        error = Some(reason);
                        break;
                    }
                }
            }
            (chosen, error)
        };
        match outcome {
            (_, Some(reason)) => self.finish_fault(ctx, instance, &reason),
            (Some(idx), None) => {
                let actions = self.cfg.table.finish_alternatives[idx].actions.clone();
                let Some(slot) = self.instances.get_mut(&instance) else {
                    return;
                };
                let mut vars = slot.vars.clone();
                if let Err(reason) = apply_actions(&actions, &self.cfg.functions, &mut vars) {
                    self.finish_fault(ctx, instance, &reason);
                    return;
                }
                let elapsed = slot.started_at.elapsed();
                let reply_to = slot.reply_to.clone();
                let mut response = MessageDoc::response("execute");
                for (k, v) in &vars {
                    response.set(k.clone(), v.clone());
                }
                response.set("_elapsed_ms", Value::Int(elapsed.as_millis() as i64));
                response.set("_instance", Value::str(instance.to_string()));
                let _ = ctx.endpoint().send_correlated(
                    reply_to.0,
                    kinds::EXECUTE_RESULT,
                    response.to_xml(),
                    Some(reply_to.1),
                );
                self.trace(
                    ctx,
                    instance,
                    crate::monitor::TraceKind::InstanceFinished,
                    "",
                );
                self.cleanup(ctx, instance);
            }
            (None, None) => {}
        }
    }

    fn on_fault(&mut self, ctx: &NodeCtx<'_>, body: &Element) {
        let Some(instance) = body
            .attr("instance")
            .and_then(|s| InstanceId::decode(s).ok())
        else {
            return;
        };
        let state = body.attr("state").unwrap_or("?");
        let reason = body.attr("reason").unwrap_or("unspecified");
        self.finish_fault(ctx, instance, &format!("state '{state}': {reason}"));
    }

    fn finish_fault(&mut self, ctx: &NodeCtx<'_>, instance: InstanceId, reason: &str) {
        self.trace(ctx, instance, crate::monitor::TraceKind::Faulted, reason);
        if let Some(slot) = self.instances.get(&instance) {
            let reply_to = slot.reply_to.clone();
            let fault = MessageDoc::fault("execute", reason);
            let _ = ctx.endpoint().send_correlated(
                reply_to.0,
                kinds::EXECUTE_RESULT,
                fault.to_xml(),
                Some(reply_to.1),
            );
        }
        self.cleanup(ctx, instance);
    }

    /// Broadcasts per-instance cleanup to every coordinator and forgets the
    /// local slot.
    fn cleanup(&mut self, ctx: &NodeCtx<'_>, instance: InstanceId) {
        for state in &self.cfg.table.all_states {
            let node = naming::coordinator(&self.cfg.composite, state);
            let _ = ctx
                .endpoint()
                .send(node, kinds::CLEANUP, cleanup_body(instance));
        }
        self.instances.remove(&instance);
    }

    fn on_event(&mut self, ctx: &NodeCtx<'_>, env: &Envelope) {
        let name = env.body.attr("name").unwrap_or("").to_string();
        let instance_attr = env.body.attr("instance").unwrap_or("all");
        let targets: Vec<InstanceId> = if instance_attr == "all" {
            self.instances.keys().copied().collect()
        } else {
            match InstanceId::decode(instance_attr) {
                Ok(id) => vec![id],
                Err(_) => Vec::new(),
            }
        };
        for instance in targets {
            for (event, state) in &self.cfg.event_subscribers {
                if *event != name {
                    continue;
                }
                let payload = NotifyPayload {
                    label: NotificationLabel::Event(name.clone()).encode(),
                    instance,
                    vars: BTreeMap::new(),
                };
                let node = naming::coordinator(&self.cfg.composite, state);
                let _ = ctx.endpoint().send(node, kinds::NOTIFY, payload.to_xml());
            }
        }
        // Ack so rpc-style raisers don't block.
        let _ = ctx.endpoint().send_correlated(
            env.from.clone(),
            kinds::EXECUTE_RESULT,
            Element::new("ok"),
            Some(env.id),
        );
    }
}
