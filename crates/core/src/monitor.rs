//! Execution monitoring: per-instance traces of the distributed run, plus
//! the membership view.
//!
//! The paper's coordinators are "in charge of initiating, controlling,
//! *monitoring* the associated state". This module gives that monitoring a
//! destination: an [`ExecutionMonitor`] node collects trace events emitted
//! by coordinators and wrappers (when a deployment opts in via
//! [`crate::Deployer::with_monitor`]) and reconstructs a timeline per
//! instance — the platform's answer to Figure 3's "Execution Result"
//! panel.
//!
//! The monitor also ingests **liveness events** from `selfserv-discovery`
//! failure detectors (point `DiscoveryConfig::monitor` at this node):
//! every suspected / evicted / recovered peer hub lands in a queryable log
//! ([`MonitorHandle::liveness_events`]) and a last-known-status table
//! ([`MonitorHandle::peer_status`]), so an operator can answer "which
//! providers were dead during this run?" next to "what did the run do?".
//!
//! Tracing is fire-and-forget: a dead or slow monitor never blocks an
//! execution.

use crate::protocol::InstanceId;
use parking_lot::RwLock;
use selfserv_net::{
    ConnectError, Envelope, LivenessEvent, NodeId, PeerStatus, Transport, TransportHandle,
    LIVENESS_KIND,
};
use selfserv_runtime::{ExecutorHandle, Flow, NodeCtx, NodeHandle, NodeLogic};
use selfserv_xml::Element;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The wrapper started an instance.
    InstanceStarted,
    /// A coordinator's precondition fired and the state was entered.
    Activated,
    /// The state's work finished (service returned).
    Completed,
    /// The instance finished and the caller was answered.
    InstanceFinished,
    /// A fault was reported.
    Faulted,
}

impl TraceKind {
    fn name(self) -> &'static str {
        match self {
            TraceKind::InstanceStarted => "instance-started",
            TraceKind::Activated => "activated",
            TraceKind::Completed => "completed",
            TraceKind::InstanceFinished => "instance-finished",
            TraceKind::Faulted => "faulted",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "instance-started" => TraceKind::InstanceStarted,
            "activated" => TraceKind::Activated,
            "completed" => TraceKind::Completed,
            "instance-finished" => TraceKind::InstanceFinished,
            "faulted" => TraceKind::Faulted,
            _ => return None,
        })
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The instance.
    pub instance: InstanceId,
    /// The reporting participant (state id, or `wrapper`).
    pub participant: String,
    /// What happened.
    pub kind: TraceKind,
    /// Free-form detail (fault reason, chosen transition, …).
    pub detail: String,
    /// Wall-clock milliseconds since the Unix epoch at the reporter.
    pub at_ms: u64,
    /// Monotonic microseconds since the reporting process's anchor
    /// ([`mono_us`]). Differences between events stamped by the *same*
    /// process are exact elapsed time, immune to wall-clock steps; events
    /// from different processes have unrelated anchors. Zero for events
    /// from reporters predating this field.
    pub at_us: u64,
}

/// Monotonic microseconds since a process-global anchor (the first call).
/// All trace events of one process share the anchor, so same-process
/// deltas — wrapper start to wrapper finish, coordinator activation to
/// completion — are exact elapsed durations.
pub fn mono_us() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// The message kind trace events travel under.
pub const TRACE_KIND: &str = "monitor.trace";

/// Builds the wire form of a trace event.
pub fn trace_body(
    instance: InstanceId,
    participant: &str,
    kind: TraceKind,
    detail: &str,
) -> Element {
    let at_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_millis() as u64;
    Element::new("trace")
        .with_attr("instance", instance.to_string())
        .with_attr("participant", participant)
        .with_attr("kind", kind.name())
        .with_attr("detail", detail)
        .with_attr("at_ms", at_ms.to_string())
        .with_attr("at_us", mono_us().to_string())
}

fn decode_trace(e: &Element) -> Option<TraceEvent> {
    Some(TraceEvent {
        instance: InstanceId::decode(e.attr("instance")?).ok()?,
        participant: e.attr("participant")?.to_string(),
        kind: TraceKind::from_name(e.attr("kind")?)?,
        detail: e.attr("detail").unwrap_or("").to_string(),
        at_ms: e.attr("at_ms")?.parse().ok()?,
        at_us: e.attr("at_us").and_then(|v| v.parse().ok()).unwrap_or(0),
    })
}

#[derive(Default)]
struct TraceStore {
    by_instance: HashMap<InstanceId, Vec<TraceEvent>>,
    /// Monotonic start stamp per open instance (wrapper's
    /// `InstanceStarted`), consumed into `latency_us` at finish.
    started_at_us: HashMap<InstanceId, u64>,
    /// End-to-end latency of finished instances, wrapper start to wrapper
    /// finish, exact (same-process monotonic stamps).
    latency_us: HashMap<InstanceId, u64>,
    /// Per-instance coordinator activation stamps awaiting their
    /// `Completed` (phase latency measurement); dropped wholesale when the
    /// instance ends.
    activated_at_us: HashMap<InstanceId, HashMap<String, u64>>,
    /// Finished instances in completion order, for trace eviction under
    /// [`MonitorOptions::max_traces`].
    finished_order: VecDeque<InstanceId>,
    /// Liveness transitions in arrival order, bounded by
    /// [`LIVENESS_LOG_CAPACITY`] — a flapping peer (suspected/alive
    /// cycles) must not grow a long-running monitor without bound;
    /// `peer_status` keeps the last-known answer regardless.
    liveness: VecDeque<LivenessEvent>,
    /// Last reported status per node name (from liveness events).
    peer_status: HashMap<NodeId, PeerStatus>,
}

/// How many liveness transitions the monitor retains (oldest dropped
/// first) — mirrors the discovery handle's own event-log bound.
const LIVENESS_LOG_CAPACITY: usize = 1024;

/// Metrics recorded by a monitor node (opt-in via
/// [`ExecutionMonitor::spawn_with`]): instance lifecycle counters, the
/// end-to-end instance latency distribution, and coordinator phase
/// latencies (`Activated` to `Completed` per state), all derived from the
/// existing [`TraceKind`] stream — coordinators and wrappers need no new
/// instrumentation.
pub struct MonitorMetrics {
    /// Instances started (wrapper `InstanceStarted`).
    pub instances_started: Arc<selfserv_obs::Counter>,
    /// Instances finished successfully (wrapper `InstanceFinished`).
    pub instances_finished: Arc<selfserv_obs::Counter>,
    /// Instances that ended in a fault (wrapper `Faulted`).
    pub instances_faulted: Arc<selfserv_obs::Counter>,
    /// End-to-end instance latency, wrapper start to wrapper finish, µs.
    pub instance_latency_us: Arc<selfserv_obs::Histogram>,
    /// Coordinator phase latency (`Activated` to `Completed`), µs.
    pub phase_latency_us: Arc<selfserv_obs::Histogram>,
}

impl MonitorMetrics {
    /// Registers the monitor metric family on `registry` (with `labels`
    /// attached to every series) and returns the handles a monitor records
    /// into. Also derives an open-instances gauge from the lifecycle
    /// counters.
    pub fn register(
        registry: &selfserv_obs::Registry,
        labels: &[(&str, &str)],
    ) -> Arc<MonitorMetrics> {
        let metrics = Arc::new(MonitorMetrics {
            instances_started: registry.counter(
                "selfserv_instances_started_total",
                "Composite instances started (wrapper InstanceStarted traces).",
                labels,
            ),
            instances_finished: registry.counter(
                "selfserv_instances_finished_total",
                "Composite instances finished successfully.",
                labels,
            ),
            instances_faulted: registry.counter(
                "selfserv_instances_faulted_total",
                "Composite instances that ended in a fault.",
                labels,
            ),
            instance_latency_us: registry.histogram(
                "selfserv_instance_latency_us",
                "End-to-end composite instance latency in microseconds.",
                labels,
            ),
            phase_latency_us: registry.histogram(
                "selfserv_phase_latency_us",
                "Coordinator phase latency (Activated to Completed) in microseconds.",
                labels,
            ),
        });
        let (started, finished, faulted) = (
            Arc::clone(&metrics.instances_started),
            Arc::clone(&metrics.instances_finished),
            Arc::clone(&metrics.instances_faulted),
        );
        registry.gauge_fn(
            "selfserv_instances_open",
            "Composite instances started but not yet finished or faulted.",
            labels,
            move || started.get().saturating_sub(finished.get() + faulted.get()) as f64,
        );
        metrics
    }
}

/// Options for [`ExecutionMonitor::spawn_with`].
#[derive(Default)]
pub struct MonitorOptions {
    /// Record lifecycle counters and latency histograms as traces arrive.
    pub metrics: Option<Arc<MonitorMetrics>>,
    /// Bound on retained per-instance traces: once more than this many
    /// *finished* instances are stored, the oldest finished traces (and
    /// their recorded latencies) are evicted. `None` retains everything —
    /// fine for demos and tests, not for sustained load.
    pub max_traces: Option<usize>,
}

/// Spawner for the monitor node.
pub struct ExecutionMonitor;

/// Handle to a running monitor: query collected traces.
pub struct MonitorHandle {
    node: NodeId,
    net: TransportHandle,
    store: Arc<RwLock<TraceStore>>,
    handle: Option<NodeHandle>,
}

impl ExecutionMonitor {
    /// Spawns a monitor on `node_name`, over any [`Transport`], scheduled
    /// on the process-wide shared executor.
    pub fn spawn(net: &dyn Transport, node_name: &str) -> Result<MonitorHandle, ConnectError> {
        Self::spawn_on(net, selfserv_runtime::shared(), node_name)
    }

    /// Spawns a monitor scheduled on an explicit executor.
    pub fn spawn_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        node_name: &str,
    ) -> Result<MonitorHandle, ConnectError> {
        Self::spawn_with(net, exec, node_name, MonitorOptions::default())
    }

    /// Spawns a monitor with explicit [`MonitorOptions`] — metrics
    /// recording and/or a trace-retention bound for sustained load.
    pub fn spawn_with(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        node_name: &str,
        options: MonitorOptions,
    ) -> Result<MonitorHandle, ConnectError> {
        let endpoint = net.connect(NodeId::new(node_name))?;
        let node = endpoint.node().clone();
        let store = Arc::new(RwLock::new(TraceStore::default()));
        let logic = MonitorLogic {
            store: Arc::clone(&store),
            metrics: options.metrics,
            max_traces: options.max_traces,
        };
        Ok(MonitorHandle {
            node,
            net: net.handle(),
            store,
            handle: Some(exec.spawn_node(endpoint, logic)),
        })
    }
}

struct MonitorLogic {
    store: Arc<RwLock<TraceStore>>,
    metrics: Option<Arc<MonitorMetrics>>,
    max_traces: Option<usize>,
}

impl MonitorLogic {
    /// Lifecycle bookkeeping for one decoded trace event: start stamps,
    /// end-to-end and phase latencies, metric recording, and bounded
    /// retention. Runs under the store's write lock.
    fn ingest(&self, store: &mut TraceStore, event: &TraceEvent) {
        let from_wrapper = event.participant == "wrapper";
        match event.kind {
            TraceKind::InstanceStarted if from_wrapper => {
                store.started_at_us.insert(event.instance, event.at_us);
                if let Some(m) = &self.metrics {
                    m.instances_started.inc();
                }
            }
            TraceKind::Activated if !from_wrapper => {
                store
                    .activated_at_us
                    .entry(event.instance)
                    .or_default()
                    .insert(event.participant.clone(), event.at_us);
            }
            TraceKind::Completed if !from_wrapper => {
                let activated = store
                    .activated_at_us
                    .get_mut(&event.instance)
                    .and_then(|phases| phases.remove(&event.participant));
                if let (Some(t0), Some(m)) = (activated, &self.metrics) {
                    m.phase_latency_us.record(event.at_us.saturating_sub(t0));
                }
            }
            TraceKind::InstanceFinished | TraceKind::Faulted if from_wrapper => {
                let finished = event.kind == TraceKind::InstanceFinished;
                if let Some(t0) = store.started_at_us.remove(&event.instance) {
                    let latency = event.at_us.saturating_sub(t0);
                    store.latency_us.insert(event.instance, latency);
                    if let Some(m) = &self.metrics {
                        if finished {
                            m.instance_latency_us.record(latency);
                        }
                    }
                }
                if let Some(m) = &self.metrics {
                    if finished {
                        m.instances_finished.inc();
                    } else {
                        m.instances_faulted.inc();
                    }
                }
                store.activated_at_us.remove(&event.instance);
                store.finished_order.push_back(event.instance);
                if let Some(cap) = self.max_traces {
                    while store.finished_order.len() > cap {
                        if let Some(old) = store.finished_order.pop_front() {
                            store.by_instance.remove(&old);
                            store.latency_us.remove(&old);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

impl NodeLogic for MonitorLogic {
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        match env.kind.as_str() {
            crate::protocol::kinds::STOP => return Flow::Stop,
            TRACE_KIND => {
                if let Some(event) = decode_trace(&env.body) {
                    let mut store = self.store.write();
                    self.ingest(&mut store, &event);
                    store
                        .by_instance
                        .entry(event.instance)
                        .or_default()
                        .push(event);
                }
            }
            LIVENESS_KIND => {
                if let Some(event) = LivenessEvent::from_xml(&env.body) {
                    let mut store = self.store.write();
                    for name in &event.names {
                        store.peer_status.insert(name.clone(), event.status);
                    }
                    if store.liveness.len() == LIVENESS_LOG_CAPACITY {
                        store.liveness.pop_front();
                    }
                    store.liveness.push_back(event);
                }
            }
            _ => {}
        }
        Flow::Continue
    }
}

impl MonitorHandle {
    /// The monitor's node (pass to [`crate::Deployer::with_monitor`]).
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// The trace of one instance, in arrival order.
    pub fn trace(&self, instance: InstanceId) -> Vec<TraceEvent> {
        self.store
            .read()
            .by_instance
            .get(&instance)
            .cloned()
            .unwrap_or_default()
    }

    /// All instances with at least one event, sorted.
    pub fn instances(&self) -> Vec<InstanceId> {
        let mut ids: Vec<InstanceId> = self.store.read().by_instance.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Total events collected.
    pub fn event_count(&self) -> usize {
        self.store.read().by_instance.values().map(Vec::len).sum()
    }

    /// End-to-end latency of a finished instance in microseconds (wrapper
    /// start to wrapper finish, same-process monotonic stamps). `None`
    /// while the instance is still running, unknown, or evicted.
    pub fn instance_latency_us(&self, instance: InstanceId) -> Option<u64> {
        self.store.read().latency_us.get(&instance).copied()
    }

    /// End-to-end latencies of all retained finished instances, µs.
    pub fn latencies_us(&self) -> Vec<u64> {
        self.store.read().latency_us.values().copied().collect()
    }

    /// Every liveness transition reported by discovery failure detectors,
    /// in arrival order.
    pub fn liveness_events(&self) -> Vec<LivenessEvent> {
        self.store.read().liveness.iter().cloned().collect()
    }

    /// The last reported liveness status of a node name (`None` when no
    /// failure detector ever mentioned it).
    pub fn peer_status(&self, name: &str) -> Option<PeerStatus> {
        self.store
            .read()
            .peer_status
            .get(&NodeId::new(name))
            .copied()
    }

    /// Renders one instance's trace as an aligned text timeline (relative
    /// milliseconds), for demos and debugging.
    pub fn render_timeline(&self, instance: InstanceId) -> String {
        let events = self.trace(instance);
        let Some(t0) = events.iter().map(|e| e.at_ms).min() else {
            return format!("instance {instance}: no events\n");
        };
        let mut out = format!("instance {instance}:\n");
        for e in &events {
            out.push_str(&format!(
                "  +{:>5} ms  {:20} {:18} {}\n",
                e.at_ms - t0,
                e.participant,
                e.kind.name(),
                e.detail
            ));
        }
        out
    }

    /// Stops the monitor.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.net.revive(&self.node);
            handle.stop();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_net::{Network, NetworkConfig};

    #[test]
    fn trace_codec_round_trip() {
        let body = trace_body(InstanceId(7), "AB", TraceKind::Completed, "ok");
        let event = decode_trace(&body).unwrap();
        assert_eq!(event.instance, InstanceId(7));
        assert_eq!(event.participant, "AB");
        assert_eq!(event.kind, TraceKind::Completed);
        assert!(event.at_ms > 0);
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [
            TraceKind::InstanceStarted,
            TraceKind::Activated,
            TraceKind::Completed,
            TraceKind::InstanceFinished,
            TraceKind::Faulted,
        ] {
            assert_eq!(TraceKind::from_name(k.name()), Some(k));
        }
        assert_eq!(TraceKind::from_name("nope"), None);
    }

    #[test]
    fn monitor_collects_and_renders() {
        let net = Network::new(NetworkConfig::instant());
        let monitor = ExecutionMonitor::spawn(&net, "monitor").unwrap();
        let reporter = net.connect("reporter").unwrap();
        reporter
            .send(
                "monitor",
                TRACE_KIND,
                trace_body(InstanceId(1), "wrapper", TraceKind::InstanceStarted, ""),
            )
            .unwrap();
        reporter
            .send(
                "monitor",
                TRACE_KIND,
                trace_body(InstanceId(1), "AB", TraceKind::Activated, ""),
            )
            .unwrap();
        reporter
            .send(
                "monitor",
                TRACE_KIND,
                trace_body(InstanceId(2), "AB", TraceKind::Activated, ""),
            )
            .unwrap();
        // Give the monitor a beat to drain.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(monitor.event_count(), 3);
        assert_eq!(monitor.instances(), vec![InstanceId(1), InstanceId(2)]);
        assert_eq!(monitor.trace(InstanceId(1)).len(), 2);
        let text = monitor.render_timeline(InstanceId(1));
        assert!(text.contains("instance-started"), "{text}");
        assert!(monitor
            .render_timeline(InstanceId(99))
            .contains("no events"));
    }

    #[test]
    fn monitor_ingests_liveness_events() {
        use selfserv_net::HubId;
        let net = Network::new(NetworkConfig::instant());
        let monitor = ExecutionMonitor::spawn(&net, "monitor").unwrap();
        let detector = net.connect("disc.feed").unwrap();
        let suspected = LivenessEvent {
            hub: HubId(7),
            status: PeerStatus::Suspected,
            names: vec![NodeId::new("svc.a"), NodeId::new("svc.b")],
        };
        let evicted = LivenessEvent {
            hub: HubId(7),
            status: PeerStatus::Evicted,
            names: vec![NodeId::new("svc.a")],
        };
        detector
            .send("monitor", LIVENESS_KIND, suspected.to_xml())
            .unwrap();
        detector
            .send("monitor", LIVENESS_KIND, evicted.to_xml())
            .unwrap();
        detector
            .send("monitor", LIVENESS_KIND, Element::new("garbage"))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let events = monitor.liveness_events();
        assert_eq!(events, vec![suspected, evicted]);
        assert_eq!(monitor.peer_status("svc.a"), Some(PeerStatus::Evicted));
        assert_eq!(monitor.peer_status("svc.b"), Some(PeerStatus::Suspected));
        assert_eq!(monitor.peer_status("svc.unknown"), None);
        assert_eq!(monitor.event_count(), 0, "liveness is not a trace");
    }

    #[test]
    fn malformed_traces_are_ignored() {
        let net = Network::new(NetworkConfig::instant());
        let monitor = ExecutionMonitor::spawn(&net, "monitor").unwrap();
        let reporter = net.connect("reporter").unwrap();
        reporter
            .send("monitor", TRACE_KIND, Element::new("garbage"))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(monitor.event_count(), 0);
    }
}
