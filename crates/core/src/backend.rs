//! Service backends and hosts: the "pool of services".
//!
//! A [`ServiceBackend`] is the application logic behind an elementary
//! service (the paper's "workflow, database application, or web-accessible
//! program"); a [`ServiceHost`] wraps one behind a fabric node answering
//! the `invoke` protocol (the platform's `Wrapper` class).

use crate::protocol::kinds;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfserv_expr::Value;
use selfserv_net::{ConnectError, Envelope, NodeId, Transport, TransportHandle};
use selfserv_runtime::{ExecutorHandle, Flow, NodeCtx, NodeHandle, NodeLogic, RpcDone, RpcToken};
use selfserv_wsdl::MessageDoc;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A backend's declaration that an invocation is really a request/response
/// exchange with a remote node (see [`ServiceBackend::forward`]).
pub struct ForwardCall {
    /// The remote node answering the request.
    pub to: NodeId,
    /// Message kind of the request.
    pub kind: String,
    /// Request body (already encoded for the wire).
    pub body: selfserv_xml::Element,
    /// Deadline for the reply.
    pub timeout: Duration,
    /// How fault messages should name the remote (e.g.
    /// `"nested composite 'Pricing'"`), so errors read the same whether
    /// the call was forwarded or made through [`ServiceBackend::invoke`].
    pub label: String,
}

/// Application logic behind an elementary service. Implementations must be
/// thread-safe: one backend may serve many coordinators or hosts.
pub trait ServiceBackend: Send + Sync {
    /// Handles one operation invocation. Returning a fault message (or an
    /// `Err`) faults the calling composite instance.
    fn invoke(&self, operation: &str, input: &MessageDoc) -> Result<MessageDoc, String>;

    /// Declares that this invocation merely relays a request to a remote
    /// node and waits for its reply — no local computation.
    ///
    /// Backends that compute in-process return `None` (the default) and
    /// run under blocking compensation wherever they may sleep. Backends
    /// that only forward (e.g. [`crate::CompositeBackend`], whose "work"
    /// is a whole nested orchestration) return the exchange instead, so a
    /// coordinator can carry it **continuation-passing** via
    /// `NodeCtx::rpc_async`: zero workers parked for however long the
    /// remote takes, which is what lets thousands of invocations await
    /// replies concurrently on a fixed pool. Callers that can't (or don't
    /// want to) suspend — e.g. [`ServiceHost`] tasks — simply keep using
    /// [`ServiceBackend::invoke`], which must remain equivalent.
    fn forward(&self, _operation: &str, _input: &MessageDoc) -> Option<ForwardCall> {
        None
    }

    /// Whether [`ServiceBackend::invoke`] may sleep or otherwise block the
    /// calling thread. Defaults to `true` (the safe assumption): callers
    /// run such backends under the pool's blocking compensation. Backends
    /// that compute without ever parking — echo stubs, pure functions —
    /// override this to `false`, letting hosts and coordinators dispatch
    /// them without spawning a compensated task at all: the last scrap of
    /// worker-blocking on the invocation path disappears for them.
    fn may_block(&self) -> bool {
        true
    }

    /// Short name for diagnostics.
    fn name(&self) -> &str;
}

/// A backend that echoes its inputs back as outputs (plus a marker), with
/// zero latency. Useful for plumbing tests.
#[derive(Debug, Default)]
pub struct EchoService {
    name: String,
}

impl EchoService {
    /// An echo backend with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        EchoService { name: name.into() }
    }
}

impl ServiceBackend for EchoService {
    fn invoke(&self, operation: &str, input: &MessageDoc) -> Result<MessageDoc, String> {
        let mut out = MessageDoc::response(operation);
        for (k, v) in input.iter() {
            out.set(k, v.clone());
        }
        out.set("echoed_by", Value::str(self.name.clone()));
        Ok(out)
    }

    fn may_block(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A backend that always faults. For failure-path tests.
#[derive(Debug)]
pub struct FailingService {
    name: String,
    reason: String,
}

impl FailingService {
    /// A failing backend.
    pub fn new(name: impl Into<String>, reason: impl Into<String>) -> Self {
        FailingService {
            name: name.into(),
            reason: reason.into(),
        }
    }
}

impl ServiceBackend for FailingService {
    fn invoke(&self, _operation: &str, _input: &MessageDoc) -> Result<MessageDoc, String> {
        Err(self.reason.clone())
    }

    fn may_block(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A configurable synthetic service: fixed-plus-jitter service time, a
/// failure probability, and an invocation counter. This is the stand-in
/// for the demo's provider stubs, with controllable QoS so communities
/// have something to discriminate.
pub struct SyntheticService {
    name: String,
    base_latency: Duration,
    jitter: Duration,
    failure_probability: f64,
    rng: Mutex<StdRng>,
    invocations: AtomicU64,
    /// Outputs added to every successful response.
    outputs: Vec<(String, Value)>,
}

impl SyntheticService {
    /// A zero-latency, never-failing synthetic service.
    pub fn new(name: impl Into<String>) -> Self {
        SyntheticService {
            name: name.into(),
            base_latency: Duration::ZERO,
            jitter: Duration::ZERO,
            failure_probability: 0.0,
            rng: Mutex::new(StdRng::seed_from_u64(7)),
            invocations: AtomicU64::new(0),
            outputs: Vec::new(),
        }
    }

    /// Builder: sets base service time.
    pub fn with_latency(mut self, d: Duration) -> Self {
        self.base_latency = d;
        self
    }

    /// Builder: sets uniform jitter added to the base service time.
    pub fn with_jitter(mut self, d: Duration) -> Self {
        self.jitter = d;
        self
    }

    /// Builder: sets failure probability (0–1).
    pub fn with_failure_probability(mut self, p: f64) -> Self {
        self.failure_probability = p;
        self
    }

    /// Builder: sets the RNG seed (jitter + failures).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = Mutex::new(StdRng::seed_from_u64(seed));
        self
    }

    /// Builder: adds a fixed output parameter to every response.
    pub fn with_output(mut self, name: impl Into<String>, value: Value) -> Self {
        self.outputs.push((name.into(), value));
        self
    }

    /// How many times the backend has been invoked.
    pub fn invocation_count(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }
}

impl ServiceBackend for SyntheticService {
    fn invoke(&self, operation: &str, input: &MessageDoc) -> Result<MessageDoc, String> {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        let (sleep_for, fails) = {
            let mut rng = self.rng.lock();
            let jitter = if self.jitter.is_zero() {
                Duration::ZERO
            } else {
                Duration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos()) as u64)
            };
            let fails =
                self.failure_probability > 0.0 && rng.gen::<f64>() < self.failure_probability;
            (self.base_latency + jitter, fails)
        };
        if !sleep_for.is_zero() {
            std::thread::sleep(sleep_for);
        }
        if fails {
            return Err(format!("{} failed (synthetic fault)", self.name));
        }
        let mut out = MessageDoc::response(operation);
        // Thread the payload through so data flow is observable.
        for (k, v) in input.iter() {
            out.set(k, v.clone());
        }
        for (k, v) in &self.outputs {
            out.set(k.clone(), v.clone());
        }
        out.set("served_by", Value::str(self.name.clone()));
        Ok(out)
    }

    fn may_block(&self) -> bool {
        // Sleeps only when configured with a service time.
        !self.base_latency.is_zero() || !self.jitter.is_zero()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A fabric node hosting one backend: answers [`kinds::INVOKE`] envelopes
/// with [`kinds::INVOKE_RESULT`]. This is how community members and the
/// centralized baseline's services are reached remotely.
pub struct ServiceHost;

/// Handle to a spawned [`ServiceHost`].
pub struct ServiceHostHandle {
    node: NodeId,
    net: TransportHandle,
    backend: Arc<dyn ServiceBackend>,
    handle: Option<NodeHandle>,
}

impl ServiceHostHandle {
    /// The host's node.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// The backend being served.
    pub fn backend(&self) -> &Arc<dyn ServiceBackend> {
        &self.backend
    }

    /// Stops the host.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // Clear any kill left by failure injection so the name isn't
            // poisoned for a redeploy.
            self.net.revive(&self.node);
            handle.stop();
        }
    }
}

impl Drop for ServiceHostHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl ServiceHost {
    /// Spawns a host serving `backend` on `node_name`, scheduled on the
    /// process-wide shared executor. Each invocation runs as its own pool
    /// task so a slow backend doesn't serialize unrelated callers (hosts
    /// model multi-threaded provider servers; the *coordinator* is the
    /// capacity-1 component).
    pub fn spawn(
        net: &dyn Transport,
        node_name: impl Into<NodeId>,
        backend: Arc<dyn ServiceBackend>,
    ) -> Result<ServiceHostHandle, ConnectError> {
        Self::spawn_on(net, selfserv_runtime::shared(), node_name, backend)
    }

    /// Spawns a host scheduled on an explicit executor.
    pub fn spawn_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        node_name: impl Into<NodeId>,
        backend: Arc<dyn ServiceBackend>,
    ) -> Result<ServiceHostHandle, ConnectError> {
        let endpoint = net.connect(node_name.into())?;
        let node = endpoint.node().clone();
        let logic = HostLogic {
            backend: Arc::clone(&backend),
            in_flight: HashMap::new(),
            next_token: 0,
        };
        Ok(ServiceHostHandle {
            node,
            net: net.handle(),
            backend,
            handle: Some(exec.spawn_node(endpoint, logic)),
        })
    }
}

/// One host invocation awaiting its completion event.
enum HostPending {
    /// A backend call running as a (possibly compensated) pool task.
    Task(Envelope),
    /// A pure relay declared by [`ServiceBackend::forward`]: the remote's
    /// reply (or its deadline) resolves the invocation — no task, no
    /// parked worker, exactly like the coordinator's forward phase.
    Forward {
        request: Envelope,
        operation: String,
        label: String,
    },
}

struct HostLogic {
    backend: Arc<dyn ServiceBackend>,
    /// In-flight invocations awaiting their completion event: the token
    /// issued at dispatch → the request to answer.
    in_flight: HashMap<RpcToken, HostPending>,
    next_token: u64,
}

impl NodeLogic for HostLogic {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, request: Envelope) -> Flow {
        match request.kind.as_str() {
            kinds::STOP => Flow::Stop,
            kinds::INVOKE => {
                let input = match MessageDoc::from_xml(&request.body) {
                    Ok(input) => input,
                    Err(e) => {
                        let fault = MessageDoc::fault("unknown", e.to_string());
                        let _ = ctx.endpoint().send_correlated(
                            request.from.clone(),
                            kinds::INVOKE_RESULT,
                            fault.to_xml(),
                            Some(request.id),
                        );
                        return Flow::Continue;
                    }
                };
                self.next_token += 1;
                let token = RpcToken(self.next_token);
                if let Some(call) = self.backend.forward(&input.operation, &input) {
                    // Pure relay: fire the remote request and suspend the
                    // invocation on its token. The reply re-enters in
                    // on_rpc_done; the deadline rides the timer heap.
                    self.in_flight.insert(
                        token,
                        HostPending::Forward {
                            request,
                            operation: input.operation,
                            label: call.label,
                        },
                    );
                    ctx.rpc_async(call.to, call.kind, call.body, call.timeout, token);
                } else if self.backend.may_block() {
                    // Each blocking invocation runs as its own pool task,
                    // so concurrent callers overlap and a slow backend
                    // never occupies the host node itself. The backend
                    // call is declared blocking (synthetic services sleep
                    // to simulate service time) so the pool compensates;
                    // its result re-enters the host as an ordinary
                    // completion event, and the host — not the task —
                    // sends the reply, so a host that stops mid-flight
                    // simply never answers (as a crashed provider
                    // wouldn't).
                    let backend = Arc::clone(&self.backend);
                    let completer = ctx.completer(token);
                    let node = ctx.node().clone();
                    self.in_flight.insert(token, HostPending::Task(request));
                    let exec = ctx.executor();
                    let pool = exec.clone();
                    exec.spawn_task(move || {
                        let reply = match pool.block_on(|| backend.invoke(&input.operation, &input))
                        {
                            Ok(output) => output,
                            Err(reason) => MessageDoc::fault(input.operation, reason),
                        };
                        completer.complete(Ok(Envelope::synthetic(
                            node,
                            "task.result",
                            reply.to_xml(),
                        )));
                    });
                } else {
                    // Non-blocking backend: answer inline on the node's
                    // own turn. No task, no compensation thread.
                    let reply = match self.backend.invoke(&input.operation, &input) {
                        Ok(output) => output,
                        Err(reason) => MessageDoc::fault(input.operation, reason),
                    };
                    let _ = ctx.endpoint().send_correlated(
                        request.from.clone(),
                        kinds::INVOKE_RESULT,
                        reply.to_xml(),
                        Some(request.id),
                    );
                }
                Flow::Continue
            }
            _ => Flow::Continue, // ignore unrelated traffic
        }
    }

    fn on_rpc_done(&mut self, ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
        let (request, body) = match self.in_flight.remove(&done.token) {
            None => return Flow::Continue,
            Some(HostPending::Task(request)) => {
                let Ok(result) = done.result else {
                    return Flow::Continue; // completer path always delivers Ok
                };
                (request, result.body)
            }
            Some(HostPending::Forward {
                request,
                operation,
                label,
            }) => {
                // Map the relay's outcome exactly like the blocking
                // `invoke` of a forwarding backend would, so errors read
                // the same on both paths.
                let reply = match done.result {
                    Ok(env) => match MessageDoc::from_xml(&env.body) {
                        Ok(resp) if resp.is_fault() => MessageDoc::fault(
                            operation,
                            format!(
                                "{label} faulted: {}",
                                resp.fault_reason().unwrap_or("unspecified")
                            ),
                        ),
                        Ok(resp) => resp,
                        Err(e) => MessageDoc::fault(operation, e.to_string()),
                    },
                    Err(selfserv_net::RpcError::Timeout) => {
                        MessageDoc::fault(operation, format!("{label} timed out"))
                    }
                    Err(selfserv_net::RpcError::Send(s)) => {
                        MessageDoc::fault(operation, format!("{label} unreachable: {s}"))
                    }
                };
                (request, reply.to_xml())
            }
        };
        let _ = ctx.endpoint().send_correlated(
            request.from.clone(),
            kinds::INVOKE_RESULT,
            body,
            Some(request.id),
        );
        Flow::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_net::{Network, NetworkConfig};

    #[test]
    fn echo_backend() {
        let b = EchoService::new("E");
        let input = MessageDoc::request("op").with("x", Value::Int(1));
        let out = b.invoke("op", &input).unwrap();
        assert_eq!(out.get("x"), Some(&Value::Int(1)));
        assert_eq!(out.get_str("echoed_by"), Some("E"));
        assert_eq!(b.name(), "E");
    }

    #[test]
    fn failing_backend() {
        let b = FailingService::new("F", "kaput");
        assert_eq!(
            b.invoke("op", &MessageDoc::request("op")).unwrap_err(),
            "kaput"
        );
    }

    #[test]
    fn synthetic_latency_and_outputs() {
        let b = SyntheticService::new("S")
            .with_latency(Duration::from_millis(20))
            .with_output("price", Value::Float(99.0));
        let t0 = std::time::Instant::now();
        let out = b.invoke("op", &MessageDoc::request("op")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(18));
        assert_eq!(out.get("price"), Some(&Value::Float(99.0)));
        assert_eq!(out.get_str("served_by"), Some("S"));
        assert_eq!(b.invocation_count(), 1);
    }

    #[test]
    fn synthetic_failures_are_seeded() {
        let run = |seed| {
            let b = SyntheticService::new("S")
                .with_failure_probability(0.5)
                .with_seed(seed);
            (0..50)
                .map(|_| b.invoke("op", &MessageDoc::request("op")).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        let outcomes = run(3);
        assert!(outcomes.iter().any(|x| *x) && outcomes.iter().any(|x| !*x));
    }

    #[test]
    fn host_serves_invocations() {
        let net = Network::new(NetworkConfig::instant());
        let _host =
            ServiceHost::spawn(&net, "svc.echo", Arc::new(EchoService::new("Echo"))).unwrap();
        let client = net.connect("client").unwrap();
        let req = MessageDoc::request("ping").with("n", Value::Int(5));
        let reply = client
            .rpc(
                "svc.echo",
                kinds::INVOKE,
                req.to_xml(),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.kind, kinds::INVOKE_RESULT);
        let msg = MessageDoc::from_xml(&reply.body).unwrap();
        assert_eq!(msg.get("n"), Some(&Value::Int(5)));
    }

    #[test]
    fn host_faults_travel_back() {
        let net = Network::new(NetworkConfig::instant());
        let _host = ServiceHost::spawn(&net, "svc.bad", Arc::new(FailingService::new("B", "boom")))
            .unwrap();
        let client = net.connect("client").unwrap();
        let reply = client
            .rpc(
                "svc.bad",
                kinds::INVOKE,
                MessageDoc::request("op").to_xml(),
                Duration::from_secs(2),
            )
            .unwrap();
        let msg = MessageDoc::from_xml(&reply.body).unwrap();
        assert!(msg.is_fault());
        assert_eq!(msg.fault_reason(), Some("boom"));
    }

    #[test]
    fn host_handles_concurrent_invocations() {
        let net = Network::new(NetworkConfig::instant());
        let backend =
            Arc::new(SyntheticService::new("Slow").with_latency(Duration::from_millis(50)));
        let _host = ServiceHost::spawn(
            &net,
            "svc.slow",
            Arc::clone(&backend) as Arc<dyn ServiceBackend>,
        )
        .unwrap();
        let t0 = std::time::Instant::now();
        let mut handles = Vec::new();
        for i in 0..4 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let client = net.connect(format!("client{i}")).unwrap();
                client
                    .rpc(
                        "svc.slow",
                        kinds::INVOKE,
                        MessageDoc::request("op").to_xml(),
                        Duration::from_secs(5),
                    )
                    .unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 4 × 50 ms in parallel must finish well under 200 ms.
        assert!(
            t0.elapsed() < Duration::from_millis(180),
            "{:?}",
            t0.elapsed()
        );
        assert_eq!(backend.invocation_count(), 4);
    }

    #[test]
    fn host_stop_disconnects() {
        let net = Network::new(NetworkConfig::instant());
        let host = ServiceHost::spawn(&net, "svc.x", Arc::new(EchoService::new("X"))).unwrap();
        assert!(net.is_connected("svc.x"));
        host.stop();
        assert!(!net.is_connected("svc.x"));
    }
}
