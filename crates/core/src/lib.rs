//! # selfserv-core
//!
//! The SELF-SERV platform core: everything Figure 1 of the paper shows.
//!
//! * [`ServiceBackend`] / [`SyntheticService`] / [`ServiceHost`] — the
//!   "pool of services": elementary web-accessible applications wrapped so
//!   they answer XML invocation envelopes (the `Wrapper` class of the
//!   original);
//! * [`Coordinator`] — the peer software component attached to each state
//!   of a composite service, driven entirely by its statically generated
//!   routing table ("coordinators do not need to implement any complex
//!   scheduling algorithm");
//! * [`CompositeWrapper`] — the composite service's entry point: starts
//!   instances, collects termination notifications, returns results;
//! * [`Deployer`] — the service deployer: validates the statechart,
//!   generates routing tables (via `selfserv-routing`), uploads them into
//!   coordinators co-located with the component services, and returns a
//!   runnable [`Deployment`];
//! * [`CentralizedOrchestrator`] — the baseline the paper argues against:
//!   a single engine interpreting the statechart and invoking every
//!   component service remotely, so all control traffic converges on one
//!   node;
//! * [`ServiceManager`] — the facade tying the discovery engine, editor
//!   checks, and deployer together.
//!
//! ## Execution model
//!
//! Each coordinator is one fabric node (one mailbox, scheduled on a shared
//! worker pool) running a continuation-passing state machine: firing a
//! state dispatches its work asynchronously and the coordinator resumes
//! when the completion event arrives, so any number of instances can be
//! awaiting backends with zero parked threads. Per instance the old
//! capacity-1 semantics hold — one task in flight at a time, later
//! notifications deferred until the completion. Notifications carry the
//! instance's variables; receivers merge variable sets, which is what
//! makes AND-join guards over cross-region data (the travel scenario's
//! `near(major_attraction, accommodation)`) evaluable without a central
//! blackboard.

mod backend;
mod central;
mod composite_backend;
mod coordinator;
mod deploy;
mod functions;
mod manager;
mod monitor;
mod protocol;
mod wrapper;

pub use backend::{
    EchoService, FailingService, ForwardCall, ServiceBackend, ServiceHost, ServiceHostHandle,
    SyntheticService,
};
pub use central::{CentralConfig, CentralHandle, CentralizedOrchestrator};
pub use composite_backend::CompositeBackend;
pub use coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle, TaskRuntime};
pub use deploy::{Deployer, Deployment, DeploymentError};
pub use functions::FunctionLibrary;
pub use manager::{AccommodationChoice, ServiceManager, TravelDemo, TravelDemoConfig};
pub use monitor::{
    mono_us, ExecutionMonitor, MonitorHandle, MonitorMetrics, MonitorOptions, TraceEvent, TraceKind,
};
pub use protocol::{kinds, naming, ExecError, InstanceId};
pub use wrapper::{CompositeWrapper, WrapperConfig, WrapperHandle};

pub mod travel_backends;
