//! The shared guard-function library distributed with a deployment.
//!
//! Guards like `domestic(destination)` reference predicates the composer
//! supplies. In the original platform this code shipped inside the
//! downloaded `Coordinator` class; here a [`FunctionLibrary`] is cloned
//! into every coordinator and wrapper at deployment time.

use selfserv_expr::{EvalError, MapEnv, NativeFn, Value};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// A named collection of native guard functions. Cheap to clone.
#[derive(Clone, Default)]
pub struct FunctionLibrary {
    fns: HashMap<String, NativeFn>,
}

impl FunctionLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync + 'static,
    {
        self.fns.insert(name.into(), Arc::new(f));
    }

    /// Registered function names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.fns.keys().cloned().collect();
        names.sort();
        names
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// Builds an evaluation environment over `vars` with the builtin
    /// function set plus this library.
    pub fn env_with(&self, vars: &BTreeMap<String, Value>) -> MapEnv {
        let mut env = MapEnv::with_builtins();
        for (k, v) in vars {
            env.set(k.clone(), v.clone());
        }
        for (name, f) in &self.fns {
            env.register_shared(name.clone(), Arc::clone(f));
        }
        env
    }

    /// The travel scenario's predicate library (`domestic`, `near`).
    pub fn travel() -> Self {
        let mut lib = Self::new();
        let mut env = MapEnv::new();
        selfserv_statechart::travel::register_predicates(&mut env);
        // Re-wrap through a MapEnv is awkward; register directly instead.
        let _ = env;
        lib.register("domestic", |args: &[Value]| {
            let city =
                args.first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| EvalError::FunctionError {
                        function: "domestic".into(),
                        message: "expects one string argument".into(),
                    })?;
            Ok(Value::Bool(
                selfserv_statechart::travel::DOMESTIC_CITIES.contains(&city),
            ))
        });
        lib.register("near", |args: &[Value]| {
            if args.len() != 2 {
                return Err(EvalError::ArityMismatch {
                    function: "near".into(),
                    expected: 2,
                    found: args.len(),
                });
            }
            let attraction = args[0].as_str().unwrap_or("");
            let place = args[1].as_str().unwrap_or("");
            Ok(Value::Bool(
                selfserv_statechart::travel::NEAR_PAIRS
                    .iter()
                    .any(|(a, p)| *a == attraction && *p == place),
            ))
        });
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_expr::parse;

    #[test]
    fn env_includes_vars_builtins_and_library() {
        let mut lib = FunctionLibrary::new();
        lib.register("double", |args| {
            Ok(Value::Int(args[0].as_f64().unwrap_or(0.0) as i64 * 2))
        });
        let mut vars = BTreeMap::new();
        vars.insert("x".to_string(), Value::Int(21));
        let env = lib.env_with(&vars);
        assert_eq!(
            parse("double(x)").unwrap().eval(&env).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            parse("len(\"ab\")").unwrap().eval(&env).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn names_and_contains() {
        let lib = FunctionLibrary::travel();
        assert!(lib.contains("domestic"));
        assert!(lib.contains("near"));
        assert_eq!(
            lib.names(),
            vec!["domestic".to_string(), "near".to_string()]
        );
    }

    #[test]
    fn travel_predicates_work() {
        let lib = FunctionLibrary::travel();
        let mut vars = BTreeMap::new();
        vars.insert("destination".to_string(), Value::str("Perth"));
        let env = lib.env_with(&vars);
        assert_eq!(
            parse("domestic(destination)").unwrap().eval(&env).unwrap(),
            Value::Bool(true)
        );
        vars.insert("destination".to_string(), Value::str("Tokyo"));
        let env = lib.env_with(&vars);
        assert_eq!(
            parse("domestic(destination)").unwrap().eval(&env).unwrap(),
            Value::Bool(false)
        );
    }
}
