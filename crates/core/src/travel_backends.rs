//! Domain backends for the paper's travel scenario: flight booking,
//! insurance, attraction search, accommodation, car rental.
//!
//! The original demo's providers were stubs behind SOAP endpoints; these
//! backends reproduce their observable behaviour with deterministic domain
//! logic (so tests can assert on both guard branches) plus configurable
//! latency.

use crate::backend::ServiceBackend;
use selfserv_expr::Value;
use selfserv_wsdl::MessageDoc;
use std::time::Duration;

fn sleep_latency(latency: Duration) {
    if !latency.is_zero() {
        std::thread::sleep(latency);
    }
}

/// Deterministic pseudo-price derived from a string, so bookings are
/// repeatable without an RNG.
fn price_for(s: &str, base: f64, spread: f64) -> f64 {
    let h = s
        .bytes()
        .fold(7u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
    base + (h % 1000) as f64 / 1000.0 * spread
}

/// Flight booking (domestic or international flavour).
pub struct FlightBookingService {
    name: String,
    prefix: &'static str,
    base_price: f64,
    latency: Duration,
}

impl FlightBookingService {
    /// The domestic-flight provider.
    pub fn domestic(latency: Duration) -> Self {
        FlightBookingService {
            name: "Domestic Flight Booking".into(),
            prefix: "QF",
            base_price: 180.0,
            latency,
        }
    }

    /// The international-flight provider.
    pub fn international(latency: Duration) -> Self {
        FlightBookingService {
            name: "International Flight Booking".into(),
            prefix: "GW",
            base_price: 950.0,
            latency,
        }
    }
}

impl ServiceBackend for FlightBookingService {
    fn invoke(&self, operation: &str, input: &MessageDoc) -> Result<MessageDoc, String> {
        sleep_latency(self.latency);
        let customer = input.get_str("customer").ok_or("missing customer")?;
        let destination = input.get_str("destination").ok_or("missing destination")?;
        let mut out = MessageDoc::response(operation);
        out.set(
            "confirmation",
            Value::str(format!(
                "{}-{:04}",
                self.prefix,
                destination.len() * 97 + customer.len()
            )),
        );
        out.set(
            "price",
            Value::Float(price_for(destination, self.base_price, 400.0)),
        );
        Ok(out)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Travel insurance.
pub struct InsuranceService {
    latency: Duration,
}

impl InsuranceService {
    /// An insurance provider with the given service time.
    pub fn new(latency: Duration) -> Self {
        InsuranceService { latency }
    }
}

impl ServiceBackend for InsuranceService {
    fn invoke(&self, operation: &str, input: &MessageDoc) -> Result<MessageDoc, String> {
        sleep_latency(self.latency);
        let customer = input.get_str("customer").ok_or("missing customer")?;
        let mut out = MessageDoc::response(operation);
        out.set(
            "policy",
            Value::str(format!("POL-{}", customer.len() * 131)),
        );
        Ok(out)
    }

    fn name(&self) -> &str {
        "Travel Insurance"
    }
}

/// Attraction search: maps a city to its major attraction (driving the
/// `near(major_attraction, accommodation)` guard).
pub struct AttractionSearchService {
    latency: Duration,
}

impl AttractionSearchService {
    /// An attraction-search provider with the given service time.
    pub fn new(latency: Duration) -> Self {
        AttractionSearchService { latency }
    }

    /// The static city → attractions table.
    pub fn attractions_for(city: &str) -> (&'static str, Vec<&'static str>) {
        match city {
            "Sydney" => (
                "Opera House",
                vec!["Opera House", "Harbour Bridge", "Bondi Beach"],
            ),
            "Melbourne" => (
                "Queen Victoria Market",
                vec!["Queen Victoria Market", "Federation Square"],
            ),
            "Hong Kong" => ("Peak Tram", vec!["Peak Tram", "Star Ferry", "Big Buddha"]),
            _ => ("Old Town Walk", vec!["Old Town Walk", "City Museum"]),
        }
    }
}

impl ServiceBackend for AttractionSearchService {
    fn invoke(&self, operation: &str, input: &MessageDoc) -> Result<MessageDoc, String> {
        sleep_latency(self.latency);
        let city = input.get_str("city").ok_or("missing city")?;
        let (major, all) = Self::attractions_for(city);
        let mut out = MessageDoc::response(operation);
        out.set("major", Value::str(major));
        out.set(
            "all",
            Value::List(all.into_iter().map(Value::str).collect()),
        );
        Ok(out)
    }

    fn name(&self) -> &str {
        "Attraction Search"
    }
}

/// An accommodation provider (a community member). Its configured
/// `location` is what the `near` predicate compares against.
pub struct AccommodationService {
    provider: String,
    location: String,
    nightly_rate: f64,
    latency: Duration,
}

impl AccommodationService {
    /// A provider returning bookings at `location`.
    pub fn new(
        provider: impl Into<String>,
        location: impl Into<String>,
        nightly_rate: f64,
        latency: Duration,
    ) -> Self {
        AccommodationService {
            provider: provider.into(),
            location: location.into(),
            nightly_rate,
            latency,
        }
    }
}

impl ServiceBackend for AccommodationService {
    fn invoke(&self, operation: &str, input: &MessageDoc) -> Result<MessageDoc, String> {
        sleep_latency(self.latency);
        let customer = input.get_str("customer").ok_or("missing customer")?;
        let mut out = MessageDoc::response(operation);
        out.set("location", Value::str(self.location.clone()));
        out.set("price", Value::Float(self.nightly_rate));
        out.set(
            "booking_ref",
            Value::str(format!("{}-{}", self.provider, customer.len() * 53)),
        );
        Ok(out)
    }

    fn name(&self) -> &str {
        &self.provider
    }
}

/// Car rental.
pub struct CarRentalService {
    latency: Duration,
}

impl CarRentalService {
    /// A car-rental provider with the given service time.
    pub fn new(latency: Duration) -> Self {
        CarRentalService { latency }
    }
}

impl ServiceBackend for CarRentalService {
    fn invoke(&self, operation: &str, input: &MessageDoc) -> Result<MessageDoc, String> {
        sleep_latency(self.latency);
        let pickup = input.get_str("pickup").ok_or("missing pickup location")?;
        let mut out = MessageDoc::response(operation);
        out.set(
            "confirmation",
            Value::str(format!("CAR-{}", pickup.len() * 211)),
        );
        Ok(out)
    }

    fn name(&self) -> &str {
        "Car Rental"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(pairs: &[(&str, &str)]) -> MessageDoc {
        let mut m = MessageDoc::request("op");
        for (k, v) in pairs {
            m.set(*k, Value::str(*v));
        }
        m
    }

    #[test]
    fn flight_booking_is_deterministic() {
        let b = FlightBookingService::domestic(Duration::ZERO);
        let r1 = b
            .invoke(
                "bookFlight",
                &req(&[("customer", "Eileen"), ("destination", "Sydney")]),
            )
            .unwrap();
        let r2 = b
            .invoke(
                "bookFlight",
                &req(&[("customer", "Eileen"), ("destination", "Sydney")]),
            )
            .unwrap();
        assert_eq!(r1, r2);
        assert!(r1.get_str("confirmation").unwrap().starts_with("QF-"));
        assert!(r1.get("price").unwrap().as_f64().unwrap() >= 180.0);
    }

    #[test]
    fn international_costs_more_than_domestic() {
        let d = FlightBookingService::domestic(Duration::ZERO);
        let i = FlightBookingService::international(Duration::ZERO);
        let msg = req(&[("customer", "Q"), ("destination", "Hong Kong")]);
        let dp = d
            .invoke("bookFlight", &msg)
            .unwrap()
            .get("price")
            .unwrap()
            .as_f64()
            .unwrap();
        let ip = i
            .invoke("bookFlight", &msg)
            .unwrap()
            .get("price")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(ip > dp);
    }

    #[test]
    fn missing_inputs_fault() {
        let b = FlightBookingService::domestic(Duration::ZERO);
        assert!(b.invoke("bookFlight", &req(&[("customer", "X")])).is_err());
        let cr = CarRentalService::new(Duration::ZERO);
        assert!(cr.invoke("rentCar", &req(&[])).is_err());
    }

    #[test]
    fn attraction_search_maps_cities() {
        let b = AttractionSearchService::new(Duration::ZERO);
        let syd = b
            .invoke("searchAttractions", &req(&[("city", "Sydney")]))
            .unwrap();
        assert_eq!(syd.get_str("major"), Some("Opera House"));
        match syd.get("all") {
            Some(Value::List(items)) => assert!(items.len() >= 2),
            other => panic!("expected list, got {other:?}"),
        }
        let unknown = b
            .invoke("searchAttractions", &req(&[("city", "Nowhere")]))
            .unwrap();
        assert_eq!(unknown.get_str("major"), Some("Old Town Walk"));
    }

    #[test]
    fn accommodation_reports_its_location() {
        let b = AccommodationService::new("CBD Hotel", "Sydney CBD Hotel", 210.0, Duration::ZERO);
        let out = b
            .invoke(
                "bookAccommodation",
                &req(&[("customer", "Eileen"), ("city", "Sydney")]),
            )
            .unwrap();
        assert_eq!(out.get_str("location"), Some("Sydney CBD Hotel"));
        assert_eq!(out.get("price"), Some(&Value::Float(210.0)));
    }

    #[test]
    fn insurance_and_car_rental() {
        let i = InsuranceService::new(Duration::ZERO);
        let pol = i
            .invoke("insure", &req(&[("customer", "Q"), ("destination", "HK")]))
            .unwrap();
        assert!(pol.get_str("policy").unwrap().starts_with("POL-"));
        let c = CarRentalService::new(Duration::ZERO);
        let conf = c
            .invoke("rentCar", &req(&[("pickup", "Bondi Hostel")]))
            .unwrap();
        assert!(conf.get_str("confirmation").unwrap().starts_with("CAR-"));
    }
}
