//! The coordinator: one peer per state of a composite service.
//!
//! "Coordinators are attached to each state of a composite service. They
//! are in charge of initiating, controlling, monitoring the associated
//! state, and collaborating with their peers to manage the service
//! execution." All behaviour below is driven by the routing table; there is
//! no scheduler.

use crate::backend::ServiceBackend;
use crate::functions::FunctionLibrary;
use crate::protocol::{fault_body, kinds, naming, InstanceId, NotifyPayload};
use selfserv_expr::Value;
use selfserv_net::{
    ConnectError, Envelope, LivenessProbe, NodeId, ReplicaSet, RpcError, Transport, TransportHandle,
};
use selfserv_routing::{NotificationLabel, Participant, RoutingTable};
use selfserv_runtime::{
    ExecutorHandle, Flow, NodeCtx, NodeHandle, NodeLogic, RpcDone, RpcToken, TimerToken,
};
use selfserv_statechart::{Assignment, InputMapping, OutputMapping, StateId};
use selfserv_wsdl::MessageDoc;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cadence of the idle-instance TTL sweep, armed only while a coordinator
/// or wrapper actually holds instances (an idle node costs no timer).
pub(crate) const SWEEP_INTERVAL: Duration = Duration::from_millis(200);

/// Timer token used by coordinator/wrapper TTL sweeps.
pub(crate) const SWEEP_TIMER: TimerToken = TimerToken(1);

/// Re-arming TTL-sweep timer shared by coordinator and wrapper logic:
/// armed exactly while instances exist (and a TTL is configured), so idle
/// nodes schedule nothing at all.
pub(crate) struct SweepTimer {
    armed: bool,
}

impl SweepTimer {
    pub(crate) fn new() -> SweepTimer {
        SweepTimer { armed: false }
    }

    /// Arms the timer when needed. Call after every message and after
    /// every firing (instances may have appeared either way).
    pub(crate) fn arm(&mut self, ctx: &NodeCtx<'_>, has_instances: bool, ttl: Duration) {
        if !self.armed && has_instances && !ttl.is_zero() {
            self.armed = true;
            ctx.set_timer(SWEEP_INTERVAL, SWEEP_TIMER);
        }
    }

    /// Records that the armed timer fired — call at the top of `on_timer`,
    /// before deciding whether to re-arm, so the flag can never stick.
    pub(crate) fn fired(&mut self) {
        self.armed = false;
    }
}

/// How a coordinator invokes its state's work when activated.
pub enum TaskRuntime {
    /// Co-located elementary (or nested composite) service: a direct call
    /// into the backend, as in the original where the coordinator is
    /// installed on the provider's host.
    Local {
        /// The application logic.
        backend: Arc<dyn ServiceBackend>,
        /// Operation to invoke.
        operation: String,
        /// Input parameter mappings (expressions over instance variables).
        inputs: Vec<InputMapping>,
        /// Output captures (response parameter → instance variable).
        outputs: Vec<OutputMapping>,
    },
    /// A community-delegated operation: a remote call to the community
    /// node, which picks the concrete provider.
    Community {
        /// The community's canonical fabric node.
        node: NodeId,
        /// Every server replica of the community, `node` included. Empty
        /// means unreplicated (route everything to `node`). The
        /// coordinator rendezvous-hashes each instance over this set and
        /// fails a timed-out or unreachable replica over to the next one
        /// before faulting the instance.
        replicas: Vec<NodeId>,
        /// Generic operation to request.
        operation: String,
        /// Input parameter mappings.
        inputs: Vec<InputMapping>,
        /// Output captures.
        outputs: Vec<OutputMapping>,
    },
    /// No work (choice pseudo-states): activation completes immediately.
    None,
}

/// Configuration for spawning one coordinator.
pub struct CoordinatorConfig {
    /// The composite service's name (for node naming).
    pub composite: String,
    /// The state this coordinator drives.
    pub state: StateId,
    /// The statically generated routing table.
    pub table: RoutingTable,
    /// The work to perform on activation.
    pub task: TaskRuntime,
    /// Guard predicates.
    pub functions: FunctionLibrary,
    /// Deadline for community invocations.
    pub invoke_timeout: Duration,
    /// Idle instances are dropped after this long without traffic
    /// (failed/abandoned executions).
    pub instance_ttl: Duration,
    /// Optional monitor node receiving trace events (fire-and-forget).
    pub monitor: Option<NodeId>,
    /// Optional failure-detector view (e.g. the discovery directory) used
    /// when routing over community replicas: evicted replicas leave the
    /// rotation, suspected ones serve only as a last resort.
    pub liveness: Option<Arc<dyn LivenessProbe>>,
}

/// Spawner for coordinators.
pub struct Coordinator;

/// Handle to a spawned coordinator.
pub struct CoordinatorHandle {
    node: NodeId,
    net: TransportHandle,
    handle: Option<NodeHandle>,
}

impl CoordinatorHandle {
    /// The coordinator's node.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// Stops the coordinator.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // A node killed by failure injection stays "dead" in the fault
            // policy by name; revive it so the name isn't poisoned for a
            // redeploy.
            self.net.revive(&self.node);
            handle.stop();
        }
    }
}

impl Drop for CoordinatorHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

struct InstanceSlot {
    seen: Vec<NotificationLabel>,
    vars: BTreeMap<String, Value>,
    last_touched: Instant,
    /// `Some(token)` while this instance's state task is in flight (fired
    /// but its completion not yet processed) — the per-instance successor
    /// of the old parked-worker capacity-1 semantics. A busy instance
    /// records incoming notifications in `deferred` instead of firing
    /// again. Carrying the token (rather than a bare flag) makes the slot
    /// generation-checked: a completion only resumes the instance if it is
    /// the one the slot is actually awaiting, so a stale completion for a
    /// cleaned-up-and-recreated instance is dropped instead of racing a
    /// newer invocation.
    in_flight: Option<RpcToken>,
    /// Notifications received while busy, replayed in arrival order after
    /// the completion — exactly the order the blocking path drained its
    /// queued mailbox after the parked turn.
    deferred: VecDeque<(NotificationLabel, BTreeMap<String, Value>)>,
}

impl InstanceSlot {
    fn new() -> InstanceSlot {
        InstanceSlot {
            seen: Vec::new(),
            vars: BTreeMap::new(),
            last_touched: Instant::now(),
            in_flight: None,
            deferred: VecDeque::new(),
        }
    }
}

/// Which reply an in-flight invocation is awaiting — the explicit phases
/// the blocking `invoke` used to pass through while parked on a worker.
enum InvokePhase {
    /// Awaiting the community's proxy-mode reply (or redirect decision).
    /// `input` is kept so a redirect can re-issue the same request to the
    /// chosen member; `node` is the replica serving this attempt and
    /// `tried` every replica already attempted, so a dead replica fails
    /// over to a survivor before the instance faults.
    Community {
        input: MessageDoc,
        node: NodeId,
        tried: Vec<NodeId>,
    },
    /// Awaiting a redirect-mode member's direct reply.
    Redirect { member: String },
    /// Awaiting a forwarding backend's remote reply
    /// (see [`crate::ForwardCall`]). `label` names the remote in faults.
    Forward { label: String },
    /// Awaiting a co-located blocking backend running as a pool task
    /// (resumed through a `TaskCompleter`).
    Local,
}

/// Continuation state of one in-flight invocation, keyed by the
/// [`RpcToken`] its completion event will carry.
struct PendingInvoke {
    instance: InstanceId,
    /// Variable snapshot as of firing (pre-invoke actions applied);
    /// written back to the instance on completion.
    vars: BTreeMap<String, Value>,
    phase: InvokePhase,
}

struct CoordinatorLogic {
    cfg: CoordinatorConfig,
    wrapper_node: NodeId,
    instances: HashMap<InstanceId, InstanceSlot>,
    /// In-flight invocations across all instances: the coordinator can
    /// have any number awaiting replies with zero parked workers.
    pending: HashMap<RpcToken, PendingInvoke>,
    next_token: u64,
    sweep: SweepTimer,
    /// This caller's in-flight count per community replica — the local
    /// load signal replica routing uses as its tiebreak.
    replica_load: HashMap<NodeId, usize>,
}

impl Coordinator {
    /// Spawns a coordinator on its conventional node
    /// (`<composite>.coord.<state>`), over any [`Transport`], scheduled on
    /// the process-wide shared executor.
    pub fn spawn(
        net: &dyn Transport,
        cfg: CoordinatorConfig,
    ) -> Result<CoordinatorHandle, ConnectError> {
        Self::spawn_on(net, selfserv_runtime::shared(), cfg)
    }

    /// Spawns a coordinator scheduled on an explicit executor.
    pub fn spawn_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        cfg: CoordinatorConfig,
    ) -> Result<CoordinatorHandle, ConnectError> {
        let node_name = naming::coordinator(&cfg.composite, &cfg.state);
        let endpoint = net.connect(node_name)?;
        let node = endpoint.node().clone();
        let wrapper_node = naming::wrapper(&cfg.composite);
        let logic = CoordinatorLogic {
            cfg,
            wrapper_node,
            instances: HashMap::new(),
            pending: HashMap::new(),
            next_token: 0,
            sweep: SweepTimer::new(),
            replica_load: HashMap::new(),
        };
        Ok(CoordinatorHandle {
            node,
            net: net.handle(),
            handle: Some(exec.spawn_node(endpoint, logic)),
        })
    }
}

/// Evaluates an optional guard; `None` means true. Errors become `Err` so
/// callers can fault the instance rather than silently skipping.
pub(crate) fn eval_guard(
    guard: &Option<selfserv_expr::Expr>,
    functions: &FunctionLibrary,
    vars: &BTreeMap<String, Value>,
) -> Result<bool, String> {
    match guard {
        None => Ok(true),
        Some(g) => {
            let env = functions.env_with(vars);
            g.eval_bool(&env).map_err(|e| format!("guard '{g}': {e}"))
        }
    }
}

/// Applies assignment actions to the variable set.
pub(crate) fn apply_actions(
    actions: &[Assignment],
    functions: &FunctionLibrary,
    vars: &mut BTreeMap<String, Value>,
) -> Result<(), String> {
    for a in actions {
        let env = functions.env_with(vars);
        let value = a
            .expr
            .eval(&env)
            .map_err(|e| format!("action '{} := {}': {e}", a.var, a.expr))?;
        vars.insert(a.var.clone(), value);
    }
    Ok(())
}

/// Builds a service request from input mappings over instance variables.
pub(crate) fn build_input(
    operation: &str,
    inputs: &[InputMapping],
    functions: &FunctionLibrary,
    vars: &BTreeMap<String, Value>,
) -> Result<MessageDoc, String> {
    let env = functions.env_with(vars);
    let mut msg = MessageDoc::request(operation);
    for m in inputs {
        let value = m
            .expr
            .eval(&env)
            .map_err(|e| format!("input '{}' = {}: {e}", m.param, m.expr))?;
        msg.set(m.param.clone(), value);
    }
    Ok(msg)
}

/// Copies captured outputs of a response into instance variables.
pub(crate) fn apply_outputs(
    outputs: &[OutputMapping],
    response: &MessageDoc,
    vars: &mut BTreeMap<String, Value>,
) {
    for m in outputs {
        if let Some(v) = response.get(&m.param) {
            vars.insert(m.var.clone(), v.clone());
        }
    }
}

impl NodeLogic for CoordinatorLogic {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        match env.kind.as_str() {
            kinds::STOP => return Flow::Stop,
            kinds::NOTIFY => self.on_notify(ctx, &env.body),
            kinds::CLEANUP => self.on_cleanup(&env.body),
            _ => { /* ignore unrelated traffic */ }
        }
        self.sweep_stale();
        self.arm_sweep(ctx);
        Flow::Continue
    }

    fn on_rpc_done(&mut self, ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
        self.on_completion(ctx, done);
        self.sweep_stale();
        self.arm_sweep(ctx);
        Flow::Continue
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: TimerToken) -> Flow {
        self.sweep.fired();
        self.sweep_stale();
        self.arm_sweep(ctx);
        Flow::Continue
    }
}

impl CoordinatorLogic {
    fn trace(
        &self,
        ctx: &NodeCtx<'_>,
        instance: InstanceId,
        kind: crate::monitor::TraceKind,
        detail: &str,
    ) {
        if let Some(monitor) = &self.cfg.monitor {
            let body = crate::monitor::trace_body(instance, self.cfg.state.as_str(), kind, detail);
            let _ = ctx
                .endpoint()
                .send(monitor.clone(), crate::monitor::TRACE_KIND, body);
        }
    }

    fn arm_sweep(&mut self, ctx: &NodeCtx<'_>) {
        self.sweep
            .arm(ctx, !self.instances.is_empty(), self.cfg.instance_ttl);
    }

    fn sweep_stale(&mut self) {
        let ttl = self.cfg.instance_ttl;
        if ttl.is_zero() {
            return;
        }
        let now = Instant::now();
        // Busy instances are exempt: an invocation awaiting a slow reply
        // is live work, not abandonment (under the blocking model the
        // parked coordinator couldn't sweep during an invoke either).
        self.instances.retain(|_, slot| {
            slot.in_flight.is_some() || now.duration_since(slot.last_touched) < ttl
        });
    }

    fn on_cleanup(&mut self, body: &selfserv_xml::Element) {
        if let Some(id) = body
            .attr("instance")
            .and_then(|s| InstanceId::decode(s).ok())
        {
            // A completion still in flight for this instance finds the
            // slot gone and is dropped.
            self.instances.remove(&id);
        }
    }

    fn on_notify(&mut self, ctx: &mut NodeCtx<'_>, body: &selfserv_xml::Element) {
        let payload = match NotifyPayload::from_xml(body) {
            Ok(p) => p,
            Err(_) => return, // malformed traffic is dropped, like bad XML over sockets
        };
        let Ok(label) = NotificationLabel::decode(&payload.label) else {
            return;
        };
        let slot = self
            .instances
            .entry(payload.instance)
            .or_insert_with(InstanceSlot::new);
        slot.last_touched = Instant::now();
        if slot.in_flight.is_some() {
            // The instance's task is in flight: defer, replay after the
            // completion (preserving the blocking path's arrival order).
            slot.deferred.push_back((label, payload.vars));
            return;
        }
        slot.seen.push(label);
        for (k, v) in payload.vars {
            slot.vars.insert(k, v);
        }
        self.try_fire(ctx, payload.instance);
    }

    /// Checks precondition alternatives in order; fires the first satisfied
    /// one (consuming its labels so loops can re-arm). Firing runs the
    /// pre-invoke phase inline, then *dispatches* the state's work and
    /// returns — the coordinator resumes in [`CoordinatorLogic::on_completion`]
    /// when the reply (or the task's completion event) arrives. No worker
    /// is parked in between, so any number of instances can be in flight.
    fn try_fire(&mut self, ctx: &mut NodeCtx<'_>, instance: InstanceId) {
        let fired = {
            let Some(slot) = self.instances.get_mut(&instance) else {
                return;
            };
            if slot.in_flight.is_some() {
                return;
            }
            let mut fired: Option<usize> = None;
            for (idx, pre) in self.cfg.table.preconditions.iter().enumerate() {
                if !pre.satisfied_by(&slot.seen) {
                    continue;
                }
                match eval_guard(&pre.condition, &self.cfg.functions, &slot.vars) {
                    Ok(true) => {
                        fired = Some(idx);
                        break;
                    }
                    Ok(false) => continue,
                    Err(reason) => {
                        let body = fault_body(instance, self.cfg.state.as_str(), &reason);
                        let _ = ctx
                            .endpoint()
                            .send(self.wrapper_node.clone(), kinds::FAULT, body);
                        return;
                    }
                }
            }
            let Some(idx) = fired else { return };
            // Consume the alternative's labels.
            let pre = &self.cfg.table.preconditions[idx];
            for l in &pre.labels {
                if let Some(pos) = slot.seen.iter().position(|s| s == l) {
                    slot.seen.remove(pos);
                }
            }
            idx
        };
        self.trace(
            ctx,
            instance,
            crate::monitor::TraceKind::Activated,
            &self.cfg.table.preconditions[fired].id.clone(),
        );
        let pre_actions = self.cfg.table.preconditions[fired].actions.clone();
        let mut vars = self
            .instances
            .get(&instance)
            .map(|s| s.vars.clone())
            .unwrap_or_default();
        if let Err(reason) = apply_actions(&pre_actions, &self.cfg.functions, &mut vars) {
            self.fault(ctx, instance, &reason);
            return;
        }
        // Dispatch the state's work and return. Per instance the old
        // capacity-1 semantics hold — the instance is marked busy and
        // later notifications are deferred until the completion — but the
        // coordinator itself never parks: the reply resumes it through
        // `on_rpc_done` (and the AND-regions of one instance still run in
        // parallel because they live on different coordinators).
        self.begin_invoke(ctx, instance, vars);
    }

    /// Pre-invoke → in-flight: builds the request for the state's task and
    /// dispatches it, recording the continuation under a fresh token.
    /// `TaskRuntime::None` completes inline.
    fn begin_invoke(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        instance: InstanceId,
        mut vars: BTreeMap<String, Value>,
    ) {
        match &self.cfg.task {
            TaskRuntime::None => self.finish_invoke(ctx, instance, &mut vars),
            TaskRuntime::Local {
                backend,
                operation,
                inputs,
                ..
            } => {
                let input = match build_input(operation, inputs, &self.cfg.functions, &vars) {
                    Ok(input) => input,
                    Err(reason) => return self.fault(ctx, instance, &reason),
                };
                // Pure forwarders (e.g. nested composites) declare the
                // remote exchange: carry it continuation-passing, with no
                // task and no blocked worker at all.
                if let Some(call) = backend.forward(operation, &input) {
                    let token = self.issue_token(
                        instance,
                        vars,
                        InvokePhase::Forward { label: call.label },
                    );
                    ctx.rpc_async(call.to, call.kind, call.body, call.timeout, token);
                    return;
                }
                let backend = Arc::clone(backend);
                let operation = operation.clone();
                let token = self.issue_token(instance, vars, InvokePhase::Local);
                let completer = ctx.completer(token);
                let node = ctx.node().clone();
                if !backend.may_block() {
                    // A backend that never parks (echo stubs, pure
                    // functions) runs inline on the coordinator's turn;
                    // its completion event is queued for the end of the
                    // turn like any other, so the phase machine is
                    // identical — minus the task and compensation thread.
                    let reply = match backend.invoke(&operation, &input) {
                        Ok(doc) => doc,
                        Err(reason) => MessageDoc::fault(&operation, reason),
                    };
                    completer.complete(Ok(Envelope::synthetic(
                        node,
                        "task.result",
                        reply.to_xml(),
                    )));
                    return;
                }
                // A co-located backend may compute or simulate service
                // latency (sleep): run it as a pool task under blocking
                // compensation, and resume this coordinator through the
                // task's completion event.
                let exec = ctx.executor();
                let pool = exec.clone();
                exec.spawn_task(move || {
                    let reply = match pool.block_on(|| backend.invoke(&operation, &input)) {
                        Ok(doc) => doc,
                        Err(reason) => MessageDoc::fault(&operation, reason),
                    };
                    completer.complete(Ok(Envelope::synthetic(
                        node,
                        "task.result",
                        reply.to_xml(),
                    )));
                });
            }
            TaskRuntime::Community {
                node,
                replicas,
                operation,
                inputs,
                ..
            } => {
                let input = match build_input(operation, inputs, &self.cfg.functions, &vars) {
                    Ok(input) => input,
                    Err(reason) => return self.fault(ctx, instance, &reason),
                };
                // Replica routing: rendezvous-hash the instance over the
                // community's replica set (instances keep their affinity;
                // load breaks ties), falling back to the canonical node
                // when unreplicated.
                let node = if replicas.is_empty() {
                    node.clone()
                } else {
                    let set = ReplicaSet::new(replicas.clone());
                    let load = &self.replica_load;
                    set.route(
                        &format!("{}/{instance}", self.cfg.composite),
                        self.cfg.liveness.as_deref(),
                        &[],
                        &|n| load.get(n).copied().unwrap_or(0),
                    )
                    .unwrap_or_else(|| node.clone())
                };
                *self.replica_load.entry(node.clone()).or_default() += 1;
                let body = input.to_xml();
                let token = self.issue_token(
                    instance,
                    vars,
                    InvokePhase::Community {
                        input,
                        node: node.clone(),
                        tried: vec![node.clone()],
                    },
                );
                ctx.rpc_async(
                    node,
                    "community.invoke",
                    body,
                    self.cfg.invoke_timeout,
                    token,
                );
            }
        }
    }

    /// Records the continuation of a dispatched invocation and marks its
    /// instance busy.
    fn issue_token(
        &mut self,
        instance: InstanceId,
        vars: BTreeMap<String, Value>,
        phase: InvokePhase,
    ) -> RpcToken {
        self.next_token += 1;
        let token = RpcToken(self.next_token);
        self.pending.insert(
            token,
            PendingInvoke {
                instance,
                vars,
                phase,
            },
        );
        if let Some(slot) = self.instances.get_mut(&instance) {
            slot.in_flight = Some(token);
        }
        token
    }

    /// Picks an untried community replica for a failover attempt, or
    /// `None` when the community is unreplicated or every replica has
    /// been tried.
    fn failover_replica(&self, instance: &InstanceId, tried: &[NodeId]) -> Option<NodeId> {
        let TaskRuntime::Community { replicas, .. } = &self.cfg.task else {
            return None;
        };
        if replicas.len() <= 1 {
            return None;
        }
        let set = ReplicaSet::new(replicas.clone());
        let load = &self.replica_load;
        set.route(
            &format!("{}/{instance}", self.cfg.composite),
            self.cfg.liveness.as_deref(),
            tried,
            &|n| load.get(n).copied().unwrap_or(0),
        )
    }

    /// In-flight → post-invoke: resumes the invocation whose reply (or
    /// task completion) arrived, by phase. The instance may have been
    /// cleaned up mid-flight; the completion is then dropped.
    fn on_completion(&mut self, ctx: &mut NodeCtx<'_>, done: RpcDone) {
        let Some(p) = self.pending.remove(&done.token) else {
            return;
        };
        let PendingInvoke {
            instance,
            mut vars,
            phase,
        } = p;
        // The replica's in-flight slot frees regardless of whether the
        // instance still cares about the completion — the load gauge must
        // match outstanding rpcs exactly.
        if let InvokePhase::Community { node, .. } = &phase {
            if let Some(load) = self.replica_load.get_mut(node) {
                *load = load.saturating_sub(1);
            }
        }
        // Generation check: resume only if the slot is awaiting exactly
        // this completion. A slot that was cleaned up mid-flight — even
        // one recreated since by a late notification, possibly with a
        // newer invocation of its own in flight — must not be touched by
        // the stale completion.
        let awaiting = self.instances.get(&instance).and_then(|s| s.in_flight);
        if awaiting != Some(done.token) {
            return;
        }
        match phase {
            InvokePhase::Local => {
                // The completer path always delivers Ok(synthetic env);
                // fault defensively rather than leave the instance busy.
                let env = match done.result {
                    Ok(env) => env,
                    Err(e) => return self.fault(ctx, instance, &format!("task failed: {e}")),
                };
                let response = match MessageDoc::from_xml(&env.body) {
                    Ok(r) => r,
                    Err(e) => return self.fault(ctx, instance, &e.to_string()),
                };
                if response.is_fault() {
                    let reason = response
                        .fault_reason()
                        .unwrap_or("backend fault")
                        .to_string();
                    return self.fault(ctx, instance, &reason);
                }
                apply_outputs(self.task_outputs(), &response, &mut vars);
                self.finish_invoke(ctx, instance, &mut vars);
            }
            InvokePhase::Forward { label } => {
                let reply = match done.result {
                    Ok(reply) => reply,
                    Err(RpcError::Timeout) => {
                        return self.fault(ctx, instance, &format!("{label} timed out"));
                    }
                    Err(RpcError::Send(s)) => {
                        return self.fault(ctx, instance, &format!("{label} unreachable: {s}"));
                    }
                };
                let response = match MessageDoc::from_xml(&reply.body) {
                    Ok(r) => r,
                    Err(e) => return self.fault(ctx, instance, &e.to_string()),
                };
                if response.is_fault() {
                    let reason = format!(
                        "{label} faulted: {}",
                        response.fault_reason().unwrap_or("unspecified")
                    );
                    return self.fault(ctx, instance, &reason);
                }
                apply_outputs(self.task_outputs(), &response, &mut vars);
                self.finish_invoke(ctx, instance, &mut vars);
            }
            InvokePhase::Community { input, node, tried } => {
                let reply = match done.result {
                    Ok(reply) => reply,
                    Err(e) => {
                        // The replica timed out or became unreachable
                        // mid-delegation: fail over to an untried survivor
                        // before faulting the instance. Unreplicated
                        // communities (no survivors) fault exactly as
                        // before.
                        if let Some(next) = self.failover_replica(&instance, &tried) {
                            *self.replica_load.entry(next.clone()).or_default() += 1;
                            let body = input.to_xml();
                            let mut tried = tried;
                            tried.push(next.clone());
                            let token = self.issue_token(
                                instance,
                                vars,
                                InvokePhase::Community {
                                    input,
                                    node: next.clone(),
                                    tried,
                                },
                            );
                            ctx.rpc_async(
                                next,
                                "community.invoke",
                                body,
                                self.cfg.invoke_timeout,
                                token,
                            );
                            return;
                        }
                        return match e {
                            RpcError::Timeout => {
                                self.fault(ctx, instance, &format!("community '{node}' timed out"))
                            }
                            RpcError::Send(s) => self.fault(
                                ctx,
                                instance,
                                &format!("community '{node}' unreachable: {s}"),
                            ),
                        };
                    }
                };
                if reply.kind == "community.fault" {
                    let reason = reply
                        .body
                        .attr("reason")
                        .unwrap_or("community fault")
                        .to_string();
                    return self.fault(ctx, instance, &reason);
                }
                // A replica redirect: the replica's member pool could not
                // serve and it named the rendezvous-ranked next replica.
                // Re-issue the *community* invoke there, carrying the
                // tried-set so a ring of unservable replicas terminates in
                // a fault instead of orbiting.
                if reply.body.name == "redirect" && reply.body.attr("replica").is_some() {
                    let next = match reply.body.require_attr("endpoint") {
                        Ok(m) => NodeId::new(m),
                        Err(e) => {
                            return self.fault(ctx, instance, &format!("bad redirect: {e}"));
                        }
                    };
                    if tried.contains(&next) {
                        return self.fault(
                            ctx,
                            instance,
                            &format!("community replica redirect loop via '{next}'"),
                        );
                    }
                    *self.replica_load.entry(next.clone()).or_default() += 1;
                    let body = input.to_xml();
                    let mut tried = tried;
                    tried.push(next.clone());
                    let token = self.issue_token(
                        instance,
                        vars,
                        InvokePhase::Community {
                            input,
                            node: next.clone(),
                            tried,
                        },
                    );
                    ctx.rpc_async(
                        next,
                        "community.invoke",
                        body,
                        self.cfg.invoke_timeout,
                        token,
                    );
                    return;
                }
                // Redirect-mode communities return the chosen member's
                // binding; the coordinator then invokes it directly —
                // another await, same continuation machinery.
                if reply.body.name == "redirect" {
                    let member = match reply.body.require_attr("endpoint") {
                        Ok(m) => m.to_string(),
                        Err(e) => {
                            return self.fault(ctx, instance, &format!("bad redirect: {e}"));
                        }
                    };
                    let body = input.to_xml();
                    let to = NodeId::new(&member);
                    let token = self.issue_token(instance, vars, InvokePhase::Redirect { member });
                    ctx.rpc_async(to, "invoke", body, self.cfg.invoke_timeout, token);
                    return;
                }
                let response = match MessageDoc::from_xml(&reply.body) {
                    Ok(r) => r,
                    Err(e) => return self.fault(ctx, instance, &e.to_string()),
                };
                if response.is_fault() {
                    let reason = response
                        .fault_reason()
                        .unwrap_or("member fault")
                        .to_string();
                    return self.fault(ctx, instance, &reason);
                }
                apply_outputs(self.task_outputs(), &response, &mut vars);
                self.finish_invoke(ctx, instance, &mut vars);
            }
            InvokePhase::Redirect { member } => {
                let reply = match done.result {
                    Ok(reply) => reply,
                    Err(e) => {
                        return self.fault(
                            ctx,
                            instance,
                            &format!("redirected member '{member}' failed: {e}"),
                        );
                    }
                };
                let response = match MessageDoc::from_xml(&reply.body) {
                    Ok(r) => r,
                    Err(e) => return self.fault(ctx, instance, &e.to_string()),
                };
                if response.is_fault() {
                    let reason = response
                        .fault_reason()
                        .unwrap_or("member fault")
                        .to_string();
                    return self.fault(ctx, instance, &reason);
                }
                apply_outputs(self.task_outputs(), &response, &mut vars);
                self.finish_invoke(ctx, instance, &mut vars);
            }
        }
    }

    /// The task's output captures (empty for `TaskRuntime::None`).
    fn task_outputs(&self) -> &[OutputMapping] {
        match &self.cfg.task {
            TaskRuntime::Local { outputs, .. } | TaskRuntime::Community { outputs, .. } => outputs,
            TaskRuntime::None => &[],
        }
    }

    /// Post-invoke: write updated vars back so later activations of this
    /// instance (loops) observe them, route the outcome, then replay any
    /// notifications that arrived while the invocation was in flight.
    fn finish_invoke(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        instance: InstanceId,
        vars: &mut BTreeMap<String, Value>,
    ) {
        self.trace(ctx, instance, crate::monitor::TraceKind::Completed, "");
        if let Some(slot) = self.instances.get_mut(&instance) {
            slot.vars = vars.clone();
            slot.last_touched = Instant::now();
            slot.in_flight = None;
        }
        self.postprocess(ctx, instance, vars);
        self.replay_deferred(ctx, instance);
    }

    /// Replays notifications deferred while the instance was busy, in
    /// arrival order, firing after each one exactly as the blocking path
    /// did when it drained its mailbox — and stopping as soon as a firing
    /// puts the instance back in flight (or removes it).
    fn replay_deferred(&mut self, ctx: &mut NodeCtx<'_>, instance: InstanceId) {
        loop {
            let Some(slot) = self.instances.get_mut(&instance) else {
                return;
            };
            if slot.in_flight.is_some() {
                return;
            }
            let Some((label, vars)) = slot.deferred.pop_front() else {
                return;
            };
            slot.last_touched = Instant::now();
            slot.seen.push(label);
            for (k, v) in vars {
                slot.vars.insert(k, v);
            }
            self.try_fire(ctx, instance);
        }
    }

    /// Evaluates postprocessing rows in order; the first row whose guard
    /// holds fires, emitting all its notifications with the current
    /// variable snapshot.
    fn postprocess(
        &mut self,
        ctx: &NodeCtx<'_>,
        instance: InstanceId,
        vars: &mut BTreeMap<String, Value>,
    ) {
        let table = &self.cfg.table;
        let mut fired = false;
        for post in &table.postprocessings {
            match eval_guard(&post.guard, &self.cfg.functions, vars) {
                Ok(false) => continue,
                Err(reason) => {
                    let body = fault_body(instance, self.cfg.state.as_str(), &reason);
                    let _ = ctx
                        .endpoint()
                        .send(self.wrapper_node.clone(), kinds::FAULT, body);
                    return;
                }
                Ok(true) => {
                    let mut local_vars = vars.clone();
                    if let Err(reason) =
                        apply_actions(&post.actions, &self.cfg.functions, &mut local_vars)
                    {
                        let body = fault_body(instance, self.cfg.state.as_str(), &reason);
                        let _ = ctx
                            .endpoint()
                            .send(self.wrapper_node.clone(), kinds::FAULT, body);
                        return;
                    }
                    for notification in post.notifications() {
                        let target_node = match &notification.target {
                            Participant::State(s) => naming::coordinator(&self.cfg.composite, s),
                            Participant::Wrapper => self.wrapper_node.clone(),
                        };
                        let payload = NotifyPayload {
                            label: notification.label.encode(),
                            instance,
                            vars: local_vars.clone(),
                        };
                        let _ = ctx
                            .endpoint()
                            .send(target_node, kinds::NOTIFY, payload.to_xml());
                    }
                    fired = true;
                    break;
                }
            }
        }
        if !fired {
            self.fault(
                ctx,
                instance,
                &format!(
                    "no outgoing transition enabled after state '{}'",
                    self.cfg.state
                ),
            );
        }
    }

    fn fault(&mut self, ctx: &NodeCtx<'_>, instance: InstanceId, reason: &str) {
        self.trace(ctx, instance, crate::monitor::TraceKind::Faulted, reason);
        let body = fault_body(instance, self.cfg.state.as_str(), reason);
        let _ = ctx
            .endpoint()
            .send(self.wrapper_node.clone(), kinds::FAULT, body);
        self.instances.remove(&instance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_expr::parse;

    #[test]
    fn eval_guard_none_is_true() {
        let lib = FunctionLibrary::new();
        assert!(eval_guard(&None, &lib, &BTreeMap::new()).unwrap());
    }

    #[test]
    fn eval_guard_uses_vars_and_functions() {
        let lib = FunctionLibrary::travel();
        let mut vars = BTreeMap::new();
        vars.insert("destination".to_string(), Value::str("Cairns"));
        let g = Some(parse("domestic(destination)").unwrap());
        assert!(eval_guard(&g, &lib, &vars).unwrap());
        vars.insert("destination".to_string(), Value::str("Osaka"));
        assert!(!eval_guard(&g, &lib, &vars).unwrap());
    }

    #[test]
    fn eval_guard_error_on_missing_var() {
        let lib = FunctionLibrary::new();
        let g = Some(parse("missing > 3").unwrap());
        assert!(eval_guard(&g, &lib, &BTreeMap::new()).is_err());
    }

    #[test]
    fn apply_actions_updates_vars() {
        let lib = FunctionLibrary::new();
        let mut vars = BTreeMap::new();
        vars.insert("n".to_string(), Value::Int(2));
        let actions = vec![
            Assignment {
                var: "n".into(),
                expr: parse("n * 10").unwrap(),
            },
            Assignment {
                var: "label".into(),
                expr: parse("\"x\"").unwrap(),
            },
        ];
        apply_actions(&actions, &lib, &mut vars).unwrap();
        assert_eq!(vars.get("n"), Some(&Value::Int(20)));
        assert_eq!(vars.get("label"), Some(&Value::str("x")));
    }

    #[test]
    fn build_input_maps_expressions() {
        let lib = FunctionLibrary::new();
        let mut vars = BTreeMap::new();
        vars.insert("destination".to_string(), Value::str("Sydney"));
        vars.insert("base".to_string(), Value::Int(100));
        let inputs = vec![
            InputMapping {
                param: "city".into(),
                expr: parse("destination").unwrap(),
            },
            InputMapping {
                param: "budget".into(),
                expr: parse("base * 2").unwrap(),
            },
        ];
        let msg = build_input("book", &inputs, &lib, &vars).unwrap();
        assert_eq!(msg.get_str("city"), Some("Sydney"));
        assert_eq!(msg.get("budget"), Some(&Value::Int(200)));
        assert_eq!(msg.operation, "book");
    }

    #[test]
    fn build_input_error_on_missing_var() {
        let lib = FunctionLibrary::new();
        let inputs = vec![InputMapping {
            param: "x".into(),
            expr: parse("ghost").unwrap(),
        }];
        assert!(build_input("op", &inputs, &lib, &BTreeMap::new()).is_err());
    }

    #[test]
    fn apply_outputs_copies_present_params() {
        let mut vars = BTreeMap::new();
        let outputs = vec![
            OutputMapping {
                param: "price".into(),
                var: "flight_price".into(),
            },
            OutputMapping {
                param: "absent".into(),
                var: "nope".into(),
            },
        ];
        let response = MessageDoc::response("book").with("price", Value::Float(320.0));
        apply_outputs(&outputs, &response, &mut vars);
        assert_eq!(vars.get("flight_price"), Some(&Value::Float(320.0)));
        assert!(!vars.contains_key("nope"));
    }
}
