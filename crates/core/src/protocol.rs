//! Wire protocol shared by coordinators, wrappers, hosts, and clients:
//! message kinds, node naming, instance ids, and notification payloads.

use selfserv_expr::Value;
use selfserv_net::{Endpoint, NodeSender, Transport, TransportHandle};
use selfserv_wsdl::MessageDoc;
use selfserv_xml::Element;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A long-lived anonymous client identity: one connected endpoint kept
/// alive for its owner's lifetime, used through [`NodeSender`] clones.
/// Rpc replies demultiplex at the held endpoint, so any number of
/// concurrent calls share it with no per-call endpoint, listener, or
/// thread.
///
/// The endpoint is connected lazily on first use, so owners whose callers
/// only ever supply their own endpoints (e.g. `execute_from`) never pay
/// for it — on TCP an anonymous connect costs a listener and an accept
/// thread, and it adds a `~` node to metrics. (The `Mutex` makes the held
/// [`Endpoint`] `Sync`; only [`PersistentClient::recv_timeout`] — the
/// submit-mode result collector — ever locks it.)
pub(crate) struct PersistentClient {
    net: TransportHandle,
    prefix: String,
    slot: OnceLock<(NodeSender, Mutex<Endpoint>)>,
}

impl PersistentClient {
    /// A client that will connect as `prefix~<n>` on `net` when first
    /// used.
    pub(crate) fn new(net: &dyn Transport, prefix: impl Into<String>) -> Self {
        PersistentClient {
            net: net.handle(),
            prefix: prefix.into(),
            slot: OnceLock::new(),
        }
    }

    fn slot(&self) -> &(NodeSender, Mutex<Endpoint>) {
        self.slot.get_or_init(|| {
            let endpoint = self.net.connect_anonymous(&self.prefix);
            (endpoint.sender(), Mutex::new(endpoint))
        })
    }

    /// The handle that sends and rpcs as this client (connecting the
    /// underlying endpoint on first call).
    pub(crate) fn sender(&self) -> &NodeSender {
        &self.slot().0
    }

    /// Receives the next envelope queued on the client's mailbox — the
    /// arrival path of fire-and-collect replies (correlated responses to
    /// plain `send`s, which the reply demux passes through to the mailbox
    /// because no rpc registered their ids). Concurrent collectors
    /// serialize on the endpoint lock.
    pub(crate) fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<selfserv_net::Envelope, selfserv_net::RecvError> {
        let endpoint = self.slot().1.lock().expect("client endpoint lock");
        endpoint.recv_timeout(timeout)
    }
}

/// Message kinds of the execution protocol.
pub mod kinds {
    /// Completion/start notification between peers (coordinators and the
    /// wrapper).
    pub const NOTIFY: &str = "coord.notify";
    /// Instance fault report to the wrapper.
    pub const FAULT: &str = "coord.fault";
    /// Per-instance state cleanup broadcast after completion.
    pub const CLEANUP: &str = "coord.cleanup";
    /// Service invocation request to a [`crate::ServiceHost`] (also the
    /// community member protocol).
    pub const INVOKE: &str = "invoke";
    /// Service invocation reply.
    pub const INVOKE_RESULT: &str = "invoke.result";
    /// Client request to execute a composite operation.
    pub const EXECUTE: &str = "wrapper.execute";
    /// Composite execution reply.
    pub const EXECUTE_RESULT: &str = "wrapper.result";
    /// External ECA event injection.
    pub const RAISE_EVENT: &str = "wrapper.event";
    /// Stop an actor.
    pub const STOP: &str = "actor.stop";
}

/// Node naming conventions: one composite's actors live under a common
/// prefix so metrics can attribute load per component.
pub mod naming {
    use selfserv_net::NodeId;
    use selfserv_statechart::StateId;

    /// Node of the composite wrapper.
    pub fn wrapper(composite: &str) -> NodeId {
        NodeId::new(format!("{}.wrapper", slug(composite)))
    }

    /// Node of the coordinator for `state`.
    pub fn coordinator(composite: &str, state: &StateId) -> NodeId {
        NodeId::new(format!("{}.coord.{}", slug(composite), state))
    }

    /// Node of the centralized engine baseline.
    pub fn central(composite: &str) -> NodeId {
        NodeId::new(format!("{}.central", slug(composite)))
    }

    /// Node of an elementary service host.
    pub fn service_host(service: &str) -> NodeId {
        NodeId::new(format!("svc.{}", slug(service)))
    }

    /// Node of a community.
    pub fn community(name: &str) -> NodeId {
        NodeId::new(format!("community.{}", slug(name)))
    }

    /// Node of the `index`-th replica of a community. Replica 0 is the
    /// community's canonical node (so a single-replica deployment is
    /// byte-identical to the unreplicated one); further replicas append
    /// an `.rN` suffix. Deployers probe these names in order to discover
    /// how many replicas a community is running.
    pub fn community_replica(name: &str, index: usize) -> NodeId {
        if index == 0 {
            community(name)
        } else {
            NodeId::new(format!("community.{}.r{index}", slug(name)))
        }
    }

    /// Lowercase, space-free identifier for node names.
    pub fn slug(s: &str) -> String {
        s.chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '.' || c == '-' {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect()
    }
}

/// Identifier of one execution (case) of a composite service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl InstanceId {
    /// Parses the `i<N>` form.
    pub fn decode(s: &str) -> Result<Self, String> {
        let digits = s
            .strip_prefix('i')
            .ok_or_else(|| format!("bad instance id {s:?}"))?;
        Ok(InstanceId(
            digits
                .parse()
                .map_err(|e| format!("bad instance id {s:?}: {e}"))?,
        ))
    }
}

/// Errors surfaced to composite-service callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The composite faulted (component failure, stalled guard, etc.).
    Fault(String),
    /// The execution did not finish within the caller's deadline.
    Timeout,
    /// The wrapper (or fabric) could not be reached.
    Unreachable(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Fault(m) => write!(f, "composite execution faulted: {m}"),
            ExecError::Timeout => write!(f, "composite execution timed out"),
            ExecError::Unreachable(m) => write!(f, "composite service unreachable: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The payload of a [`kinds::NOTIFY`] message: label + instance + the
/// sender's current variable set.
#[derive(Debug, Clone, PartialEq)]
pub struct NotifyPayload {
    /// Encoded notification label.
    pub label: String,
    /// The instance this notification belongs to.
    pub instance: InstanceId,
    /// Variables at the sender (receivers merge).
    pub vars: BTreeMap<String, Value>,
}

impl NotifyPayload {
    /// XML form.
    pub fn to_xml(&self) -> Element {
        let mut vars_msg = MessageDoc::request("vars");
        for (k, v) in &self.vars {
            vars_msg.set(k, v.clone());
        }
        Element::new("notification")
            .with_attr("label", &self.label)
            .with_attr("instance", self.instance.to_string())
            .with_child(vars_msg.to_xml())
    }

    /// Decodes the XML form.
    pub fn from_xml(e: &Element) -> Result<Self, String> {
        if e.name != "notification" {
            return Err(format!("expected <notification>, got <{}>", e.name));
        }
        let vars = match e.find("message") {
            Some(m) => MessageDoc::from_xml(m)
                .map_err(|e| e.to_string())?
                .into_params(),
            None => BTreeMap::new(),
        };
        Ok(NotifyPayload {
            label: e.require_attr("label")?.to_string(),
            instance: InstanceId::decode(e.require_attr("instance")?)?,
            vars,
        })
    }
}

/// Builds the body of a fault report.
pub fn fault_body(instance: InstanceId, state: &str, reason: &str) -> Element {
    Element::new("fault")
        .with_attr("instance", instance.to_string())
        .with_attr("state", state)
        .with_attr("reason", reason)
}

/// Builds the body of a cleanup broadcast.
pub fn cleanup_body(instance: InstanceId) -> Element {
    Element::new("cleanup").with_attr("instance", instance.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_id_round_trip() {
        let id = InstanceId(42);
        assert_eq!(id.to_string(), "i42");
        assert_eq!(InstanceId::decode("i42").unwrap(), id);
        assert!(InstanceId::decode("42").is_err());
        assert!(InstanceId::decode("ix").is_err());
    }

    #[test]
    fn naming_conventions() {
        use selfserv_statechart::StateId;
        assert_eq!(
            naming::wrapper("Travel Planning").as_str(),
            "travel-planning.wrapper"
        );
        assert_eq!(
            naming::coordinator("Travel Planning", &StateId::new("AB")).as_str(),
            "travel-planning.coord.AB"
        );
        assert_eq!(
            naming::service_host("Car Rental").as_str(),
            "svc.car-rental"
        );
        assert_eq!(
            naming::community("AccommodationBooking").as_str(),
            "community.accommodationbooking"
        );
        assert_eq!(naming::central("X").as_str(), "x.central");
    }

    #[test]
    fn notify_payload_round_trip() {
        let mut vars = BTreeMap::new();
        vars.insert("destination".to_string(), Value::str("Sydney"));
        vars.insert("price".to_string(), Value::Float(120.5));
        let p = NotifyPayload {
            label: "done:AB".into(),
            instance: InstanceId(7),
            vars,
        };
        let back = NotifyPayload::from_xml(&p.to_xml()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn notify_payload_without_vars() {
        let p = NotifyPayload {
            label: "start".into(),
            instance: InstanceId(1),
            vars: BTreeMap::new(),
        };
        let back = NotifyPayload::from_xml(&p.to_xml()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn fault_and_cleanup_bodies() {
        let f = fault_body(InstanceId(3), "AB", "no rooms");
        assert_eq!(f.attr("instance"), Some("i3"));
        assert_eq!(f.attr("reason"), Some("no rooms"));
        let c = cleanup_body(InstanceId(3));
        assert_eq!(c.attr("instance"), Some("i3"));
    }

    #[test]
    fn exec_error_display() {
        assert!(ExecError::Fault("x".into()).to_string().contains("x"));
        assert!(ExecError::Timeout.to_string().contains("timed out"));
    }
}
