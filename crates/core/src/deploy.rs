//! The service deployer: from a statechart to a running peer-to-peer
//! deployment.
//!
//! "This process takes as input the XML description of the composite
//! service and involves two steps: (i) generating the control-flow routing
//! tables of each state of the composite service statechart, and (ii)
//! uploading these tables into the hosts of the component services."
//! Here "uploading" spawns a coordinator actor per basic state, co-located
//! with its service backend, plus the composite wrapper.
//!
//! Deployment is transport-wide, not process-wide: task bindings resolve
//! against every name the transport can route to, so on a `TcpTransport`
//! hub running `selfserv-discovery`, a composite deployed in one process
//! binds to communities and services hosted in *other* processes given
//! nothing but the seed address that joined the hub to the network (the
//! coordinators' community rpcs then cross process boundaries like any
//! named send). `tests/discovery.rs` deploys exactly that way.

use crate::backend::ServiceBackend;
use crate::coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle, TaskRuntime};
use crate::functions::FunctionLibrary;
use crate::protocol::{kinds, naming, ExecError, InstanceId, PersistentClient};
use crate::wrapper::{CompositeWrapper, WrapperConfig, WrapperHandle};
use selfserv_net::{
    ConnectError, Endpoint, Envelope, LivenessProbe, MessageId, NodeId, RecvError, RpcError,
    SendError, Transport, TransportHandle,
};
use selfserv_routing::{NotificationLabel, RoutingError, RoutingPlan};
use selfserv_runtime::ExecutorHandle;
use selfserv_statechart::{ServiceBinding, StateId, StateKind, Statechart};
use selfserv_wsdl::MessageDoc;
use selfserv_xml::Element;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors raised while deploying a composite service.
#[derive(Debug)]
pub enum DeploymentError {
    /// Routing-table generation failed (includes validation failures).
    Routing(RoutingError),
    /// A task state references a service with no registered backend.
    MissingBackend {
        /// The state.
        state: StateId,
        /// The unresolved service name.
        service: String,
    },
    /// A task state references a community whose node is not visible on
    /// the transport — neither connected locally nor learned from a peer
    /// process (via `register_peer` or a `selfserv-discovery`
    /// handshake/gossip round). On a freshly seeded hub this can simply
    /// mean gossip has not converged yet: wait for the community's name
    /// (e.g. `DiscoveryHandle::wait_until_bound`) and retry, or set
    /// [`Deployer::allow_missing_communities`].
    MissingCommunity {
        /// The state.
        state: StateId,
        /// The unresolved community name.
        community: String,
    },
    /// An actor could not connect its node: a name collision (composite
    /// already deployed?) or a transport provisioning failure (e.g. a TCP
    /// listener bind error) — see [`ConnectError`] for which.
    Connect(ConnectError),
}

impl fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentError::Routing(e) => write!(f, "routing generation failed: {e}"),
            DeploymentError::MissingBackend { state, service } => {
                write!(
                    f,
                    "state '{state}': no backend registered for service '{service}'"
                )
            }
            DeploymentError::MissingCommunity { state, community } => {
                write!(
                    f,
                    "state '{state}': community '{community}' is not on the fabric"
                )
            }
            DeploymentError::Connect(ConnectError::NameTaken(n)) => {
                write!(
                    f,
                    "node '{n}' already connected — composite already deployed?"
                )
            }
            DeploymentError::Connect(e) => {
                write!(f, "could not connect an actor's node: {e}")
            }
        }
    }
}

impl std::error::Error for DeploymentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeploymentError::Connect(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RoutingError> for DeploymentError {
    fn from(e: RoutingError) -> Self {
        DeploymentError::Routing(e)
    }
}

impl From<ConnectError> for DeploymentError {
    fn from(e: ConnectError) -> Self {
        DeploymentError::Connect(e)
    }
}

/// The service deployer.
pub struct Deployer {
    net: TransportHandle,
    /// `None` until [`Deployer::with_executor`]: the process-wide shared
    /// executor is resolved lazily at deploy time, so a deployer pinned to
    /// an explicit pool never instantiates the shared one as a side
    /// effect.
    exec: Option<ExecutorHandle>,
    functions: FunctionLibrary,
    /// Deadline for community invocations made by coordinators.
    pub invoke_timeout: Duration,
    /// Idle-instance TTL for coordinators and wrappers.
    pub instance_ttl: Duration,
    /// When set, community bindings may point at nodes that are not yet
    /// connected (they must come up before execution).
    pub allow_missing_communities: bool,
    monitor: Option<NodeId>,
    liveness: Option<Arc<dyn LivenessProbe>>,
}

impl Deployer {
    /// A deployer over `net` (any [`Transport`]) with no guard functions;
    /// coordinators and the wrapper are scheduled on the process-wide
    /// shared executor.
    pub fn new(net: &dyn Transport) -> Self {
        Deployer {
            net: net.handle(),
            exec: None,
            functions: FunctionLibrary::new(),
            invoke_timeout: Duration::from_secs(10),
            instance_ttl: Duration::from_secs(120),
            allow_missing_communities: false,
            monitor: None,
            liveness: None,
        }
    }

    /// Builder: schedule every spawned coordinator and wrapper on an
    /// explicit executor instead of the shared one — the knob scale tests
    /// use to pin a whole deployment onto a fixed worker pool.
    pub fn with_executor(mut self, exec: ExecutorHandle) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Builder: every coordinator and the wrapper report trace events to
    /// this [`crate::ExecutionMonitor`] node.
    pub fn with_monitor(mut self, monitor: NodeId) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Builder: supplies the guard-function library distributed to all
    /// actors.
    pub fn with_functions(mut self, functions: FunctionLibrary) -> Self {
        self.functions = functions;
        self
    }

    /// Builder: hands coordinators a failure-detector view (e.g.
    /// [`selfserv_net::PeerDirectory`] from the hub's discovery node) so
    /// community replica routing skips evicted replicas and deprioritizes
    /// suspected ones.
    pub fn with_liveness(mut self, liveness: Arc<dyn LivenessProbe>) -> Self {
        self.liveness = Some(liveness);
        self
    }

    /// Deploys a composite service: validates, generates routing tables,
    /// spawns one coordinator per basic state (each holding its co-located
    /// backend) and the composite wrapper.
    ///
    /// `backends` maps *service names* (as referenced by task bindings) to
    /// their application logic.
    pub fn deploy(
        &self,
        statechart: &Statechart,
        backends: &HashMap<String, Arc<dyn ServiceBackend>>,
    ) -> Result<Deployment, DeploymentError> {
        let plan = selfserv_routing::generate(statechart)?;
        let exec = self
            .exec
            .clone()
            .unwrap_or_else(|| selfserv_runtime::shared().clone());

        // Resolve every task binding before spawning anything.
        let mut runtimes: HashMap<StateId, TaskRuntime> = HashMap::new();
        for state in statechart.states() {
            match &state.kind {
                StateKind::Choice => {
                    runtimes.insert(state.id.clone(), TaskRuntime::None);
                }
                StateKind::Task(spec) => {
                    let runtime = match &spec.binding {
                        ServiceBinding::Service { service, operation } => {
                            let backend = backends.get(service).cloned().ok_or_else(|| {
                                DeploymentError::MissingBackend {
                                    state: state.id.clone(),
                                    service: service.clone(),
                                }
                            })?;
                            TaskRuntime::Local {
                                backend,
                                operation: operation.clone(),
                                inputs: spec.inputs.clone(),
                                outputs: spec.outputs.clone(),
                            }
                        }
                        ServiceBinding::Community {
                            community,
                            operation,
                        } => {
                            let node = naming::community(community);
                            if !self.allow_missing_communities
                                && !self.net.is_connected(node.as_str())
                            {
                                return Err(DeploymentError::MissingCommunity {
                                    state: state.id.clone(),
                                    community: community.clone(),
                                });
                            }
                            // Replica discovery: probe the conventional
                            // replica names (`community.<name>.rN`) against
                            // everything the transport can route to — over
                            // TCP that is the hub's gossiped directory, so
                            // replicas hosted by *other* hubs count the
                            // moment discovery delivers their binding — and
                            // hand coordinators the full set so they spread
                            // instances over it. The scan tolerates gaps (a
                            // crashed or not-yet-gossiped middle replica
                            // must not hide the survivors behind it), giving
                            // up after a run of consecutive misses.
                            const REPLICA_PROBE_GAP: usize = 4;
                            let mut replicas = vec![node.clone()];
                            let mut misses = 0;
                            for i in 1.. {
                                let replica = naming::community_replica(community, i);
                                if self.net.is_connected(replica.as_str()) {
                                    misses = 0;
                                    replicas.push(replica);
                                } else {
                                    misses += 1;
                                    if misses >= REPLICA_PROBE_GAP {
                                        break;
                                    }
                                }
                            }
                            if replicas.len() == 1 {
                                replicas.clear(); // unreplicated: legacy routing
                            }
                            TaskRuntime::Community {
                                node,
                                replicas,
                                operation: operation.clone(),
                                inputs: spec.inputs.clone(),
                                outputs: spec.outputs.clone(),
                            }
                        }
                    };
                    runtimes.insert(state.id.clone(), runtime);
                }
                _ => {}
            }
        }

        // Event subscriptions: states whose preconditions await an Event
        // label get event notifications from the wrapper.
        let mut event_subscribers: Vec<(String, StateId)> = Vec::new();
        for table in plan.tables.values() {
            for pre in &table.preconditions {
                for label in &pre.labels {
                    if let NotificationLabel::Event(name) = label {
                        let pair = (name.clone(), table.state.clone());
                        if !event_subscribers.contains(&pair) {
                            event_subscribers.push(pair);
                        }
                    }
                }
            }
        }

        // "Upload" the tables: spawn coordinators.
        let mut coordinators = Vec::with_capacity(plan.tables.len());
        for (state_id, table) in &plan.tables {
            let task = runtimes.remove(state_id).unwrap_or(TaskRuntime::None);
            let cfg = CoordinatorConfig {
                composite: statechart.name.clone(),
                state: state_id.clone(),
                table: table.clone(),
                task,
                functions: self.functions.clone(),
                invoke_timeout: self.invoke_timeout,
                instance_ttl: self.instance_ttl,
                monitor: self.monitor.clone(),
                liveness: self.liveness.clone(),
            };
            let handle = Coordinator::spawn_on(&*self.net, &exec, cfg)?;
            coordinators.push(handle);
        }

        // Spawn the wrapper last so coordinators are ready for Start
        // notifications.
        let wrapper = CompositeWrapper::spawn_on(
            &*self.net,
            &exec,
            WrapperConfig {
                composite: statechart.name.clone(),
                table: plan.wrapper.clone(),
                functions: self.functions.clone(),
                variables: statechart.variables.clone(),
                event_subscribers,
                instance_ttl: self.instance_ttl,
                monitor: self.monitor.clone(),
            },
        )?;

        Ok(Deployment {
            composite: statechart.name.clone(),
            wrapper_node: wrapper.node().clone(),
            plan,
            coordinators,
            wrapper: Some(wrapper),
            // One persistent client node carries every execute/raise_event
            // of this deployment (connected lazily on first use).
            client: PersistentClient::new(&*self.net, "client"),
        })
    }
}

/// A running composite service: the handle end users execute operations
/// through (Figure 3's Execute button).
pub struct Deployment {
    composite: String,
    wrapper_node: NodeId,
    plan: RoutingPlan,
    coordinators: Vec<CoordinatorHandle>,
    wrapper: Option<WrapperHandle>,
    client: PersistentClient,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("composite", &self.composite)
            .field("coordinators", &self.coordinators.len())
            .finish()
    }
}

impl Deployment {
    /// The composite service's name.
    pub fn composite(&self) -> &str {
        &self.composite
    }

    /// The wrapper's fabric node (the published binding endpoint).
    pub fn wrapper_node(&self) -> &NodeId {
        &self.wrapper_node
    }

    /// The generated routing plan (for inspection and experiment metrics).
    pub fn plan(&self) -> &RoutingPlan {
        &self.plan
    }

    /// Number of coordinators deployed.
    pub fn coordinator_count(&self) -> usize {
        self.coordinators.len()
    }

    /// Executes the composite operation from the deployment's persistent
    /// client node (concurrent executes demultiplex on its endpoint; no
    /// per-call endpoint is created).
    pub fn execute(&self, input: MessageDoc, timeout: Duration) -> Result<MessageDoc, ExecError> {
        decode_execute_reply(self.client.sender().rpc(
            self.wrapper_node.clone(),
            kinds::EXECUTE,
            input.to_xml(),
            timeout,
        ))
    }

    /// Fires an execution without waiting for it: sends the request from
    /// the deployment's persistent client and returns the request id
    /// immediately — **no thread blocks** while the instance runs.
    /// Collect completions with [`Deployment::collect_result`], matching
    /// them to submissions by id.
    ///
    /// This is the client half of the platform's thread-free pipeline:
    /// with coordinators carrying invocations continuation-passing, a
    /// caller can keep thousands of instances in flight from one thread
    /// (see the scaling walkthrough in the README and
    /// `tests/runtime_scale.rs`).
    ///
    /// **Every submission must eventually be collected.** Results queue
    /// in the deployment client's mailbox until
    /// [`Deployment::collect_result`] drains them — an uncollected
    /// completion (including the fault the wrapper's TTL sweep sends for
    /// an abandoned instance) stays queued for the deployment's lifetime.
    /// For genuine fire-and-forget, use [`Deployment::execute`] from a
    /// throwaway thread, or collect-and-ignore.
    pub fn submit(&self, input: MessageDoc) -> Result<MessageId, SendError> {
        self.client
            .sender()
            .send(self.wrapper_node.clone(), kinds::EXECUTE, input.to_xml())
    }

    /// Receives the next completed submission: the request id it answers
    /// and the decoded outcome. Completions arrive in finish order, not
    /// submit order. Returns `Err(RecvError::Timeout)` when nothing
    /// completes within `timeout`; unrelated traffic on the client mailbox
    /// is skipped.
    pub fn collect_result(
        &self,
        timeout: Duration,
    ) -> Result<(MessageId, Result<MessageDoc, ExecError>), RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let env = self.client.recv_timeout(remaining)?;
            if env.kind != kinds::EXECUTE_RESULT {
                continue;
            }
            let Some(request) = env.correlation else {
                continue;
            };
            return Ok((request, decode_execute_reply(Ok(env))));
        }
    }

    /// Executes the composite operation from a specific endpoint (so fabric
    /// metrics attribute the call to the caller).
    pub fn execute_from(
        &self,
        client: &Endpoint,
        input: MessageDoc,
        timeout: Duration,
    ) -> Result<MessageDoc, ExecError> {
        decode_execute_reply(client.rpc(
            self.wrapper_node.clone(),
            kinds::EXECUTE,
            input.to_xml(),
            timeout,
        ))
    }

    /// Raises an external ECA event: `instance = None` broadcasts to every
    /// live instance.
    pub fn raise_event(&self, name: &str, instance: Option<InstanceId>) {
        let body = Element::new("event").with_attr("name", name).with_attr(
            "instance",
            instance.map_or("all".to_string(), |i| i.to_string()),
        );
        // The wrapper acks events (so rpc-style raisers don't block);
        // discard the ack instead of letting it queue in the client's
        // never-drained mailbox.
        let _ = self.client.sender().send_discard_reply(
            self.wrapper_node.clone(),
            kinds::RAISE_EVENT,
            body,
        );
    }

    /// Tears the deployment down (stops wrapper and coordinators).
    pub fn undeploy(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        if let Some(w) = self.wrapper.take() {
            w.stop();
        }
        for c in self.coordinators.drain(..) {
            c.stop();
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.stop_all();
    }
}

/// Decodes an execute rpc outcome into the operation's response document.
pub(crate) fn decode_execute_reply(
    reply: Result<Envelope, RpcError>,
) -> Result<MessageDoc, ExecError> {
    let reply = reply.map_err(|e| match e {
        RpcError::Timeout => ExecError::Timeout,
        RpcError::Send(s) => ExecError::Unreachable(s.to_string()),
    })?;
    let msg = MessageDoc::from_xml(&reply.body)
        .map_err(|e| ExecError::Unreachable(format!("malformed reply: {e}")))?;
    if msg.is_fault() {
        return Err(ExecError::Fault(
            msg.fault_reason().unwrap_or("unspecified").to_string(),
        ));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EchoService, FailingService, SyntheticService};
    use selfserv_expr::Value;
    use selfserv_net::{Network, NetworkConfig};
    use selfserv_statechart::synth;
    use selfserv_statechart::{StatechartBuilder, TaskDef, TransitionDef};
    use selfserv_wsdl::ParamType;

    fn synth_backends(n: usize) -> HashMap<String, Arc<dyn ServiceBackend>> {
        let mut map: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        for i in 0..n {
            let name = synth::synth_service_name(i);
            map.insert(name.clone(), Arc::new(EchoService::new(name)));
        }
        map
    }

    #[test]
    fn deploy_and_execute_sequence() {
        let net = Network::new(NetworkConfig::instant());
        let dep = Deployer::new(&net)
            .deploy(&synth::sequence(4), &synth_backends(4))
            .unwrap();
        assert_eq!(dep.coordinator_count(), 4);
        let input = MessageDoc::request("execute").with("payload", Value::str("hello"));
        let out = dep.execute(input, Duration::from_secs(5)).unwrap();
        assert_eq!(out.get_str("payload"), Some("hello"));
        assert!(out.get("_elapsed_ms").is_some());
    }

    #[test]
    fn sequence_messages_flow_peer_to_peer() {
        let net = Network::new(NetworkConfig::instant());
        let dep = Deployer::new(&net)
            .deploy(&synth::sequence(5), &synth_backends(5))
            .unwrap();
        net.reset_metrics();
        dep.execute(
            MessageDoc::request("execute").with("payload", Value::str("x")),
            Duration::from_secs(5),
        )
        .unwrap();
        let m = net.metrics();
        // The wrapper sends Start + 5 cleanups and receives 1 completion;
        // each intermediate coordinator handles ~1 in + 1 out. No node is a
        // hotspot proportional to chart size.
        let wrapper = m.node("synthseq5.wrapper").unwrap();
        // The wrapper receives the execute request plus the single final
        // notification; intermediate control flow never touches it.
        assert_eq!(wrapper.received, 2);
        let c0 = m.node("synthseq5.coord.s0").unwrap();
        assert_eq!(c0.sent, 1, "s0 notifies s1 only");
    }

    #[test]
    fn xor_takes_exactly_one_branch() {
        let net = Network::new(NetworkConfig::instant());
        let mut backends = synth_backends(3);
        let counters: Vec<Arc<SyntheticService>> = (0..3)
            .map(|i| Arc::new(SyntheticService::new(format!("S{i}"))))
            .collect();
        for (i, c) in counters.iter().enumerate() {
            backends.insert(
                synth::synth_service_name(i),
                Arc::clone(c) as Arc<dyn ServiceBackend>,
            );
        }
        let dep = Deployer::new(&net)
            .deploy(&synth::xor_choice(3), &backends)
            .unwrap();
        let input = MessageDoc::request("execute")
            .with("payload", Value::str("p"))
            .with("branch", Value::Int(1));
        dep.execute(input, Duration::from_secs(5)).unwrap();
        assert_eq!(counters[0].invocation_count(), 0);
        assert_eq!(counters[1].invocation_count(), 1);
        assert_eq!(counters[2].invocation_count(), 0);
    }

    #[test]
    fn parallel_joins_all_regions() {
        let net = Network::new(NetworkConfig::instant());
        let mut backends = HashMap::new();
        let counters: Vec<Arc<SyntheticService>> = (0..3)
            .map(|i| Arc::new(SyntheticService::new(format!("S{i}"))))
            .collect();
        for (i, c) in counters.iter().enumerate() {
            backends.insert(
                synth::synth_service_name(i),
                Arc::clone(c) as Arc<dyn ServiceBackend>,
            );
        }
        let dep = Deployer::new(&net)
            .deploy(&synth::parallel(3), &backends)
            .unwrap();
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("p")),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(out.get_str("payload"), Some("p"));
        // Every region ran exactly once before the AND-join released.
        for c in &counters {
            assert_eq!(c.invocation_count(), 1);
        }
    }

    #[test]
    fn nested_compound_executes() {
        let net = Network::new(NetworkConfig::instant());
        let dep = Deployer::new(&net)
            .deploy(&synth::nested(3), &synth_backends(1))
            .unwrap();
        dep.execute(
            MessageDoc::request("execute").with("payload", Value::str("p")),
            Duration::from_secs(5),
        )
        .unwrap();
    }

    #[test]
    fn ladder_executes() {
        let net = Network::new(NetworkConfig::instant());
        let dep = Deployer::new(&net)
            .deploy(&synth::ladder(3, 2), &synth_backends(6))
            .unwrap();
        dep.execute(
            MessageDoc::request("execute").with("payload", Value::str("p")),
            Duration::from_secs(5),
        )
        .unwrap();
    }

    #[test]
    fn missing_backend_rejected() {
        let net = Network::new(NetworkConfig::instant());
        let err = Deployer::new(&net)
            .deploy(&synth::sequence(2), &synth_backends(1))
            .unwrap_err();
        assert!(
            matches!(err, DeploymentError::MissingBackend { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_community_rejected() {
        let net = Network::new(NetworkConfig::instant());
        let sc = StatechartBuilder::new("NeedsCommunity")
            .variable("x", ParamType::Str)
            .initial("a")
            .task(TaskDef::new("a", "A").community("GhostCommunity", "op"))
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "f"))
            .build()
            .unwrap();
        let err = Deployer::new(&net)
            .deploy(&sc, &HashMap::new())
            .unwrap_err();
        assert!(
            matches!(err, DeploymentError::MissingCommunity { .. }),
            "{err}"
        );
    }

    #[test]
    fn double_deploy_collides() {
        let net = Network::new(NetworkConfig::instant());
        let _dep = Deployer::new(&net)
            .deploy(&synth::sequence(1), &synth_backends(1))
            .unwrap();
        let err = Deployer::new(&net)
            .deploy(&synth::sequence(1), &synth_backends(1))
            .unwrap_err();
        match &err {
            DeploymentError::Connect(e) => assert!(e.is_name_taken(), "{err}"),
            other => panic!("expected connect error, got {other}"),
        }
        assert!(err.to_string().contains("already deployed"), "{err}");
    }

    #[test]
    fn undeploy_frees_nodes() {
        let net = Network::new(NetworkConfig::instant());
        let dep = Deployer::new(&net)
            .deploy(&synth::sequence(1), &synth_backends(1))
            .unwrap();
        assert!(net.is_connected("synthseq1.wrapper"));
        dep.undeploy();
        assert!(!net.is_connected("synthseq1.wrapper"));
        assert!(!net.is_connected("synthseq1.coord.s0"));
        // Redeploy works after teardown.
        let _dep2 = Deployer::new(&net)
            .deploy(&synth::sequence(1), &synth_backends(1))
            .unwrap();
    }

    #[test]
    fn failing_backend_faults_execution() {
        let net = Network::new(NetworkConfig::instant());
        let mut backends = synth_backends(2);
        backends.insert(
            synth::synth_service_name(1),
            Arc::new(FailingService::new("S1", "no inventory")),
        );
        let dep = Deployer::new(&net)
            .deploy(&synth::sequence(2), &backends)
            .unwrap();
        let err = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("p")),
                Duration::from_secs(5),
            )
            .unwrap_err();
        match err {
            ExecError::Fault(reason) => assert!(reason.contains("no inventory"), "{reason}"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    /// A task state bound to a community: `name` must match the chart's
    /// community binding.
    fn community_chart(name: &str) -> Statechart {
        StatechartBuilder::new(format!("Via {name}"))
            .variable("payload", ParamType::Str)
            .variable("served_by", ParamType::Str)
            .initial("a")
            .task(
                TaskDef::new("a", "A")
                    .community(name, "op")
                    .input("payload", "payload")
                    .output("echoed_by", "served_by"),
            )
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "f"))
            .build()
            .unwrap()
    }

    #[test]
    fn redirect_mode_community_is_invoked_through_the_member() {
        use crate::backend::{EchoService, ServiceHost};
        let net = Network::new(NetworkConfig::instant());
        let _member =
            ServiceHost::spawn(&net, "svc.member", Arc::new(EchoService::new("Member"))).unwrap();
        // A redirect-mode community stand-in on a bare endpoint: answers
        // every invoke with the member's binding, so the coordinator's
        // second await (the redirected direct invocation) is exercised.
        let comm = net.connect("community.redirecting").unwrap();
        let comm_thread = std::thread::spawn(move || {
            while let Ok(req) = comm.recv() {
                match req.kind.as_str() {
                    "community.invoke" => {
                        let _ = comm.reply(
                            &req,
                            "community.redirect",
                            Element::new("redirect").with_attr("endpoint", "svc.member"),
                        );
                    }
                    "stop" => return,
                    _ => {}
                }
            }
        });
        let dep = Deployer::new(&net)
            .deploy(&community_chart("redirecting"), &HashMap::new())
            .unwrap();
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("x")),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(out.get_str("served_by"), Some("Member"));
        assert_eq!(out.get_str("payload"), Some("x"));
        dep.undeploy();
        net.connect("stopper")
            .unwrap()
            .send("community.redirecting", "stop", Element::new("s"))
            .unwrap();
        comm_thread.join().unwrap();
    }

    #[test]
    fn unreachable_and_silent_communities_fault_the_instance() {
        // Unreachable: the community node never comes up.
        let net = Network::new(NetworkConfig::instant());
        let mut deployer = Deployer::new(&net);
        deployer.allow_missing_communities = true;
        let dep = deployer
            .deploy(&community_chart("ghost"), &HashMap::new())
            .unwrap();
        let err = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("x")),
                Duration::from_secs(5),
            )
            .unwrap_err();
        match err {
            ExecError::Fault(reason) => assert!(reason.contains("unreachable"), "{reason}"),
            other => panic!("expected fault, got {other:?}"),
        }
        dep.undeploy();

        // Silent: connected but never replies — the rpc deadline faults
        // the instance instead of wedging it.
        let _mute = net.connect("community.mute").unwrap();
        let mut deployer = Deployer::new(&net);
        deployer.invoke_timeout = Duration::from_millis(100);
        let dep = deployer
            .deploy(&community_chart("mute"), &HashMap::new())
            .unwrap();
        let err = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("x")),
                Duration::from_secs(5),
            )
            .unwrap_err();
        match err {
            ExecError::Fault(reason) => assert!(reason.contains("timed out"), "{reason}"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn submit_and_collect_round_trip_without_blocking() {
        let net = Network::new(NetworkConfig::instant());
        let dep = Deployer::new(&net)
            .deploy(&synth::sequence(2), &synth_backends(2))
            .unwrap();
        // Fire-and-collect: nothing blocks between the submits.
        let mut expected = HashMap::new();
        for i in 0..8 {
            let id = dep
                .submit(MessageDoc::request("execute").with("payload", Value::str(format!("p{i}"))))
                .unwrap();
            expected.insert(id, format!("p{i}"));
        }
        for _ in 0..8 {
            let (id, outcome) = dep.collect_result(Duration::from_secs(5)).unwrap();
            let out = outcome.unwrap();
            let want = expected
                .remove(&id)
                .expect("completion matches a submission");
            assert_eq!(out.get_str("payload"), Some(want.as_str()));
        }
        assert!(expected.is_empty(), "every submission completed");
        // Nothing further arrives once the backlog is drained.
        assert!(dep.collect_result(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn concurrent_instances_are_isolated() {
        let net = Network::new(NetworkConfig::instant());
        let dep = Deployer::new(&net)
            .deploy(&synth::sequence(3), &synth_backends(3))
            .unwrap();
        let dep = Arc::new(dep);
        let mut handles = Vec::new();
        for i in 0..8 {
            let dep = Arc::clone(&dep);
            handles.push(std::thread::spawn(move || {
                let input =
                    MessageDoc::request("execute").with("payload", Value::str(format!("p{i}")));
                let out = dep.execute(input, Duration::from_secs(10)).unwrap();
                assert_eq!(out.get_str("payload"), Some(format!("p{i}").as_str()));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn executions_work_under_network_latency() {
        let net = Network::new(NetworkConfig::lan());
        let dep = Deployer::new(&net)
            .deploy(&synth::parallel(2), &synth_backends(2))
            .unwrap();
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("p")),
                Duration::from_secs(10),
            )
            .unwrap();
        assert!(out.get("_elapsed_ms").is_some());
    }
}
