//! The discovery node: one `NodeLogic` state machine per hub that
//! handshakes seeds, gossips directory state, and detects dead peers.

use crate::{DiscoveryConfig, DiscoveryStats, EventLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfserv_net::directory::{entry_from_xml, entry_to_xml};
use selfserv_net::gossip::payload_sections;
use selfserv_net::{
    DirectoryEntry, Envelope, HubId, LivenessEvent, NodeId, PeerDirectory, PeerStatus,
    TcpTransport, LIVENESS_KIND,
};
use selfserv_runtime::{Flow, NodeCtx, NodeLogic, TimerToken};
use selfserv_xml::Element;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Message kinds of the discovery protocol. All bodies are `<directory>`
/// elements (hub id + sender's disc node + zero or more `<entry>` rows)
/// except ping/pong, which carry only the header.
pub mod kinds {
    /// First-contact greeting to a seed address: full snapshot, answered
    /// by [`WELCOME`].
    pub const HELLO: &str = "discovery.hello";
    /// Handshake answer: the seed's full snapshot.
    pub const WELCOME: &str = "discovery.welcome";
    /// Periodic anti-entropy push: full snapshot, answered by [`DELTA`]
    /// when the receiver holds fresher rows.
    pub const SYNC: &str = "discovery.sync";
    /// Anti-entropy pull half: exactly the rows the [`SYNC`] sender was
    /// missing.
    pub const DELTA: &str = "discovery.delta";
    /// Heartbeat probe.
    pub const PING: &str = "discovery.ping";
    /// Heartbeat answer.
    pub const PONG: &str = "discovery.pong";
    /// Deterministic clock injection: runs one gossip round and one
    /// failure-detection sweep immediately, exactly as if both timers had
    /// fired (without re-arming them). Chaos and convergence tests use
    /// this to step discovery at a controlled cadence instead of racing
    /// wall-clock timers. Carries no body.
    pub const TICK: &str = "discovery.tick";
}

/// The canonical name of a hub's discovery node. The prefix doubles as
/// the peer-detection convention: a directory entry named
/// `disc.<owner-id>` *is* that owner's discovery endpoint.
pub fn disc_node_name(hub: HubId) -> NodeId {
    NodeId::new(format!("disc.{hub}"))
}

const GOSSIP_TIMER: TimerToken = TimerToken(1);
const SWEEP_TIMER: TimerToken = TimerToken(2);

/// Live reasserts of one name before the sweep reports a cross-hub
/// conflict. One or two are normal during eviction recovery races; a
/// count that reaches this within the conflict window means another hub
/// keeps claiming a name that is alive here.
const CONFLICT_THRESHOLD: u64 = 3;

/// One exchange's worth of directory rows.
type DirectoryRows = Vec<(NodeId, DirectoryEntry)>;

/// What this hub knows about one peer hub's discovery endpoint.
struct PeerState {
    disc: NodeId,
    last_heard: Instant,
    suspected: bool,
}

/// The per-hub discovery state machine. Spawn through
/// [`crate::PeerDiscovery`]; the type is public for documentation, not
/// for direct construction.
pub struct DiscoveryNode {
    hub: TcpTransport,
    directory: PeerDirectory,
    config: DiscoveryConfig,
    /// Seeds that have not answered yet; re-greeted every gossip tick
    /// (covers seeds that start after us).
    pending_seeds: Vec<SocketAddr>,
    peers: HashMap<HubId, PeerState>,
    events: Arc<EventLog>,
    stats: Arc<DiscoveryStats>,
    rng: StdRng,
}

impl DiscoveryNode {
    pub(crate) fn new(
        hub: TcpTransport,
        config: DiscoveryConfig,
        events: Arc<EventLog>,
        stats: Arc<DiscoveryStats>,
    ) -> DiscoveryNode {
        let directory = hub.directory();
        let rng_seed = config.rng_seed.unwrap_or(hub.hub_id().0);
        let pending_seeds = config.seeds.clone();
        DiscoveryNode {
            hub,
            directory,
            config,
            pending_seeds,
            peers: HashMap::new(),
            events,
            stats,
            rng: StdRng::seed_from_u64(rng_seed),
        }
    }

    /// Encodes a set of directory rows under this node's header.
    fn directory_body(&self, ctx: &NodeCtx<'_>, rows: &[(NodeId, DirectoryEntry)]) -> Element {
        Element::new("directory")
            .with_attr("hub", self.directory.hub().to_string())
            .with_attr("disc", ctx.node().as_str())
            .with_children(rows.iter().map(|(n, e)| entry_to_xml(n, e)))
    }

    /// Appends every registered gossip payload's snapshot to an outgoing
    /// full-state exchange (`<payload>` sections ride as siblings of the
    /// `<entry>` rows, which the directory decoder ignores).
    fn attach_payloads(&self, body: Element) -> Element {
        if self.config.payloads.is_empty() {
            return body;
        }
        body.with_children(self.config.payloads.snapshots())
    }

    /// Greets every unanswered seed with a full-snapshot hello. Send
    /// failures are expected (the seed may not be up yet) and retried on
    /// the next tick.
    fn greet_pending_seeds(&mut self, ctx: &NodeCtx<'_>) {
        if self.pending_seeds.is_empty() {
            return;
        }
        // A seed is answered once some known disc entry resolves to it.
        let answered: Vec<SocketAddr> = self
            .peers
            .values()
            .filter_map(|p| self.directory.lookup(&p.disc))
            .collect();
        let own = self.directory.lookup(ctx.node());
        self.pending_seeds
            .retain(|s| !answered.contains(s) && Some(*s) != own);
        let body = self.attach_payloads(self.directory_body(ctx, &self.directory.snapshot()));
        // Greeting may target hubs that are down (that is the point of
        // retrying), but sends no longer block on the socket: they enqueue
        // on the destination's connection writer and return, so even a
        // seed that blackholes its SYNs costs this worker nothing — the
        // connect timeout is the writer thread's problem.
        for seed in &self.pending_seeds {
            let _ = self
                .hub
                .send_to_addr(*seed, ctx.node(), kinds::HELLO, body.clone());
        }
    }

    /// Records life from a peer hub, creating its state on first contact
    /// and clearing suspicion (with an `Alive` event) when it speaks
    /// again.
    fn note_heard(&mut self, ctx: &NodeCtx<'_>, hub: HubId, disc: NodeId) {
        if hub == self.directory.hub() || hub == HubId::UNKNOWN {
            return;
        }
        let peer = self.peers.entry(hub).or_insert_with(|| PeerState {
            disc: disc.clone(),
            last_heard: Instant::now(),
            suspected: false,
        });
        peer.disc = disc;
        peer.last_heard = Instant::now();
        if peer.suspected {
            peer.suspected = false;
            let names = self.directory.set_suspected(hub, false);
            self.emit(
                Some(ctx),
                LivenessEvent {
                    hub,
                    status: PeerStatus::Alive,
                    names,
                },
            );
        }
    }

    /// Merges a message's directory rows and adopts any newly learned
    /// peer discovery endpoints (transitive membership: a gossip partner's
    /// snapshot introduces hubs we have never talked to). Candidates come
    /// from the incoming rows — O(message), not a full directory rescan —
    /// and are adopted only if their entry survived the merge (our own
    /// fresher tombstone may have out-versioned a stale claim).
    fn merge_rows(&mut self, rows: DirectoryRows) {
        let me = self.directory.hub();
        let candidates: Vec<(HubId, NodeId)> = rows
            .iter()
            .filter(|(name, entry)| {
                !entry.evicted
                    && entry.owner != me
                    && !self.peers.contains_key(&entry.owner)
                    && *name == disc_node_name(entry.owner)
            })
            .map(|(name, entry)| (entry.owner, name.clone()))
            .collect();
        self.directory.merge_remote(rows);
        for (hub, disc) in candidates {
            if !self.directory.is_bound(disc.as_str()) {
                continue; // the claim lost the merge (evicted here)
            }
            self.peers.insert(
                hub,
                PeerState {
                    disc,
                    // Grace: transitively learned peers start the clock at
                    // adoption, not at zero — we have never probed them.
                    last_heard: Instant::now(),
                    suspected: false,
                },
            );
        }
    }

    /// Decodes a protocol message: sender hub, sender disc node, rows.
    fn decode(body: &Element) -> Option<(HubId, NodeId, DirectoryRows)> {
        if body.name != "directory" {
            return None;
        }
        let hub = HubId::parse(body.attr("hub")?)?;
        let disc = NodeId::new(body.attr("disc")?);
        let rows = body.child_elements().filter_map(entry_from_xml).collect();
        Some((hub, disc, rows))
    }

    /// Publishes a liveness transition: the handle's log always gets it;
    /// a configured monitor node gets a fire-and-forget envelope.
    fn emit(&self, ctx: Option<&NodeCtx<'_>>, event: LivenessEvent) {
        if let (Some(ctx), Some(monitor)) = (ctx, &self.config.monitor) {
            let _ = ctx
                .endpoint()
                .send(monitor.clone(), LIVENESS_KIND, event.to_xml());
        }
        self.events.push(event);
    }

    /// One gossip round: re-greet unanswered seeds, then push-pull the
    /// directory with `gossip_fanout` distinct random known peers.
    fn gossip(&mut self, ctx: &NodeCtx<'_>) {
        self.stats.inc_gossip();
        self.greet_pending_seeds(ctx);
        let mut candidates: Vec<NodeId> = self.peers.values().map(|p| p.disc.clone()).collect();
        if candidates.is_empty() {
            return;
        }
        // Sorted before sampling so the seeded rng draws from a stable
        // order (HashMap iteration would leak its own randomness).
        candidates.sort();
        let fanout = self.config.gossip_fanout.clamp(1, candidates.len());
        // Partial Fisher-Yates: the first `fanout` slots become a uniform
        // sample without replacement.
        for i in 0..fanout {
            let j = self.rng.gen_range(i..candidates.len());
            candidates.swap(i, j);
        }
        let body = self.attach_payloads(self.directory_body(ctx, &self.directory.snapshot()));
        for partner in candidates.into_iter().take(fanout) {
            // A silently dead partner costs nothing here: the send
            // enqueues on its connection writer and returns.
            let _ = ctx.endpoint().send(partner, kinds::SYNC, body.clone());
        }
    }

    /// One failure-detection sweep: probe the quiet, suspect the silent,
    /// evict the dead.
    fn sweep(&mut self, ctx: &NodeCtx<'_>) {
        self.stats.inc_sweep();
        let now = Instant::now();
        let mut to_ping: Vec<NodeId> = Vec::new();
        let mut to_suspect: Vec<HubId> = Vec::new();
        let mut to_evict: Vec<HubId> = Vec::new();
        for (hub, peer) in &self.peers {
            let silent = now.duration_since(peer.last_heard);
            if silent >= self.config.eviction_timeout {
                to_evict.push(*hub);
            } else if silent >= self.config.suspicion_timeout && !peer.suspected {
                to_suspect.push(*hub);
            } else if silent >= self.config.heartbeat_interval {
                to_ping.push(peer.disc.clone());
            }
        }
        // Probes target hubs that may be dead, but enqueue-and-return
        // sends make that the connection writer's problem — a blackholed
        // peer's connect timeout never touches this worker.
        for disc in to_ping {
            let _ = ctx.endpoint().send(
                disc,
                kinds::PING,
                Element::new("directory")
                    .with_attr("hub", self.directory.hub().to_string())
                    .with_attr("disc", ctx.node().as_str()),
            );
        }
        for hub in to_suspect {
            self.stats.inc_suspicion();
            if let Some(peer) = self.peers.get_mut(&hub) {
                peer.suspected = true;
            }
            let names = self.directory.set_suspected(hub, true);
            self.emit(
                Some(ctx),
                LivenessEvent {
                    hub,
                    status: PeerStatus::Suspected,
                    names,
                },
            );
        }
        for hub in to_evict {
            self.stats.inc_eviction();
            self.peers.remove(&hub);
            let names = self.directory.evict_owner(hub);
            self.emit(
                Some(ctx),
                LivenessEvent {
                    hub,
                    status: PeerStatus::Evicted,
                    names,
                },
            );
        }
        // Cross-hub name conflicts the merge has been counting: once a
        // name's live-reassert count persists past the threshold, surface
        // it — the event's hub is the conflicting *claimant*, not a
        // liveness transition of a peer.
        for (name, claimant, _count) in self.directory.take_conflicts(CONFLICT_THRESHOLD) {
            self.stats.inc_conflict();
            self.emit(
                Some(ctx),
                LivenessEvent {
                    hub: claimant,
                    status: PeerStatus::NameConflict,
                    names: vec![name],
                },
            );
        }
    }
}

impl NodeLogic for DiscoveryNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.greet_pending_seeds(ctx);
        ctx.set_timer(self.config.gossip_interval, GOSSIP_TIMER);
        ctx.set_timer(self.config.heartbeat_interval, SWEEP_TIMER);
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        if env.kind == kinds::TICK {
            self.gossip(ctx);
            self.sweep(ctx);
            return Flow::Continue;
        }
        let Some((hub, disc, rows)) = Self::decode(&env.body) else {
            return Flow::Continue;
        };
        self.note_heard(ctx, hub, disc.clone());
        match env.kind.as_str() {
            kinds::HELLO => {
                self.merge_rows(rows);
                // Payload sections merge before the answer is built, so the
                // WELCOME snapshot already includes the greeter's rows (the
                // returned per-section answers are redundant with it).
                let _ = self
                    .config
                    .payloads
                    .merge_sections(payload_sections(&env.body));
                // First contact: answer with everything we know, by name —
                // the hello's piggybacked claim made the greeter routable.
                let body =
                    self.attach_payloads(self.directory_body(ctx, &self.directory.snapshot()));
                let _ = ctx.endpoint().send(disc, kinds::WELCOME, body);
            }
            kinds::SYNC => {
                // Push-pull: merge theirs, answer with exactly the rows
                // they were missing (computed against their pre-merge
                // snapshot — anything they sent us older than ours).
                let delta = self.directory.delta_against(&rows);
                self.merge_rows(rows);
                let payload_deltas = self
                    .config
                    .payloads
                    .merge_sections(payload_sections(&env.body));
                if !delta.is_empty() || !payload_deltas.is_empty() {
                    let body = self
                        .directory_body(ctx, &delta)
                        .with_children(payload_deltas);
                    let _ = ctx.endpoint().send(disc, kinds::DELTA, body);
                }
            }
            kinds::WELCOME | kinds::DELTA => {
                self.merge_rows(rows);
                // Answers to an answer are discarded — the periodic SYNC is
                // the repair path for anything we hold that they lack.
                let _ = self
                    .config
                    .payloads
                    .merge_sections(payload_sections(&env.body));
            }
            kinds::PING => {
                let body = Element::new("directory")
                    .with_attr("hub", self.directory.hub().to_string())
                    .with_attr("disc", ctx.node().as_str());
                let _ = ctx.endpoint().reply(&env, kinds::PONG, body);
            }
            kinds::PONG => {}
            _ => {}
        }
        Flow::Continue
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) -> Flow {
        match timer {
            GOSSIP_TIMER => {
                self.gossip(ctx);
                ctx.set_timer(self.config.gossip_interval, GOSSIP_TIMER);
            }
            SWEEP_TIMER => {
                self.sweep(ctx);
                ctx.set_timer(self.config.heartbeat_interval, SWEEP_TIMER);
            }
            _ => {}
        }
        Flow::Continue
    }
}
