//! # selfserv-discovery
//!
//! Peer discovery & membership for multi-process SELF-SERV deployments:
//! the subsystem that turns a set of isolated [`TcpTransport`] hubs into a
//! self-organizing peer-to-peer network. Before it existed, an operator
//! had to call `register_peer` in both directions for every pair of
//! processes; now **one seed address** bootstraps everything.
//!
//! Each hub runs one [`DiscoveryNode`] — an ordinary
//! [`NodeLogic`](selfserv_runtime::NodeLogic) state machine on the shared
//! executor, named `disc.<hub-id>`, driven by the runtime's timer service.
//! Three mechanisms compose:
//!
//! 1. **Handshake** — on start (and retried each gossip tick until
//!    answered), the node greets every configured seed address with a
//!    `discovery.hello` carrying its full versioned directory snapshot,
//!    sent straight to the address via
//!    [`TcpTransport::send_to_addr`]. The seed merges the snapshot and
//!    answers `discovery.welcome` with its own — after one exchange both
//!    hubs can reach every name the other knows, in both directions.
//! 2. **Gossip anti-entropy** — every `gossip_interval`, the node picks
//!    `gossip_fanout` distinct random known peers and sends each a
//!    `discovery.sync` with its snapshot; the receiver merges it and
//!    answers `discovery.delta` with exactly the rows the sender was
//!    missing (push-pull). Because the directory
//!    merge is last-writer-wins on per-name version counters —
//!    commutative, idempotent, and associative (see the property tests in
//!    `proptests.rs`) — any exchange order converges every hub to the
//!    same directory, without coordination.
//! 3. **Failure detection** — peers that stay silent past
//!    `heartbeat_interval` are probed with `discovery.ping`; silence past
//!    `suspicion_timeout` marks the peer **suspected** (a local,
//!    unversioned overlay — selection policies deprioritize its members
//!    but traffic still routes); silence past `eviction_timeout`
//!    **evicts** it: every name it owned is tombstoned with a bumped
//!    version, so the eviction gossips to the whole network. Every
//!    transition surfaces as a [`LivenessEvent`] — kept on the handle,
//!    and mirrored to a monitor node when
//!    [`DiscoveryConfig::monitor`] names one.
//!
//! A hub that was evicted by mistake (e.g. a long pause) recovers on its
//! own: incoming tombstones for names whose endpoints are alive locally
//! are refused and re-asserted with a higher version
//! (`PeerDirectory::merge_entry`), and the corrected entries out-gossip
//! the stale tombstones.
//!
//! ```no_run
//! use selfserv_discovery::{DiscoveryConfig, PeerDiscovery};
//! use selfserv_net::TcpTransport;
//!
//! // Process 1: nothing to seed — just run discovery and publish the addr.
//! let hub_a = TcpTransport::new();
//! let disc_a = PeerDiscovery::spawn(&hub_a, DiscoveryConfig::default()).unwrap();
//! let seed = disc_a.seed_addr(); // hand this one address to process 2
//!
//! // Process 2: seed with that one address; directories converge.
//! let hub_b = TcpTransport::new();
//! let disc_b =
//!     PeerDiscovery::spawn(&hub_b, DiscoveryConfig::default().with_seed(seed)).unwrap();
//! ```

mod node;

pub use node::{disc_node_name, kinds, DiscoveryNode};

use parking_lot::Mutex;
use selfserv_net::{
    ConnectError, GossipPayloads, LivenessEvent, LivenessProbe, NodeId, PeerDirectory, TcpTransport,
};
use selfserv_obs::Registry;
use selfserv_runtime::{ExecutorHandle, NodeHandle};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables of one hub's discovery node. The defaults suit human-scale
/// deployments (sub-second convergence, seconds-scale failure detection);
/// tests shrink everything.
///
/// The timeouts form a ladder: a peer silent past `heartbeat_interval` is
/// probed, past `suspicion_timeout` it is suspected (deprioritized), past
/// `eviction_timeout` it is evicted (tombstoned and gossiped). Configure
/// them strictly increasing.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Listener addresses of hubs to greet at startup (each retried every
    /// gossip tick until it answers). One reachable seed suffices to join
    /// the network — everything else arrives by gossip.
    pub seeds: Vec<SocketAddr>,
    /// How often the node runs a gossip round.
    pub gossip_interval: Duration,
    /// Distinct random peers contacted per gossip round. Higher fan-out
    /// converges the network in fewer rounds (infection reaches `fanout`×
    /// as many hubs per tick) at `fanout`× the message cost; values are
    /// clamped to at least 1 and at most the known-peer count.
    pub gossip_fanout: usize,
    /// Silence threshold after which a peer is probed with a ping.
    pub heartbeat_interval: Duration,
    /// Silence threshold after which a peer is suspected.
    pub suspicion_timeout: Duration,
    /// Silence threshold after which a peer is evicted.
    pub eviction_timeout: Duration,
    /// When set, every liveness transition is also sent to this node as a
    /// fire-and-forget [`selfserv_net::LIVENESS_KIND`] envelope (the
    /// execution monitor ingests these).
    pub monitor: Option<NodeId>,
    /// Seed for the gossip-partner RNG; defaults to the hub id, so runs
    /// are deterministic per hub without being synchronized across hubs.
    pub rng_seed: Option<u64>,
    /// Replicated datasets piggybacking on this hub's discovery exchange
    /// (e.g. community membership tables — see
    /// [`selfserv_net::GossipPayload`]). Snapshots ride every
    /// `hello`/`welcome`/`sync` this node sends; fresher rows the peer was
    /// missing come back in the `delta` answer. The registry is shared:
    /// keep a clone and register payloads after spawning — they are picked
    /// up on the next round.
    pub payloads: GossipPayloads,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            seeds: Vec::new(),
            gossip_interval: Duration::from_millis(250),
            gossip_fanout: 2,
            heartbeat_interval: Duration::from_millis(500),
            suspicion_timeout: Duration::from_secs(2),
            eviction_timeout: Duration::from_secs(6),
            monitor: None,
            rng_seed: None,
            payloads: GossipPayloads::new(),
        }
    }
}

impl DiscoveryConfig {
    /// Builder: adds one seed address.
    pub fn with_seed(mut self, seed: SocketAddr) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Builder: report liveness transitions to a monitor node.
    pub fn with_monitor(mut self, monitor: impl Into<NodeId>) -> Self {
        self.monitor = Some(monitor.into());
        self
    }

    /// Builder: distinct gossip partners per round (clamped to ≥ 1).
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.gossip_fanout = fanout;
        self
    }

    /// Builder: attach a shared gossip-payload registry to this hub's
    /// exchanges.
    pub fn with_payloads(mut self, payloads: GossipPayloads) -> Self {
        self.payloads = payloads;
        self
    }

    /// Builder: a uniformly scaled timeout ladder for tests — gossip every
    /// `unit`, probe after 2×, suspect after 6×, evict after 12×.
    pub fn with_cadence(mut self, unit: Duration) -> Self {
        self.gossip_interval = unit;
        self.heartbeat_interval = unit * 2;
        self.suspicion_timeout = unit * 6;
        self.eviction_timeout = unit * 12;
        self
    }
}

/// Bounded in-memory log of liveness transitions shared between the
/// discovery node and its handle.
pub(crate) struct EventLog {
    events: Mutex<VecDeque<LivenessEvent>>,
}

const EVENT_LOG_CAPACITY: usize = 1024;

impl EventLog {
    fn new() -> Arc<EventLog> {
        Arc::new(EventLog {
            events: Mutex::new(VecDeque::new()),
        })
    }

    pub(crate) fn push(&self, event: LivenessEvent) {
        let mut events = self.events.lock();
        if events.len() == EVENT_LOG_CAPACITY {
            events.pop_front();
        }
        events.push_back(event);
    }

    fn snapshot(&self) -> Vec<LivenessEvent> {
        self.events.lock().iter().cloned().collect()
    }
}

/// Protocol activity counters shared between a discovery node and its
/// handle — the node bumps them from its state machine, scrapes read them
/// via [`DiscoveryHandle::register_metrics`].
#[derive(Default)]
pub struct DiscoveryStats {
    gossip_rounds: AtomicU64,
    sweeps: AtomicU64,
    suspicions: AtomicU64,
    evictions: AtomicU64,
    conflicts: AtomicU64,
}

impl DiscoveryStats {
    pub(crate) fn inc_gossip(&self) {
        self.gossip_rounds.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_sweep(&self) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_suspicion(&self) {
        self.suspicions.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn inc_conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Gossip rounds run (timer firings plus injected ticks).
    pub fn gossip_rounds(&self) -> u64 {
        self.gossip_rounds.load(Ordering::Relaxed)
    }
    /// Failure-detection sweeps run.
    pub fn sweeps(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }
    /// Peers marked suspected.
    pub fn suspicions(&self) -> u64 {
        self.suspicions.load(Ordering::Relaxed)
    }
    /// Peers evicted.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
    /// Cross-hub name conflicts surfaced.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

/// Spawner for a hub's discovery node.
pub struct PeerDiscovery;

impl PeerDiscovery {
    /// Spawns the hub's discovery node on the process-wide shared
    /// executor.
    pub fn spawn(
        hub: &TcpTransport,
        config: DiscoveryConfig,
    ) -> Result<DiscoveryHandle, ConnectError> {
        Self::spawn_on(hub, selfserv_runtime::shared(), config)
    }

    /// Spawns the hub's discovery node on an explicit executor.
    pub fn spawn_on(
        hub: &TcpTransport,
        exec: &ExecutorHandle,
        config: DiscoveryConfig,
    ) -> Result<DiscoveryHandle, ConnectError> {
        let name = disc_node_name(hub.hub_id());
        let endpoint = selfserv_net::Transport::connect(hub, name)?;
        let node = endpoint.node().clone();
        let addr = hub
            .addr_of(node.as_str())
            .expect("a freshly connected node has a listener address");
        let events = EventLog::new();
        let stats = Arc::new(DiscoveryStats::default());
        let logic =
            DiscoveryNode::new(hub.clone(), config, Arc::clone(&events), Arc::clone(&stats));
        Ok(DiscoveryHandle {
            node,
            addr,
            hub: hub.clone(),
            directory: hub.directory(),
            events,
            stats,
            handle: Some(exec.spawn_node(endpoint, logic)),
        })
    }
}

/// Handle to a running discovery node: the hub's seed address, its
/// directory, the liveness log, and shutdown.
pub struct DiscoveryHandle {
    node: NodeId,
    addr: SocketAddr,
    hub: TcpTransport,
    directory: PeerDirectory,
    events: Arc<EventLog>,
    stats: Arc<DiscoveryStats>,
    handle: Option<NodeHandle>,
}

impl DiscoveryHandle {
    /// The discovery node's name (`disc.<hub-id>`).
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// The address other hubs seed with to join this one.
    pub fn seed_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub's shared directory (same object the transport routes by).
    pub fn directory(&self) -> &PeerDirectory {
        &self.directory
    }

    /// The directory as a liveness probe, ready to hand to
    /// `CommunityServerConfig::liveness`.
    pub fn liveness(&self) -> Arc<dyn LivenessProbe> {
        Arc::new(self.directory.clone())
    }

    /// Every liveness transition observed so far (oldest first, bounded).
    pub fn events(&self) -> Vec<LivenessEvent> {
        self.events.snapshot()
    }

    /// Protocol activity counters (gossip rounds, sweeps, suspicions,
    /// evictions, conflicts).
    pub fn stats(&self) -> &Arc<DiscoveryStats> {
        &self.stats
    }

    /// Registers this hub's discovery metrics: protocol counters plus a
    /// directory-size gauge sampled at scrape time.
    pub fn register_metrics(&self, registry: &Registry, labels: &[(&str, &str)]) {
        type StatReader = fn(&DiscoveryStats) -> u64;
        let series: [(&str, &str, StatReader); 5] = [
            (
                "selfserv_discovery_gossip_rounds_total",
                "Gossip rounds run (timer firings plus injected ticks).",
                DiscoveryStats::gossip_rounds,
            ),
            (
                "selfserv_discovery_sweeps_total",
                "Failure-detection sweeps run.",
                DiscoveryStats::sweeps,
            ),
            (
                "selfserv_discovery_suspicions_total",
                "Peers marked suspected after silence past the suspicion timeout.",
                DiscoveryStats::suspicions,
            ),
            (
                "selfserv_discovery_evictions_total",
                "Peers evicted (names tombstoned and gossiped).",
                DiscoveryStats::evictions,
            ),
            (
                "selfserv_discovery_conflicts_total",
                "Cross-hub name conflicts surfaced by the sweep.",
                DiscoveryStats::conflicts,
            ),
        ];
        for (name, help, read) in series {
            let stats = Arc::clone(&self.stats);
            registry.counter_fn(name, help, labels, move || read(&stats));
        }
        let directory = self.directory.clone();
        registry.gauge_fn(
            "selfserv_discovery_directory_size",
            "Entries in the hub's peer directory (tombstones included).",
            labels,
            move || directory.len() as f64,
        );
    }

    /// Injects one deterministic discovery tick: the node runs one gossip
    /// round and one failure-detection sweep as soon as it processes the
    /// message, exactly as if both timers had fired — without touching
    /// their arming. Chaos and convergence tests use this to *step* the
    /// protocol at a controlled cadence instead of waiting out wall-clock
    /// intervals. The tick travels through the hub's own listener like
    /// any frame, so it also obeys installed fault schedules.
    pub fn inject_tick(&self) -> std::io::Result<()> {
        self.hub
            .send_to_addr(
                self.addr,
                &self.node,
                node::kinds::TICK,
                selfserv_xml::Element::new("tick"),
            )
            .map(|_| ())
    }

    /// Polls until `name` is routable in this hub's directory (gossip or
    /// handshake has delivered it). True on success, false on timeout.
    pub fn wait_until_bound(&self, name: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.directory.is_bound(name) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the discovery node (its name tombstones locally; peers will
    /// detect the silence and evict this hub's names on their side).
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.stop();
        }
    }
}

impl Drop for DiscoveryHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for DiscoveryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiscoveryHandle")
            .field("node", &self.node)
            .field("seed_addr", &self.addr)
            .finish()
    }
}

#[cfg(test)]
mod proptests;

#[cfg(test)]
mod tests;
