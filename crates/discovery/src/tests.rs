//! In-crate integration tests: handshake, gossip, and failure detection
//! between in-process `TcpTransport` hubs. (The workspace-level
//! `tests/discovery.rs` drives full composite deployments and the 16-hub
//! convergence scenario.)

use crate::{disc_node_name, DiscoveryConfig, PeerDiscovery};
use selfserv_net::{LivenessProbe, NodeId, PeerStatus, TcpTransport, Transport};
use selfserv_xml::Element;
use std::time::{Duration, Instant};

fn fast() -> DiscoveryConfig {
    DiscoveryConfig::default().with_cadence(Duration::from_millis(25))
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn one_seed_address_bootstraps_bidirectional_rpc() {
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    let server = Transport::connect(&hub_a, NodeId::new("server")).unwrap();
    let disc_a = PeerDiscovery::spawn(&hub_a, fast()).unwrap();
    // B knows exactly one address: A's discovery listener. No
    // register_peer anywhere.
    let disc_b = PeerDiscovery::spawn(&hub_b, fast().with_seed(disc_a.seed_addr())).unwrap();
    let client = Transport::connect(&hub_b, NodeId::new("client")).unwrap();
    assert!(
        disc_b.wait_until_bound("server", Duration::from_secs(5)),
        "handshake delivered A's registry to B"
    );
    assert!(
        disc_a.wait_until_bound("client", Duration::from_secs(5)),
        "gossip delivered B's later-connected client back to A"
    );
    let server_thread = std::thread::spawn(move || {
        let req = server.recv().unwrap();
        server.reply(&req, "pong", Element::new("pong")).unwrap();
    });
    let reply = client
        .rpc(
            "server",
            "ping",
            Element::new("ping"),
            Duration::from_secs(5),
        )
        .unwrap();
    assert_eq!(reply.kind, "pong");
    server_thread.join().unwrap();
}

#[test]
fn seed_that_starts_late_is_greeted_until_it_answers() {
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    // Reserve B's future discovery address before B's node exists, by
    // binding and dropping a probe listener — the hello to it fails until
    // B comes up, exercising the retry path... a simpler equivalent: seed
    // A with an address nothing listens on *yet*, then bring B up on a
    // fresh address and hand it to A via a second discovery handle is not
    // possible (one node per hub). Instead: B seeds A's address *before*
    // A's listener exists? Also impossible — spawn creates the listener.
    // So exercise the real retryable case: a seed that is reachable but
    // whose process is slow — emulated by delaying B's spawn while A
    // retries a dead port, then checking A still converges via B's hello.
    let dead: std::net::SocketAddr = "127.0.0.1:9".parse().unwrap();
    let disc_a = PeerDiscovery::spawn(&hub_a, fast().with_seed(dead)).unwrap();
    let _svc = Transport::connect(&hub_a, NodeId::new("svc.alpha")).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let disc_b = PeerDiscovery::spawn(&hub_b, fast().with_seed(disc_a.seed_addr())).unwrap();
    assert!(
        disc_b.wait_until_bound("svc.alpha", Duration::from_secs(5)),
        "B joined despite A's dead seed"
    );
    // A's dead seed never produced a peer, but B's handshake did.
    assert!(disc_a.wait_until_bound(disc_b.node().as_str(), Duration::from_secs(5)));
}

#[test]
fn silent_hub_is_suspected_then_evicted_and_recovery_reasserts() {
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    let disc_a = PeerDiscovery::spawn(&hub_a, fast()).unwrap();
    let member = Transport::connect(&hub_b, NodeId::new("svc.member")).unwrap();
    let disc_b = PeerDiscovery::spawn(&hub_b, fast().with_seed(disc_a.seed_addr())).unwrap();
    let b_hub_id = hub_b.hub_id();
    assert!(disc_a.wait_until_bound("svc.member", Duration::from_secs(5)));

    // Kill hub B's discovery (its endpoints stay up, but nothing answers
    // pings — the hub has gone silent as far as membership is concerned).
    disc_b.stop();
    let dir_a = disc_a.directory().clone();
    assert!(
        wait_until(Duration::from_secs(5), || {
            dir_a.status_of("svc.member") == PeerStatus::Suspected
        }),
        "silence past the suspicion timeout suspects B's names"
    );
    assert!(
        wait_until(Duration::from_secs(5), || {
            dir_a.status_of("svc.member") == PeerStatus::Evicted
        }),
        "silence past the eviction timeout evicts B's names"
    );
    assert!(
        !hub_a.is_connected("svc.member"),
        "evicted names are no longer routable"
    );
    let events = disc_a.events();
    assert!(events
        .iter()
        .any(|e| e.hub == b_hub_id && e.status == PeerStatus::Suspected));
    assert!(events.iter().any(|e| e.hub == b_hub_id
        && e.status == PeerStatus::Evicted
        && e.names.contains(&NodeId::new("svc.member"))));

    // B comes back (new discovery node, same hub, same member endpoint):
    // its re-handshake must out-version A's tombstones.
    let disc_b2 = PeerDiscovery::spawn(&hub_b, fast().with_seed(disc_a.seed_addr())).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || {
            dir_a.status_of("svc.member") == PeerStatus::Alive && hub_a.is_connected("svc.member")
        }),
        "a revived hub re-asserts its names over the tombstones"
    );
    drop(member);
    drop(disc_b2);
}

#[test]
fn two_hubs_binding_one_name_surface_an_operator_conflict_event() {
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    // The operator error: both hubs bind `svc.shared` before discovery
    // connects them. Gossip can never converge on that name — each hub
    // re-asserts its own endpoint — and the sweep must say so.
    let _mine = Transport::connect(&hub_a, NodeId::new("svc.shared")).unwrap();
    let _theirs = Transport::connect(&hub_b, NodeId::new("svc.shared")).unwrap();
    let disc_a = PeerDiscovery::spawn(&hub_a, fast()).unwrap();
    let disc_b = PeerDiscovery::spawn(&hub_b, fast().with_seed(disc_a.seed_addr())).unwrap();
    let b_hub_id = hub_b.hub_id();
    assert!(disc_a.wait_until_bound(disc_b.node().as_str(), Duration::from_secs(5)));
    // Step gossip deterministically from both sides until the repeated
    // reasserts cross the conflict threshold and a sweep drains them.
    let saw_conflict = wait_until(Duration::from_secs(10), || {
        let _ = disc_a.inject_tick();
        let _ = disc_b.inject_tick();
        disc_a.events().iter().any(|e| {
            e.status == PeerStatus::NameConflict
                && e.hub == b_hub_id
                && e.names.contains(&NodeId::new("svc.shared"))
        })
    });
    assert!(
        saw_conflict,
        "persistent cross-hub claims on svc.shared never surfaced as a conflict event"
    );
    // The contested name stays bound locally — detection, not resolution.
    assert!(disc_a.directory().is_bound("svc.shared"));
}

#[test]
fn injected_ticks_step_failure_detection_without_waiting_for_timers() {
    // Slow cadence: wall-clock timers alone could not evict inside this
    // test's budget — only injected ticks can drive the sweep.
    let slow = DiscoveryConfig::default().with_cadence(Duration::from_secs(60));
    let mut config_a = slow.clone();
    // Keep detection thresholds short so silence *ages* fast, while the
    // timers that would notice it almost never fire on their own.
    config_a.heartbeat_interval = Duration::from_millis(50);
    config_a.suspicion_timeout = Duration::from_millis(150);
    config_a.eviction_timeout = Duration::from_millis(400);
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    let disc_a = PeerDiscovery::spawn(&hub_a, config_a).unwrap();
    let member = Transport::connect(&hub_b, NodeId::new("svc.stepped")).unwrap();
    let disc_b = PeerDiscovery::spawn(&hub_b, slow.with_seed(disc_a.seed_addr())).unwrap();
    assert!(disc_a.wait_until_bound("svc.stepped", Duration::from_secs(5)));
    disc_b.stop();
    let dir_a = disc_a.directory().clone();
    let evicted = wait_until(Duration::from_secs(5), || {
        let _ = disc_a.inject_tick();
        dir_a.status_of("svc.stepped") == PeerStatus::Evicted
    });
    assert!(
        evicted,
        "injected ticks did not drive suspicion → eviction of the silent hub"
    );
    drop(member);
}

#[test]
fn stats_count_gossip_sweeps_and_evictions() {
    // Same silent-hub scenario as above, but observed through the stats
    // counters and the Prometheus exposition instead of the event log.
    let slow = DiscoveryConfig::default().with_cadence(Duration::from_secs(60));
    let mut config_a = slow.clone();
    config_a.heartbeat_interval = Duration::from_millis(50);
    config_a.suspicion_timeout = Duration::from_millis(150);
    config_a.eviction_timeout = Duration::from_millis(400);
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    let disc_a = PeerDiscovery::spawn(&hub_a, config_a).unwrap();
    let member = Transport::connect(&hub_b, NodeId::new("svc.counted")).unwrap();
    let disc_b = PeerDiscovery::spawn(&hub_b, slow.with_seed(disc_a.seed_addr())).unwrap();
    assert!(disc_a.wait_until_bound("svc.counted", Duration::from_secs(5)));
    let registry = selfserv_obs::Registry::new();
    disc_a.register_metrics(&registry, &[("hub", "a")]);
    disc_b.stop();
    let dir_a = disc_a.directory().clone();
    let evicted = wait_until(Duration::from_secs(5), || {
        let _ = disc_a.inject_tick();
        dir_a.status_of("svc.counted") == PeerStatus::Evicted
    });
    assert!(evicted);
    let stats = disc_a.stats();
    assert!(stats.gossip_rounds() > 0, "ticks count as gossip rounds");
    assert!(stats.sweeps() > 0);
    assert_eq!(stats.suspicions(), 1);
    assert_eq!(stats.evictions(), 1);
    let text = registry.render();
    assert!(text.contains("selfserv_discovery_evictions_total{hub=\"a\"} 1"));
    assert!(text.contains("selfserv_discovery_directory_size{hub=\"a\"}"));
    drop(member);
}

#[test]
fn discovery_node_name_is_derived_from_hub_id() {
    let hub = TcpTransport::new();
    let disc = PeerDiscovery::spawn(&hub, fast()).unwrap();
    let name = disc.node().clone();
    assert_eq!(name, disc_node_name(hub.hub_id()));
    assert_eq!(hub.addr_of(name.as_str()), Some(disc.seed_addr()));
    disc.stop();
    assert!(!hub.is_connected(name.as_str()));
}

/// A registered gossip payload converges across hubs through the same
/// push-pull exchange as the directory — the piggyback that carries
/// community membership between hubs (see `selfserv_community::replication`).
#[test]
fn gossip_payloads_ride_the_exchange_across_hubs() {
    use parking_lot::RwLock;
    use selfserv_net::gossip::PAYLOAD_ELEMENT;
    use selfserv_net::{GossipPayload, GossipPayloads};
    use std::sync::Arc;

    /// A one-cell LWW register: the minimal payload with the directory's
    /// merge shape.
    struct Cell {
        state: Arc<RwLock<(u64, String)>>,
    }

    impl GossipPayload for Cell {
        fn key(&self) -> String {
            "test:cell".into()
        }
        fn snapshot(&self) -> Element {
            let (version, value) = self.state.read().clone();
            Element::new(PAYLOAD_ELEMENT)
                .with_attr("key", self.key())
                .with_attr("version", version.to_string())
                .with_attr("value", value)
        }
        fn merge(&self, incoming: &Element) -> Option<Element> {
            let theirs: u64 = incoming.attr("version")?.parse().ok()?;
            let mut state = self.state.write();
            if theirs > state.0 {
                *state = (theirs, incoming.attr("value")?.to_string());
                None
            } else if theirs < state.0 {
                drop(state);
                Some(self.snapshot())
            } else {
                None
            }
        }
    }

    let cell = |version: u64, value: &str| Arc::new(RwLock::new((version, value.to_string())));
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    let state_a = cell(1, "from-a");
    let state_b = cell(0, "");
    let payloads_a = GossipPayloads::new();
    payloads_a.register(Arc::new(Cell {
        state: Arc::clone(&state_a),
    }));
    let payloads_b = GossipPayloads::new();
    payloads_b.register(Arc::new(Cell {
        state: Arc::clone(&state_b),
    }));
    let disc_a = PeerDiscovery::spawn(&hub_a, fast().with_payloads(payloads_a)).unwrap();
    let disc_b = PeerDiscovery::spawn(
        &hub_b,
        fast()
            .with_seed(disc_a.seed_addr())
            .with_payloads(payloads_b),
    )
    .unwrap();
    // A's fresher cell reaches B through the handshake/gossip exchange.
    assert!(
        wait_until(Duration::from_secs(5), || state_b.read().1 == "from-a"),
        "payload snapshot crossed hubs"
    );
    // A later write on B out-versions it and flows back to A: push-pull
    // works in both directions without either side addressing the other.
    *state_b.write() = (5, "from-b".to_string());
    assert!(
        wait_until(Duration::from_secs(5), || state_a.read().1 == "from-b"),
        "payload delta flowed back"
    );
    disc_b.stop();
    disc_a.stop();
}
