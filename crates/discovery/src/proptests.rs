//! Property tests for the gossip algebra: the registry-delta merge must
//! be commutative, idempotent, and associative, so that *any* exchange
//! order — any gossip schedule, any message loss pattern, any replay —
//! converges every hub to the same directory.
//!
//! The merge under test is [`PeerDirectory::merge_remote`]'s pure
//! last-writer-wins core. The owner-side re-assertion rule (a hub
//! defending its own live endpoints) is deliberately outside the algebra:
//! it *generates new versions* rather than combining existing ones, so
//! these tests merge into directories whose own hub id never appears in
//! the generated entries.

use proptest::prelude::*;
use selfserv_net::{DirectoryEntry, HubId, NodeId, PeerDirectory};

/// A hub id guaranteed never to collide with generated entry owners.
const MERGING_HUB: HubId = HubId(u64::MAX);

fn arb_entry() -> impl Strategy<Value = (NodeId, DirectoryEntry)> {
    (
        // A small name universe so generated sets collide on names often
        // (collisions are where merge laws can break).
        0u8..6,
        1u16..2000,
        1u64..6,
        1u64..8,
        any::<bool>(),
    )
        .prop_map(|(name, port, owner, version, evicted)| {
            (
                NodeId::new(format!("node{name}")),
                DirectoryEntry {
                    addr: format!("127.0.0.1:{}", 1000 + port).parse().unwrap(),
                    owner: HubId(owner),
                    version,
                    evicted,
                },
            )
        })
}

fn arb_delta() -> impl Strategy<Value = Vec<(NodeId, DirectoryEntry)>> {
    proptest::collection::vec(arb_entry(), 0..12)
}

/// Applies deltas to a fresh directory and returns its canonical state.
fn apply(deltas: &[&[(NodeId, DirectoryEntry)]]) -> Vec<(NodeId, DirectoryEntry)> {
    let dir = PeerDirectory::new(MERGING_HUB);
    for delta in deltas {
        dir.merge_remote(delta.iter().cloned());
    }
    dir.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Commutativity: A then B converges to the same directory as B then
    /// A.
    #[test]
    fn merge_is_commutative(a in arb_delta(), b in arb_delta()) {
        prop_assert_eq!(apply(&[&a, &b]), apply(&[&b, &a]));
    }

    /// Idempotence: replaying a delta (gossip redelivery) changes
    /// nothing.
    #[test]
    fn merge_is_idempotent(a in arb_delta(), b in arb_delta()) {
        prop_assert_eq!(apply(&[&a, &b]), apply(&[&a, &b, &a, &b, &b]));
    }

    /// Associativity: pre-combining B and C on an intermediate hub and
    /// forwarding the result is the same as receiving them directly.
    #[test]
    fn merge_is_associative(a in arb_delta(), b in arb_delta(), c in arb_delta()) {
        let via_intermediate = {
            let relay = PeerDirectory::new(HubId(u64::MAX - 1));
            relay.merge_remote(b.iter().cloned());
            relay.merge_remote(c.iter().cloned());
            let combined = relay.snapshot();
            apply(&[&a, &combined])
        };
        prop_assert_eq!(apply(&[&a, &b, &c]), via_intermediate);
    }

    /// Convergence: two hubs that exchange snapshots (in either order,
    /// starting from different histories) end up with identical
    /// fingerprints — the anti-entropy guarantee the line-topology test
    /// relies on at network scale.
    #[test]
    fn snapshot_exchange_converges(a in arb_delta(), b in arb_delta()) {
        let left = PeerDirectory::new(MERGING_HUB);
        let right = PeerDirectory::new(HubId(u64::MAX - 2));
        left.merge_remote(a.iter().cloned());
        right.merge_remote(b.iter().cloned());
        left.merge_remote(right.snapshot());
        right.merge_remote(left.snapshot());
        prop_assert_eq!(left.snapshot(), right.snapshot());
        prop_assert_eq!(left.fingerprint(), right.fingerprint());
    }
}
