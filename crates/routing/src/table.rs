//! Routing-table data structures and their XML round-trip.

use selfserv_expr::Expr;
use selfserv_statechart::{Assignment, StateId};
use selfserv_xml::Element;
use std::fmt;

/// A party in the peer-to-peer execution of one composite service.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Participant {
    /// The coordinator attached to a (basic) state.
    State(StateId),
    /// The composite service's wrapper.
    Wrapper,
}

impl fmt::Display for Participant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Participant::State(s) => write!(f, "state:{s}"),
            Participant::Wrapper => write!(f, "wrapper"),
        }
    }
}

/// The label carried by a completion/control notification.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NotificationLabel {
    /// `state` (task, choice, or — by cascade — compound) completed.
    Completed(StateId),
    /// Region `region` of concurrent state completed.
    RegionCompleted(StateId, usize),
    /// Instance started (sent by the wrapper to the initial states).
    Start,
    /// A named statechart event was produced.
    Event(String),
}

impl NotificationLabel {
    /// Compact textual form used in XML and logs (e.g. `done:AB`,
    /// `region:ARR:0`, `start`, `event:paid`).
    pub fn encode(&self) -> String {
        match self {
            NotificationLabel::Completed(s) => format!("done:{s}"),
            NotificationLabel::RegionCompleted(s, r) => format!("region:{s}:{r}"),
            NotificationLabel::Start => "start".to_string(),
            NotificationLabel::Event(e) => format!("event:{e}"),
        }
    }

    /// Parses the compact textual form.
    pub fn decode(s: &str) -> Result<Self, String> {
        if s == "start" {
            return Ok(NotificationLabel::Start);
        }
        if let Some(rest) = s.strip_prefix("done:") {
            return Ok(NotificationLabel::Completed(StateId::new(rest)));
        }
        if let Some(rest) = s.strip_prefix("event:") {
            return Ok(NotificationLabel::Event(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("region:") {
            let (state, region) = rest
                .rsplit_once(':')
                .ok_or_else(|| format!("bad region label {s:?}"))?;
            let region = region
                .parse::<usize>()
                .map_err(|e| format!("bad region index in {s:?}: {e}"))?;
            return Ok(NotificationLabel::RegionCompleted(
                StateId::new(state),
                region,
            ));
        }
        Err(format!("unknown notification label {s:?}"))
    }
}

impl fmt::Display for NotificationLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// One alternative way a state may be activated: an AND-set of labels that
/// must all have been observed for the instance, plus an optional
/// receiver-side condition over the (merged) instance variables, plus
/// actions to apply on activation (from transitions folded into this
/// route).
#[derive(Debug, Clone, PartialEq)]
pub struct Precondition {
    /// Identifier (derived from the transition path that produced it).
    pub id: String,
    /// Labels that must all be present (AND-join).
    pub labels: Vec<NotificationLabel>,
    /// Receiver-side condition; `None` = always.
    pub condition: Option<Expr>,
    /// Assignments applied when this alternative fires.
    pub actions: Vec<Assignment>,
}

impl Precondition {
    /// True when `seen` contains every required label.
    pub fn satisfied_by(&self, seen: &[NotificationLabel]) -> bool {
        self.labels.iter().all(|l| seen.contains(l))
    }
}

/// One notification to emit: target participant and label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Whom to notify.
    pub target: Participant,
    /// With which label.
    pub label: NotificationLabel,
}

/// A cascade branch of a postprocessing: the notifications to emit when
/// control takes this path. Conditions on branches are *receiver-side*
/// duplicates kept for traceability; the sender emits every branch
/// unconditionally (receivers decide activation — see the crate docs on
/// guard placement).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteBranch {
    /// Notifications emitted on this branch.
    pub notifications: Vec<Notification>,
}

/// The postprocessing for one outgoing transition of a state.
#[derive(Debug, Clone, PartialEq)]
pub struct Postprocessing {
    /// The statechart transition this row was compiled from.
    pub transition_id: String,
    /// Sender-side guard: whether this transition fires on completion.
    /// Rows are evaluated in order; the first firing row wins (XOR).
    pub guard: Option<Expr>,
    /// Triggering event, if the transition is event-driven rather than
    /// completion-driven.
    pub event: Option<String>,
    /// The transition's own actions (applied at the sender before
    /// notifying).
    pub actions: Vec<Assignment>,
    /// Cascade-expanded notification branches (all emitted when the row
    /// fires).
    pub branches: Vec<RouteBranch>,
}

impl Postprocessing {
    /// All notifications across branches.
    pub fn notifications(&self) -> impl Iterator<Item = &Notification> {
        self.branches.iter().flat_map(|b| b.notifications.iter())
    }
}

/// The routing table uploaded to one state's coordinator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoutingTable {
    /// The state this table belongs to.
    pub state: StateId,
    /// Activation alternatives (OR).
    pub preconditions: Vec<Precondition>,
    /// One row per outgoing transition, in declaration order.
    pub postprocessings: Vec<Postprocessing>,
    /// Events this state's operation produces: broadcast after completion.
    pub produced_events: Vec<String>,
}

/// The wrapper's routing knowledge: whom to kick off, and which label-sets
/// mean the instance has finished.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WrapperTable {
    /// States to notify with [`NotificationLabel::Start`].
    pub start_targets: Vec<StateId>,
    /// Completion alternatives (same semantics as state preconditions).
    pub finish_alternatives: Vec<Precondition>,
    /// Every coordinator of the composite (for instance cleanup
    /// broadcasts).
    pub all_states: Vec<StateId>,
}

// ---------------------------------------------------------------------
// XML round-trip ("the outputs are routing tables formatted in XML").
// ---------------------------------------------------------------------

fn participant_to_attr(p: &Participant) -> String {
    p.to_string()
}

fn participant_from_attr(s: &str) -> Result<Participant, String> {
    if s == "wrapper" {
        Ok(Participant::Wrapper)
    } else if let Some(state) = s.strip_prefix("state:") {
        Ok(Participant::State(StateId::new(state)))
    } else {
        Err(format!("unknown participant {s:?}"))
    }
}

fn encode_actions(parent: &mut Element, actions: &[Assignment]) {
    for a in actions {
        parent.push_child(
            Element::new("action")
                .with_attr("var", &a.var)
                .with_attr("expr", a.expr.to_string()),
        );
    }
}

fn decode_actions(e: &Element) -> Result<Vec<Assignment>, String> {
    e.find_all("action")
        .map(|a| {
            Ok(Assignment {
                var: a.require_attr("var")?.to_string(),
                expr: selfserv_expr::parse(a.require_attr("expr")?).map_err(|e| e.to_string())?,
            })
        })
        .collect()
}

impl Precondition {
    /// XML form.
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("precondition").with_attr("id", &self.id);
        if let Some(c) = &self.condition {
            e.set_attr("condition", c.to_string());
        }
        for l in &self.labels {
            e.push_child(Element::new("await").with_attr("label", l.encode()));
        }
        encode_actions(&mut e, &self.actions);
        e
    }

    /// Decodes the XML form.
    pub fn from_xml(e: &Element) -> Result<Self, String> {
        let condition = match e.attr("condition") {
            Some(src) => Some(selfserv_expr::parse(src).map_err(|e| e.to_string())?),
            None => None,
        };
        let labels = e
            .find_all("await")
            .map(|a| NotificationLabel::decode(a.require_attr("label")?))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Precondition {
            id: e.require_attr("id")?.to_string(),
            labels,
            condition,
            actions: decode_actions(e)?,
        })
    }
}

impl Postprocessing {
    /// XML form.
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("postprocessing").with_attr("transition", &self.transition_id);
        if let Some(g) = &self.guard {
            e.set_attr("guard", g.to_string());
        }
        if let Some(ev) = &self.event {
            e.set_attr("event", ev);
        }
        encode_actions(&mut e, &self.actions);
        for b in &self.branches {
            let mut be = Element::new("branch");
            for n in &b.notifications {
                be.push_child(
                    Element::new("notify")
                        .with_attr("target", participant_to_attr(&n.target))
                        .with_attr("label", n.label.encode()),
                );
            }
            e.push_child(be);
        }
        e
    }

    /// Decodes the XML form.
    pub fn from_xml(e: &Element) -> Result<Self, String> {
        let guard = match e.attr("guard") {
            Some(src) => Some(selfserv_expr::parse(src).map_err(|e| e.to_string())?),
            None => None,
        };
        let branches = e
            .find_all("branch")
            .map(|be| {
                let notifications = be
                    .find_all("notify")
                    .map(|n| {
                        Ok(Notification {
                            target: participant_from_attr(n.require_attr("target")?)?,
                            label: NotificationLabel::decode(n.require_attr("label")?)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(RouteBranch { notifications })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Postprocessing {
            transition_id: e.require_attr("transition")?.to_string(),
            guard,
            event: e.attr("event").map(str::to_string),
            actions: decode_actions(e)?,
            branches,
        })
    }
}

impl RoutingTable {
    /// XML form (`<routingTable state="...">`).
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("routingTable").with_attr("state", self.state.as_str());
        for p in &self.preconditions {
            e.push_child(p.to_xml());
        }
        for p in &self.postprocessings {
            e.push_child(p.to_xml());
        }
        for ev in &self.produced_events {
            e.push_child(Element::new("produces").with_attr("event", ev));
        }
        e
    }

    /// Decodes the XML form.
    pub fn from_xml(e: &Element) -> Result<Self, String> {
        if e.name != "routingTable" {
            return Err(format!("expected <routingTable>, got <{}>", e.name));
        }
        Ok(RoutingTable {
            state: StateId::new(e.require_attr("state")?),
            preconditions: e
                .find_all("precondition")
                .map(Precondition::from_xml)
                .collect::<Result<Vec<_>, _>>()?,
            postprocessings: e
                .find_all("postprocessing")
                .map(Postprocessing::from_xml)
                .collect::<Result<Vec<_>, _>>()?,
            produced_events: e
                .find_all("produces")
                .map(|p| p.require_attr("event").map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

impl WrapperTable {
    /// XML form.
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("wrapperTable");
        for s in &self.start_targets {
            e.push_child(Element::new("start").with_attr("state", s.as_str()));
        }
        for p in &self.finish_alternatives {
            e.push_child(p.to_xml());
        }
        for s in &self.all_states {
            e.push_child(Element::new("coordinator").with_attr("state", s.as_str()));
        }
        e
    }

    /// Decodes the XML form.
    pub fn from_xml(e: &Element) -> Result<Self, String> {
        if e.name != "wrapperTable" {
            return Err(format!("expected <wrapperTable>, got <{}>", e.name));
        }
        Ok(WrapperTable {
            start_targets: e
                .find_all("start")
                .map(|s| s.require_attr("state").map(StateId::new))
                .collect::<Result<Vec<_>, _>>()?,
            finish_alternatives: e
                .find_all("precondition")
                .map(Precondition::from_xml)
                .collect::<Result<Vec<_>, _>>()?,
            all_states: e
                .find_all("coordinator")
                .map(|s| s.require_attr("state").map(StateId::new))
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_encode_decode() {
        let labels = vec![
            NotificationLabel::Completed(StateId::new("AB")),
            NotificationLabel::RegionCompleted(StateId::new("ARR"), 1),
            NotificationLabel::Start,
            NotificationLabel::Event("paid".into()),
        ];
        for l in labels {
            assert_eq!(NotificationLabel::decode(&l.encode()).unwrap(), l);
        }
        assert!(NotificationLabel::decode("bogus:x").is_err());
        assert!(NotificationLabel::decode("region:no-index").is_err());
        assert!(NotificationLabel::decode("region:a:b").is_err());
    }

    #[test]
    fn participant_encode_decode() {
        for p in [Participant::Wrapper, Participant::State(StateId::new("CR"))] {
            assert_eq!(participant_from_attr(&participant_to_attr(&p)).unwrap(), p);
        }
        assert!(participant_from_attr("martian").is_err());
    }

    #[test]
    fn precondition_satisfaction() {
        let p = Precondition {
            id: "x".into(),
            labels: vec![
                NotificationLabel::RegionCompleted(StateId::new("ARR"), 0),
                NotificationLabel::RegionCompleted(StateId::new("ARR"), 1),
            ],
            condition: None,
            actions: vec![],
        };
        let r0 = NotificationLabel::RegionCompleted(StateId::new("ARR"), 0);
        let r1 = NotificationLabel::RegionCompleted(StateId::new("ARR"), 1);
        assert!(!p.satisfied_by(&[]));
        assert!(!p.satisfied_by(std::slice::from_ref(&r0)));
        assert!(p.satisfied_by(&[r0, r1]));
    }

    fn sample_table() -> RoutingTable {
        RoutingTable {
            state: StateId::new("CR"),
            preconditions: vec![Precondition {
                id: "via:t_cr".into(),
                labels: vec![
                    NotificationLabel::RegionCompleted(StateId::new("ARR"), 0),
                    NotificationLabel::RegionCompleted(StateId::new("ARR"), 1),
                ],
                condition: Some(
                    selfserv_expr::parse("not near(major_attraction, accommodation)").unwrap(),
                ),
                actions: vec![Assignment {
                    var: "legs".into(),
                    expr: selfserv_expr::parse("legs + 1").unwrap(),
                }],
            }],
            postprocessings: vec![Postprocessing {
                transition_id: "t_cr_f".into(),
                guard: None,
                event: None,
                actions: vec![],
                branches: vec![RouteBranch {
                    notifications: vec![Notification {
                        target: Participant::Wrapper,
                        label: NotificationLabel::Completed(StateId::new("CR")),
                    }],
                }],
            }],
            produced_events: vec!["carRented".into()],
        }
    }

    #[test]
    fn routing_table_xml_round_trip() {
        let t = sample_table();
        let xml = t.to_xml().to_pretty_xml();
        let back = RoutingTable::from_xml(&selfserv_xml::parse(&xml).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn wrapper_table_xml_round_trip() {
        let w = WrapperTable {
            start_targets: vec![StateId::new("FC"), StateId::new("AS")],
            finish_alternatives: vec![Precondition {
                id: "via:t_skip_cr".into(),
                labels: vec![
                    NotificationLabel::RegionCompleted(StateId::new("ARR"), 0),
                    NotificationLabel::RegionCompleted(StateId::new("ARR"), 1),
                ],
                condition: Some(
                    selfserv_expr::parse("near(major_attraction, accommodation)").unwrap(),
                ),
                actions: vec![],
            }],
            all_states: vec![StateId::new("FC"), StateId::new("AS"), StateId::new("CR")],
        };
        let back =
            WrapperTable::from_xml(&selfserv_xml::parse(&w.to_xml().to_xml()).unwrap()).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn decode_rejects_wrong_roots() {
        assert!(RoutingTable::from_xml(&Element::new("nope")).is_err());
        assert!(WrapperTable::from_xml(&Element::new("nope")).is_err());
    }

    #[test]
    fn postprocessing_notifications_iterator() {
        let t = sample_table();
        assert_eq!(t.postprocessings[0].notifications().count(), 1);
    }
}
