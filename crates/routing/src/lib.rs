//! # selfserv-routing
//!
//! Routing tables and their static generation from statecharts — the
//! algorithmic core of SELF-SERV's peer-to-peer orchestration.
//!
//! Per the paper (Section 2): "The knowledge required at runtime by each of
//! the coordinators involved in a composite service (e.g., location, peers,
//! and control flow routing policies) is statically extracted from the
//! service's statechart and represented in a simple tabular form called
//! routing tables. Routing tables contain preconditions and
//! postprocessings. Preconditions are used to determine when a service
//! should be executed. Postprocessings are used to determine what should be
//! done after service execution. In this way, the coordinators do not need
//! to implement any complex scheduling algorithm."
//!
//! ## The model implemented here
//!
//! Coordinators exchange **notifications** carrying a
//! [`NotificationLabel`] plus the instance's current variables:
//!
//! * `Completed(S)` — state `S` finished (also emitted *on behalf of* a
//!   compound state when a nested state routes into its final state);
//! * `RegionCompleted(P, r)` — region `r` of concurrent state `P` finished;
//! * `Start` — the composite wrapper started an instance;
//! * `Event(name)` — a statechart-level event was produced.
//!
//! A [`Precondition`] alternative is an AND-set of labels (this is how
//! AND-joins need no central scheduler: each successor of a concurrent
//! state independently collects all `RegionCompleted` labels) plus an
//! optional receiver-side condition.
//!
//! A [`Postprocessing`] corresponds to one outgoing transition of the
//! state: a sender-side guard choosing the transition (exclusive choice is
//! decided at the sender, so untaken branches cost no messages), the
//! transition's variable-assignment actions, and cascade-expanded
//! [`RouteBranch`]es listing exactly which peers to notify with which
//! label.
//!
//! ## Guard placement
//!
//! A transition leaving a *basic* state is guarded at the sender (it has
//! the variables). A transition leaving a *compound or concurrent* state is
//! folded into the tables of the states that route into its final states,
//! and its guard moves to the **receiver's precondition** — necessarily so
//! for AND-joins, where the guard may reference variables produced in a
//! different region that only exist after the join merges them (e.g. the
//! travel scenario's `near(major_attraction, accommodation)` combines
//! outputs of both regions).

mod generate;
mod table;

pub use generate::{generate, verify_plan, RoutingError, RoutingPlan};
pub use table::{
    Notification, NotificationLabel, Participant, Postprocessing, Precondition, RouteBranch,
    RoutingTable, WrapperTable,
};

#[cfg(test)]
mod proptests;
