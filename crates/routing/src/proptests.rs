//! Property tests: generated plans are internally consistent across the
//! synthetic chart families.

use crate::generate::{generate, verify_plan};
use proptest::prelude::*;
use selfserv_statechart::synth;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sequence_plans_verify(n in 1usize..24) {
        let plan = generate(&synth::sequence(n)).unwrap();
        prop_assert!(verify_plan(&plan).is_empty());
        prop_assert_eq!(plan.tables.len(), n);
    }

    #[test]
    fn xor_plans_verify(n in 1usize..16) {
        let plan = generate(&synth::xor_choice(n)).unwrap();
        prop_assert!(verify_plan(&plan).is_empty());
        // One postprocessing per branch on the choice state.
        let choice = plan.table(&"C".into()).unwrap();
        prop_assert_eq!(choice.postprocessings.len(), n);
    }

    #[test]
    fn parallel_plans_verify(n in 2usize..12) {
        let plan = generate(&synth::parallel(n)).unwrap();
        prop_assert!(verify_plan(&plan).is_empty());
        prop_assert_eq!(plan.wrapper.start_targets.len(), n);
        prop_assert_eq!(plan.wrapper.finish_alternatives[0].labels.len(), n);
    }

    #[test]
    fn nested_plans_verify(depth in 1usize..8) {
        let plan = generate(&synth::nested(depth)).unwrap();
        prop_assert!(verify_plan(&plan).is_empty());
    }

    #[test]
    fn ladder_plans_verify(width in 2usize..5, depth in 1usize..4) {
        let plan = generate(&synth::ladder(width, depth)).unwrap();
        prop_assert!(verify_plan(&plan).is_empty());
    }

    #[test]
    fn plan_xml_round_trips(n in 1usize..10) {
        for sc in [synth::sequence(n.max(1)), synth::xor_choice(n.max(1)), synth::parallel(n.max(2))] {
            let plan = generate(&sc).unwrap();
            let back = crate::RoutingPlan::from_xml(&plan.to_xml()).unwrap();
            prop_assert_eq!(back, plan);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomly nested charts (compounds/concurrents up to depth 3) always
    /// yield internally consistent plans.
    #[test]
    fn recursive_random_plans_verify(seed in 0u64..5000, budget in 1usize..16) {
        let sc = synth::recursive(seed, budget, 3);
        let plan = generate(&sc).unwrap();
        let problems = verify_plan(&plan);
        prop_assert!(problems.is_empty(), "seed {seed}: {problems:?}");
    }

    /// Generation is deterministic: same chart, same plan.
    #[test]
    fn generation_is_deterministic(seed in 0u64..500) {
        let sc = synth::recursive(seed, 8, 3);
        prop_assert_eq!(generate(&sc).unwrap(), generate(&sc).unwrap());
    }
}
