//! Static generation of routing tables from a statechart — the service
//! deployer's algorithm ("generating the control-flow routing tables of
//! each state of the composite service statechart").

use crate::table::{
    Notification, NotificationLabel, Participant, Postprocessing, Precondition, RouteBranch,
    RoutingTable, WrapperTable,
};
use selfserv_expr::Expr;
use selfserv_statechart::{Assignment, StateId, StateKind, Statechart, Transition};
use std::collections::BTreeMap;
use std::fmt;

/// Safety bound on cascade depth; exceeded only by pathological charts
/// where regions complete instantaneously in a cycle.
const MAX_CASCADE_DEPTH: usize = 64;

/// Bound on the cartesian expansion of AND-join label alternatives.
const MAX_JOIN_COMBOS: usize = 64;

/// Cartesian product of per-region label alternatives, each combination
/// flattened into one label set.
fn cartesian(per_region: &[Vec<Vec<NotificationLabel>>]) -> Vec<Vec<NotificationLabel>> {
    let mut combos: Vec<Vec<NotificationLabel>> = vec![Vec::new()];
    for region_alts in per_region {
        let mut next = Vec::with_capacity(combos.len() * region_alts.len().max(1));
        for combo in &combos {
            for alt in region_alts {
                let mut merged = combo.clone();
                merged.extend(alt.iter().cloned());
                next.push(merged);
            }
        }
        combos = next;
        if combos.len() > MAX_JOIN_COMBOS * 4 {
            break; // callers enforce the hard limit with a clear error
        }
    }
    combos
}

/// Errors from routing-table generation.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingError {
    /// The statechart failed validation; tables cannot be generated.
    InvalidStatechart(Vec<String>),
    /// The chart uses a shape the cascade expansion cannot compile.
    Unsupported(String),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::InvalidStatechart(errors) => {
                write!(f, "statechart is invalid: {}", errors.join("; "))
            }
            RoutingError::Unsupported(m) => write!(f, "unsupported statechart shape: {m}"),
        }
    }
}

impl std::error::Error for RoutingError {}

/// The full routing knowledge for one composite service: one table per
/// basic state plus the wrapper's table.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingPlan {
    /// The composite service name.
    pub composite: String,
    /// Per-state tables (basic states only: tasks and choices).
    pub tables: BTreeMap<StateId, RoutingTable>,
    /// The wrapper's start/finish knowledge.
    pub wrapper: WrapperTable,
}

impl RoutingPlan {
    /// Table for one state.
    pub fn table(&self, state: &StateId) -> Option<&RoutingTable> {
        self.tables.get(state)
    }

    /// Total number of precondition alternatives across all tables —
    /// a size measure for experiment E2.
    pub fn total_preconditions(&self) -> usize {
        self.tables
            .values()
            .map(|t| t.preconditions.len())
            .sum::<usize>()
            + self.wrapper.finish_alternatives.len()
    }

    /// Total number of notifications that would be emitted if every branch
    /// fired once.
    pub fn total_notifications(&self) -> usize {
        self.tables
            .values()
            .flat_map(|t| t.postprocessings.iter())
            .map(|p| p.notifications().count())
            .sum()
    }

    /// Encodes the whole plan as one XML document (what the deployer
    /// uploads, per host, in the original).
    pub fn to_xml(&self) -> selfserv_xml::Element {
        let mut e =
            selfserv_xml::Element::new("routingPlan").with_attr("composite", &self.composite);
        e.push_child(self.wrapper.to_xml());
        for t in self.tables.values() {
            e.push_child(t.to_xml());
        }
        e
    }

    /// Decodes a plan from XML.
    pub fn from_xml(e: &selfserv_xml::Element) -> Result<Self, String> {
        if e.name != "routingPlan" {
            return Err(format!("expected <routingPlan>, got <{}>", e.name));
        }
        let wrapper = WrapperTable::from_xml(
            e.find("wrapperTable")
                .ok_or_else(|| "missing <wrapperTable>".to_string())?,
        )?;
        let mut tables = BTreeMap::new();
        for te in e.find_all("routingTable") {
            let t = RoutingTable::from_xml(te)?;
            tables.insert(t.state.clone(), t);
        }
        Ok(RoutingPlan {
            composite: e.require_attr("composite")?.to_string(),
            tables,
            wrapper,
        })
    }
}

/// One terminal of the cascade expansion: who must be notified, what they
/// await, and what they check/apply on activation.
#[derive(Debug, Clone)]
struct RouteEnd {
    receiver: Participant,
    await_labels: Vec<NotificationLabel>,
    condition: Option<Expr>,
    actions: Vec<Assignment>,
    id_path: String,
}

struct Generator<'a> {
    sc: &'a Statechart,
}

impl<'a> Generator<'a> {
    /// Expands a transition target into its route ends.
    ///
    /// `base` is the emission label once fixed (set at the first final
    /// crossing, or by the caller for direct targets); `extras` carries
    /// AND-join labels accumulated from concurrent parents; `condition`
    /// and `actions` accumulate receiver-side guard/action chains from
    /// transitions out of compound/concurrent parents folded into this
    /// route.
    #[allow(clippy::too_many_arguments)]
    fn route_ends(
        &self,
        target: &StateId,
        base: NotificationLabel,
        base_fixed: bool,
        extras: &[NotificationLabel],
        condition: Option<Expr>,
        actions: &[Assignment],
        id_path: String,
        depth: usize,
        out: &mut Vec<RouteEnd>,
    ) -> Result<(), RoutingError> {
        if depth > MAX_CASCADE_DEPTH {
            return Err(RoutingError::Unsupported(format!(
                "cascade deeper than {MAX_CASCADE_DEPTH} while expanding '{id_path}' — \
                 instantaneous completion cycle?"
            )));
        }
        let state = self.sc.state(target).ok_or_else(|| {
            RoutingError::Unsupported(format!("transition references missing state '{target}'"))
        })?;
        match &state.kind {
            StateKind::Task(_) | StateKind::Choice => {
                let mut await_labels = vec![base];
                await_labels.extend(extras.iter().cloned());
                out.push(RouteEnd {
                    receiver: Participant::State(target.clone()),
                    await_labels,
                    condition,
                    actions: actions.to_vec(),
                    id_path,
                });
                Ok(())
            }
            StateKind::Compound { initial } => self.route_ends(
                initial,
                base,
                base_fixed,
                extras,
                condition,
                actions,
                id_path,
                depth + 1,
                out,
            ),
            StateKind::Concurrent { regions } => {
                for region in regions {
                    self.route_ends(
                        &region.initial,
                        base.clone(),
                        base_fixed,
                        extras,
                        condition.clone(),
                        actions,
                        id_path.clone(),
                        depth + 1,
                        out,
                    )?;
                }
                Ok(())
            }
            StateKind::Final => {
                match &state.parent {
                    None => {
                        // Root final: the wrapper is the receiver.
                        let mut await_labels = vec![base];
                        await_labels.extend(extras.iter().cloned());
                        out.push(RouteEnd {
                            receiver: Participant::Wrapper,
                            await_labels,
                            condition,
                            actions: actions.to_vec(),
                            id_path,
                        });
                        Ok(())
                    }
                    Some(parent_id) => {
                        let parent = self.sc.state(parent_id).ok_or_else(|| {
                            RoutingError::Unsupported(format!(
                                "final '{target}' has missing parent '{parent_id}'"
                            ))
                        })?;
                        // Fix the emission label at the first final
                        // crossing; deeper crossings only add conditions
                        // and AND-join extras.
                        let (label, mut new_extras) = match &parent.kind {
                            StateKind::Compound { .. } => {
                                let label = if base_fixed {
                                    base
                                } else {
                                    NotificationLabel::Completed(parent_id.clone())
                                };
                                (label, extras.to_vec())
                            }
                            StateKind::Concurrent { regions } => {
                                let label = if base_fixed {
                                    base
                                } else {
                                    NotificationLabel::RegionCompleted(
                                        parent_id.clone(),
                                        state.region,
                                    )
                                };
                                // AND-join: the receivers must also await
                                // the labels that actually signal the
                                // sibling regions' completion. Those
                                // depend on the sibling regions' internal
                                // paths (a region ending in a nested
                                // compound emits that compound's label,
                                // not the canonical region label), and a
                                // region with alternative shapes yields
                                // alternative label sets — expanded as a
                                // cartesian product below.
                                let mut sibling_alts: Vec<Vec<Vec<NotificationLabel>>> = Vec::new();
                                for idx in 0..regions.len() {
                                    if idx != state.region {
                                        sibling_alts.push(self.region_dnf(
                                            parent_id,
                                            idx,
                                            &mut std::collections::HashSet::new(),
                                            depth + 1,
                                        )?);
                                    }
                                }
                                let combos = cartesian(&sibling_alts);
                                if combos.len() > MAX_JOIN_COMBOS {
                                    return Err(RoutingError::Unsupported(format!(
                                        "AND-join of '{parent_id}' expands to {} label                                          combinations (max {MAX_JOIN_COMBOS})",
                                        combos.len()
                                    )));
                                }
                                if combos.len() > 1 {
                                    // Expand each combination as its own
                                    // route; the single-combo fast path
                                    // falls through below.
                                    for combo in combos {
                                        let mut ex = extras.to_vec();
                                        ex.extend(combo);
                                        ex.sort();
                                        ex.dedup();
                                        self.cascade_outgoing(
                                            parent_id,
                                            label.clone(),
                                            &ex,
                                            &condition,
                                            actions,
                                            &id_path,
                                            depth,
                                            out,
                                        )?;
                                    }
                                    return Ok(());
                                }
                                let mut ex = extras.to_vec();
                                if let Some(combo) = combos.into_iter().next() {
                                    ex.extend(combo);
                                }
                                (label, ex)
                            }
                            other => {
                                return Err(RoutingError::Unsupported(format!(
                                    "final '{target}' nested under {} state '{parent_id}'",
                                    other.kind_name()
                                )))
                            }
                        };
                        new_extras.sort();
                        new_extras.dedup();
                        self.cascade_outgoing(
                            parent_id,
                            label,
                            &new_extras,
                            &condition,
                            actions,
                            &id_path,
                            depth,
                            out,
                        )
                    }
                }
            }
        }
    }

    /// Folds every outgoing transition of a completed container state into
    /// the route (the parent has completed; its successors take over).
    #[allow(clippy::too_many_arguments)]
    fn cascade_outgoing(
        &self,
        parent_id: &StateId,
        label: NotificationLabel,
        extras: &[NotificationLabel],
        condition: &Option<Expr>,
        actions: &[Assignment],
        id_path: &str,
        depth: usize,
        out: &mut Vec<RouteEnd>,
    ) -> Result<(), RoutingError> {
        let outgoing = self.sc.outgoing(parent_id);
        if outgoing.is_empty() {
            return Err(RoutingError::Unsupported(format!(
                "state '{parent_id}' completes but has no outgoing transitions"
            )));
        }
        for t2 in outgoing {
            let cond = Expr::and_opt(condition.clone(), t2.guard.clone());
            let mut acts = actions.to_vec();
            acts.extend(t2.actions.iter().cloned());
            let mut labels_for_event = extras.to_vec();
            if let Some(ev) = &t2.event {
                labels_for_event.push(NotificationLabel::Event(ev.clone()));
            }
            self.route_ends(
                &t2.target,
                label.clone(),
                true,
                &labels_for_event,
                cond,
                &acts,
                format!("{id_path}/{}", t2.id),
                depth + 1,
                out,
            )?;
        }
        Ok(())
    }

    /// The label sets (DNF alternatives) that signal completion of one
    /// region: which labels an AND-join receiver must await for that
    /// region. A region whose last state is basic emits the canonical
    /// region label; a region ending in a nested compound/concurrent emits
    /// that container's completion labels instead (the emission label is
    /// fixed at the *first* final crossing).
    fn region_dnf(
        &self,
        parent_id: &StateId,
        region: usize,
        visited: &mut std::collections::HashSet<StateId>,
        depth: usize,
    ) -> Result<Vec<Vec<NotificationLabel>>, RoutingError> {
        if depth > MAX_CASCADE_DEPTH {
            return Err(RoutingError::Unsupported(
                "completion-label analysis exceeded the cascade depth bound".to_string(),
            ));
        }
        let parent = self
            .sc
            .state(parent_id)
            .ok_or_else(|| RoutingError::Unsupported(format!("missing state '{parent_id}'")))?;
        let region_label = match &parent.kind {
            StateKind::Compound { .. } => NotificationLabel::Completed(parent_id.clone()),
            StateKind::Concurrent { .. } => {
                NotificationLabel::RegionCompleted(parent_id.clone(), region)
            }
            other => {
                return Err(RoutingError::Unsupported(format!(
                    "'{parent_id}' is a {} state, not a container",
                    other.kind_name()
                )))
            }
        };
        let mut alternatives: Vec<Vec<NotificationLabel>> = Vec::new();
        let mut has_basic_path = false;
        for final_state in self.sc.final_states_of(Some(parent_id), region) {
            for t in self.sc.incoming(&final_state.id) {
                let Some(source) = self.sc.state(&t.source) else {
                    continue;
                };
                match &source.kind {
                    StateKind::Task(_) | StateKind::Choice => has_basic_path = true,
                    StateKind::Compound { .. } | StateKind::Concurrent { .. } => {
                        if visited.insert(source.id.clone()) {
                            alternatives.extend(self.completion_dnf(
                                &source.id,
                                visited,
                                depth + 1,
                            )?);
                        }
                    }
                    StateKind::Final => {}
                }
            }
        }
        if has_basic_path {
            alternatives.push(vec![region_label]);
        }
        alternatives.sort();
        alternatives.dedup();
        if alternatives.is_empty() {
            // No path reaches a final: validation reports this; keep the
            // canonical label so generation can continue.
            alternatives.push(vec![match &parent.kind {
                StateKind::Concurrent { .. } => {
                    NotificationLabel::RegionCompleted(parent_id.clone(), region)
                }
                _ => NotificationLabel::Completed(parent_id.clone()),
            }]);
        }
        Ok(alternatives)
    }

    /// DNF of labels signalling a container state's completion.
    fn completion_dnf(
        &self,
        state_id: &StateId,
        visited: &mut std::collections::HashSet<StateId>,
        depth: usize,
    ) -> Result<Vec<Vec<NotificationLabel>>, RoutingError> {
        let state = self
            .sc
            .state(state_id)
            .ok_or_else(|| RoutingError::Unsupported(format!("missing state '{state_id}'")))?;
        match &state.kind {
            StateKind::Task(_) | StateKind::Choice => {
                Ok(vec![vec![NotificationLabel::Completed(state_id.clone())]])
            }
            StateKind::Compound { .. } => self.region_dnf(state_id, 0, visited, depth + 1),
            StateKind::Concurrent { regions } => {
                // Every region must complete: cartesian product.
                let mut per_region = Vec::with_capacity(regions.len());
                for idx in 0..regions.len() {
                    per_region.push(self.region_dnf(state_id, idx, visited, depth + 1)?);
                }
                let combos = cartesian(&per_region);
                if combos.len() > MAX_JOIN_COMBOS {
                    return Err(RoutingError::Unsupported(format!(
                        "completion of '{state_id}' expands to {} label combinations",
                        combos.len()
                    )));
                }
                Ok(combos)
            }
            StateKind::Final => Err(RoutingError::Unsupported(format!(
                "completion labels requested for final state '{state_id}'"
            ))),
        }
    }

    /// Expands one outgoing transition of basic state `source` into a
    /// postprocessing row plus the receivers' precondition alternatives.
    fn compile_transition(
        &self,
        source: &StateId,
        t: &Transition,
    ) -> Result<(Postprocessing, Vec<RouteEnd>), RoutingError> {
        let mut ends = Vec::new();
        let base = NotificationLabel::Completed(source.clone());
        let extras: Vec<NotificationLabel> = match &t.event {
            Some(ev) => vec![NotificationLabel::Event(ev.clone())],
            None => Vec::new(),
        };
        self.route_ends(
            &t.target,
            base,
            false,
            &extras,
            None,
            &[],
            format!("via:{}", t.id),
            0,
            &mut ends,
        )?;
        let notifications: Vec<Notification> = ends
            .iter()
            .map(|e| Notification {
                target: e.receiver.clone(),
                label: e.await_labels[0].clone(),
            })
            .collect();
        let post = Postprocessing {
            transition_id: t.id.clone(),
            guard: t.guard.clone(),
            event: t.event.clone(),
            actions: t.actions.clone(),
            branches: vec![RouteBranch { notifications }],
        };
        Ok((post, ends))
    }
}

/// Generates the routing plan for a statechart. The chart must pass
/// [`Statechart::validate`] without errors.
pub fn generate(sc: &Statechart) -> Result<RoutingPlan, RoutingError> {
    let report = sc.validate();
    if !report.is_ok() {
        return Err(RoutingError::InvalidStatechart(
            report.errors().map(|i| i.to_string()).collect(),
        ));
    }
    let gen = Generator { sc };
    let mut tables: BTreeMap<StateId, RoutingTable> = BTreeMap::new();
    let mut wrapper = WrapperTable::default();

    // One (initially empty) table per basic state.
    for state in sc.states() {
        if matches!(state.kind, StateKind::Task(_) | StateKind::Choice) {
            tables.insert(
                state.id.clone(),
                RoutingTable {
                    state: state.id.clone(),
                    ..Default::default()
                },
            );
            wrapper.all_states.push(state.id.clone());
        }
    }

    // Start routes: the wrapper notifies the entry states of the root
    // initial with `Start`.
    {
        let mut ends = Vec::new();
        gen.route_ends(
            &sc.initial,
            NotificationLabel::Start,
            true,
            &[],
            None,
            &[],
            "start".to_string(),
            0,
            &mut ends,
        )?;
        for end in ends {
            match &end.receiver {
                Participant::State(s) => {
                    wrapper.start_targets.push(s.clone());
                    add_alternative(tables.get_mut(s).expect("basic state has table"), &end);
                }
                Participant::Wrapper => {
                    return Err(RoutingError::Unsupported(
                        "the root initial completes the composite immediately".to_string(),
                    ))
                }
            }
        }
    }

    // Compile every outgoing transition of every basic state.
    for state in sc.states() {
        if !matches!(state.kind, StateKind::Task(_) | StateKind::Choice) {
            continue;
        }
        for t in sc.outgoing(&state.id) {
            let (post, ends) = gen.compile_transition(&state.id, t)?;
            for end in &ends {
                match &end.receiver {
                    Participant::State(s) => {
                        let table = tables.get_mut(s).ok_or_else(|| {
                            RoutingError::Unsupported(format!(
                                "route targets '{s}', which has no coordinator"
                            ))
                        })?;
                        add_alternative(table, end);
                    }
                    Participant::Wrapper => {
                        add_wrapper_alternative(&mut wrapper, end);
                    }
                }
            }
            tables
                .get_mut(&state.id)
                .expect("basic state has table")
                .postprocessings
                .push(post);
        }
    }

    Ok(RoutingPlan {
        composite: sc.name.clone(),
        tables,
        wrapper,
    })
}

fn normalised_labels(mut labels: Vec<NotificationLabel>) -> Vec<NotificationLabel> {
    labels.sort();
    labels.dedup();
    labels
}

fn same_alternative(a: &Precondition, labels: &[NotificationLabel], cond: &Option<Expr>) -> bool {
    let mut a_labels = a.labels.clone();
    a_labels.sort();
    a_labels == labels
        && a.condition.as_ref().map(|c| c.to_string()) == cond.as_ref().map(|c| c.to_string())
}

fn add_alternative(table: &mut RoutingTable, end: &RouteEnd) {
    let labels = normalised_labels(end.await_labels.clone());
    if table
        .preconditions
        .iter()
        .any(|p| same_alternative(p, &labels, &end.condition))
    {
        return;
    }
    table.preconditions.push(Precondition {
        id: end.id_path.clone(),
        labels,
        condition: end.condition.clone(),
        actions: end.actions.clone(),
    });
}

fn add_wrapper_alternative(wrapper: &mut WrapperTable, end: &RouteEnd) {
    let labels = normalised_labels(end.await_labels.clone());
    if wrapper
        .finish_alternatives
        .iter()
        .any(|p| same_alternative(p, &labels, &end.condition))
    {
        return;
    }
    wrapper.finish_alternatives.push(Precondition {
        id: end.id_path.clone(),
        labels,
        condition: end.condition.clone(),
        actions: end.actions.clone(),
    });
}

/// Checks plan consistency: every emitted notification is awaited by some
/// alternative at its receiver, and every non-start alternative has at
/// least one potential emitter. Returns human-readable violations (empty =
/// consistent). Used by tests and the deployer's sanity pass.
pub fn verify_plan(plan: &RoutingPlan) -> Vec<String> {
    let mut problems = Vec::new();
    // Emission → awaited.
    for table in plan.tables.values() {
        for post in &table.postprocessings {
            for n in post.notifications() {
                let awaited = match &n.target {
                    Participant::State(s) => match plan.tables.get(s) {
                        Some(t) => t.preconditions.iter().any(|p| p.labels.contains(&n.label)),
                        None => false,
                    },
                    Participant::Wrapper => plan
                        .wrapper
                        .finish_alternatives
                        .iter()
                        .any(|p| p.labels.contains(&n.label)),
                };
                if !awaited {
                    problems.push(format!(
                        "state '{}' transition '{}' notifies {} with label {} but no \
                         alternative there awaits it",
                        table.state, post.transition_id, n.target, n.label
                    ));
                }
            }
        }
    }
    // Awaited → emitted (Start labels come from the wrapper).
    let mut emitted: Vec<(Participant, NotificationLabel)> = Vec::new();
    for table in plan.tables.values() {
        for post in &table.postprocessings {
            for n in post.notifications() {
                emitted.push((n.target.clone(), n.label.clone()));
            }
        }
    }
    for s in &plan.wrapper.start_targets {
        emitted.push((Participant::State(s.clone()), NotificationLabel::Start));
    }
    for table in plan.tables.values() {
        for pre in &table.preconditions {
            for label in &pre.labels {
                if matches!(label, NotificationLabel::Event(_)) {
                    continue; // events are raised externally
                }
                let me = Participant::State(table.state.clone());
                if !emitted.iter().any(|(t, l)| *t == me && l == label) {
                    problems.push(format!(
                        "state '{}' awaits {} but nothing emits it",
                        table.state, label
                    ));
                }
            }
        }
    }
    for pre in &plan.wrapper.finish_alternatives {
        for label in &pre.labels {
            if matches!(label, NotificationLabel::Event(_)) {
                continue;
            }
            if !emitted
                .iter()
                .any(|(t, l)| *t == Participant::Wrapper && l == label)
            {
                problems.push(format!("wrapper awaits {label} but nothing emits it"));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_statechart::synth;
    use selfserv_statechart::travel::travel_statechart;

    fn label_done(s: &str) -> NotificationLabel {
        NotificationLabel::Completed(StateId::new(s))
    }

    fn label_region(s: &str, r: usize) -> NotificationLabel {
        NotificationLabel::RegionCompleted(StateId::new(s), r)
    }

    #[test]
    fn sequence_plan_shape() {
        let sc = synth::sequence(3);
        let plan = generate(&sc).unwrap();
        assert_eq!(plan.tables.len(), 3);
        assert_eq!(plan.wrapper.start_targets, vec![StateId::new("s0")]);
        // s1 awaits completion of s0.
        let t1 = plan.table(&StateId::new("s1")).unwrap();
        assert_eq!(t1.preconditions.len(), 1);
        assert_eq!(t1.preconditions[0].labels, vec![label_done("s0")]);
        // s2 notifies the wrapper.
        let t2 = plan.table(&StateId::new("s2")).unwrap();
        let targets: Vec<_> = t2.postprocessings[0].notifications().collect();
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].target, Participant::Wrapper);
        assert_eq!(targets[0].label, label_done("s2"));
        assert!(verify_plan(&plan).is_empty(), "{:?}", verify_plan(&plan));
    }

    #[test]
    fn xor_plan_guards_stay_at_sender() {
        let sc = synth::xor_choice(3);
        let plan = generate(&sc).unwrap();
        let choice = plan.table(&StateId::new("C")).unwrap();
        assert_eq!(choice.postprocessings.len(), 3);
        for (i, post) in choice.postprocessings.iter().enumerate() {
            assert_eq!(
                post.guard.as_ref().unwrap().to_string(),
                format!("branch == {i}")
            );
            assert_eq!(post.notifications().count(), 1);
        }
        // Branch tasks await the choice without receiver-side conditions.
        let s0 = plan.table(&StateId::new("s0")).unwrap();
        assert_eq!(s0.preconditions.len(), 1);
        assert!(s0.preconditions[0].condition.is_none());
        assert!(verify_plan(&plan).is_empty());
    }

    #[test]
    fn parallel_plan_has_and_join() {
        let sc = synth::parallel(3);
        let plan = generate(&sc).unwrap();
        // Start fans out to all three region tasks.
        assert_eq!(plan.wrapper.start_targets.len(), 3);
        // Each task's completion routes to the wrapper awaiting all three
        // region labels.
        assert_eq!(plan.wrapper.finish_alternatives.len(), 1);
        let fin = &plan.wrapper.finish_alternatives[0];
        let mut expected: Vec<NotificationLabel> = (0..3).map(|i| label_region("P", i)).collect();
        expected.sort();
        assert_eq!(fin.labels, expected);
        assert!(verify_plan(&plan).is_empty());
    }

    #[test]
    fn travel_plan_matches_paper_structure() {
        let sc = travel_statechart();
        let plan = generate(&sc).unwrap();
        assert!(verify_plan(&plan).is_empty(), "{:?}", verify_plan(&plan));

        // Wrapper kicks off both regions of ARR: flight choice + search.
        let mut starts = plan.wrapper.start_targets.clone();
        starts.sort();
        assert_eq!(starts, vec![StateId::new("AS"), StateId::new("FC")]);

        // FC's two guarded branches go to DFB and (entry of ITA =) IFB.
        let fc = plan.table(&StateId::new("FC")).unwrap();
        assert_eq!(fc.postprocessings.len(), 2);
        let dom = &fc.postprocessings[0];
        assert_eq!(
            dom.guard.as_ref().unwrap().to_string(),
            "domestic(destination)"
        );
        assert_eq!(
            dom.notifications().next().unwrap().target,
            Participant::State(StateId::new("DFB"))
        );
        let intl = &fc.postprocessings[1];
        assert_eq!(
            intl.notifications().next().unwrap().target,
            Participant::State(StateId::new("IFB")),
            "entry into compound ITA resolves to its initial state IFB"
        );

        // AB is activated either by DFB or by ITA's (cascaded) completion.
        let ab = plan.table(&StateId::new("AB")).unwrap();
        let mut ab_label_sets: Vec<Vec<String>> = ab
            .preconditions
            .iter()
            .map(|p| p.labels.iter().map(|l| l.encode()).collect())
            .collect();
        ab_label_sets.sort();
        assert_eq!(
            ab_label_sets,
            vec![vec!["done:DFB".to_string()], vec!["done:ITA".to_string()]]
        );

        // TI (last inside ITA) emits Completed(ITA) on behalf of the
        // compound.
        let ti = plan.table(&StateId::new("TI")).unwrap();
        let n: Vec<_> = ti.postprocessings[0].notifications().collect();
        assert_eq!(n[0].label, label_done("ITA"));
        assert_eq!(n[0].target, Participant::State(StateId::new("AB")));

        // AB and AS notify both CR and the wrapper with their region
        // labels; CR awaits the AND-join with the receiver-side near()
        // guard.
        let cr = plan.table(&StateId::new("CR")).unwrap();
        assert_eq!(cr.preconditions.len(), 1);
        let pre = &cr.preconditions[0];
        let mut expected = vec![label_region("ARR", 0), label_region("ARR", 1)];
        expected.sort();
        assert_eq!(pre.labels, expected);
        assert_eq!(
            pre.condition.as_ref().unwrap().to_string(),
            "not near(major_attraction, accommodation)"
        );

        // Wrapper finish alternatives: skip-CR path (near == true, joined)
        // and CR completion.
        assert_eq!(plan.wrapper.finish_alternatives.len(), 2);
        let near_alt = plan
            .wrapper
            .finish_alternatives
            .iter()
            .find(|p| p.labels.len() == 2)
            .expect("AND-join finish alternative");
        assert_eq!(
            near_alt.condition.as_ref().unwrap().to_string(),
            "near(major_attraction, accommodation)"
        );
        let cr_alt = plan
            .wrapper
            .finish_alternatives
            .iter()
            .find(|p| p.labels == vec![label_done("CR")])
            .expect("CR completion finish alternative");
        assert!(cr_alt.condition.is_none());

        // The AB sender notifies both potential receivers (CR + wrapper).
        let ab_targets: Vec<String> = ab.postprocessings[0]
            .notifications()
            .map(|n| n.target.to_string())
            .collect();
        assert!(
            ab_targets.contains(&"state:CR".to_string()),
            "{ab_targets:?}"
        );
        assert!(
            ab_targets.contains(&"wrapper".to_string()),
            "{ab_targets:?}"
        );
    }

    #[test]
    fn nested_plan_cascades_completion() {
        let sc = synth::nested(3);
        let plan = generate(&sc).unwrap();
        // The single inner task's completion cascades through all three
        // compound levels straight to the wrapper.
        let s0 = plan.table(&StateId::new("s0")).unwrap();
        let notes: Vec<_> = s0
            .postprocessings
            .iter()
            .flat_map(|p| p.notifications())
            .collect();
        assert!(notes.iter().any(|n| n.target == Participant::Wrapper));
        assert!(verify_plan(&plan).is_empty(), "{:?}", verify_plan(&plan));
    }

    #[test]
    fn ladder_plan_verifies() {
        let sc = synth::ladder(3, 2);
        let plan = generate(&sc).unwrap();
        assert!(verify_plan(&plan).is_empty(), "{:?}", verify_plan(&plan));
        // Stage-1 tasks await the AND-join of stage 0.
        let s_next = plan.table(&StateId::new("P1s0")).unwrap();
        assert_eq!(s_next.preconditions.len(), 1);
        assert_eq!(s_next.preconditions[0].labels.len(), 3);
    }

    #[test]
    fn invalid_chart_rejected() {
        let sc = selfserv_statechart::StatechartBuilder::new("bad")
            .initial("ghost")
            .choice("a", "A")
            .final_state("f")
            .transition(selfserv_statechart::TransitionDef::new("t", "a", "f"))
            .build()
            .unwrap();
        assert!(matches!(
            generate(&sc),
            Err(RoutingError::InvalidStatechart(_))
        ));
    }

    #[test]
    fn plan_xml_round_trip() {
        let plan = generate(&travel_statechart()).unwrap();
        let xml = plan.to_xml().to_pretty_xml();
        let back = RoutingPlan::from_xml(&selfserv_xml::parse(&xml).unwrap()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn plan_size_metrics() {
        let plan = generate(&synth::sequence(5)).unwrap();
        assert_eq!(plan.total_preconditions(), 5 + 1); // 5 tasks + wrapper finish
        assert_eq!(plan.total_notifications(), 5); // 4 internal + 1 to wrapper
    }

    #[test]
    fn event_transitions_add_event_labels() {
        use selfserv_statechart::{StatechartBuilder, TaskDef, TransitionDef};
        let sc = StatechartBuilder::new("Evt")
            .initial("a")
            .task(TaskDef::new("a", "A").service("S", "op"))
            .task(TaskDef::new("b", "B").service("S2", "op"))
            .final_state("f")
            .transition(TransitionDef::new("t1", "a", "b").event("paymentReceived"))
            .transition(TransitionDef::new("t2", "b", "f"))
            .build()
            .unwrap();
        let plan = generate(&sc).unwrap();
        let b = plan.table(&StateId::new("b")).unwrap();
        assert!(b.preconditions[0]
            .labels
            .contains(&NotificationLabel::Event("paymentReceived".into())));
    }

    #[test]
    fn instant_completion_cycle_is_unsupported() {
        use selfserv_statechart::{StatechartBuilder, TransitionDef};
        // Two sibling compounds whose initials are finals, looping: the
        // cascade never terminates and must be rejected, not loop forever.
        let sc = StatechartBuilder::new("loop")
            .initial("start")
            .choice("start", "start")
            .compound("P", "P", "pf")
            .final_in("P", 0, "pf")
            .compound("Q", "Q", "qf")
            .final_in("Q", 0, "qf")
            .final_state("f")
            .transition(TransitionDef::new("ts", "start", "P"))
            .transition(TransitionDef::new("t1", "P", "Q"))
            .transition(TransitionDef::new("t2", "Q", "P"))
            .transition(TransitionDef::new("t3", "Q", "f").guard("false"))
            .build()
            .unwrap();
        // Depending on validation outcomes this either fails validation or
        // hits the cascade depth guard; both are acceptable rejections.
        assert!(generate(&sc).is_err());
    }
}
