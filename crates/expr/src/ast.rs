//! Expression AST and its round-trippable textual form.

use crate::value::Value;
use std::fmt;

/// Binary operators, in the surface syntax of the guard language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `or`
    Or,
    /// `and`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinOp {
    /// Binding power; higher binds tighter. Comparison operators are
    /// non-associative (enforced by the parser).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
        }
    }

    /// The operator's surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        }
    }

    /// True for operators whose chains associate left (everything except
    /// comparisons, which do not chain at all).
    pub fn is_comparison(self) -> bool {
        self.precedence() == 3
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation, spelled `not`.
    Not,
    /// Arithmetic negation, spelled `-`.
    Neg,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Lit(Value),
    /// A variable reference: one or more dot-separated segments
    /// (`destination`, `booking.price`).
    Var(Vec<String>),
    /// A function/predicate call (`domestic(destination)`).
    Call {
        /// Function name as registered in the environment.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Unary application.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a single-segment variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(vec![name.into()])
    }

    /// Shorthand for a call.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Shorthand for `not e`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(e),
        }
    }

    /// Shorthand for a binary node.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Conjoins two optional guards: the result is satisfied only when both
    /// are. Used by the routing-table generator when a notification path
    /// crosses several guarded transitions.
    pub fn and_opt(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => Some(Expr::bin(BinOp::And, a, b)),
        }
    }

    /// All variable paths referenced by the expression, in first-occurrence
    /// order. The deployer uses this to check that guards only reference
    /// declared statechart variables.
    pub fn referenced_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(path) => {
                let joined = path.join(".");
                if !out.contains(&joined) {
                    out.push(joined);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Unary { expr, .. } => expr.collect_vars(out),
            Expr::Binary { left, right, .. } => {
                left.collect_vars(out);
                right.collect_vars(out);
            }
        }
    }

    /// All function names referenced by the expression, in first-occurrence
    /// order. The deployer uses this to check the predicates are registered
    /// before a composite service is activated.
    pub fn referenced_fns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_fns(&mut out);
        out
    }

    fn collect_fns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Call { name, args } => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
                for a in args {
                    a.collect_fns(out);
                }
            }
            Expr::Unary { expr, .. } => expr.collect_fns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_fns(out);
                right.collect_fns(out);
            }
        }
    }

    /// Number of AST nodes; used by benches to size generated guards.
    pub fn size(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(_) => 1,
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Unary { expr, .. } => 1 + expr.size(),
            Expr::Binary { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(path) => write!(f, "{}", path.join(".")),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::Unary { op, expr } => {
                // Unary binds tighter than every binary operator.
                const UNARY_PREC: u8 = 6;
                let needs_parens = parent_prec > UNARY_PREC;
                if needs_parens {
                    write!(f, "(")?;
                }
                match op {
                    UnOp::Not => write!(f, "not ")?,
                    UnOp::Neg => write!(f, "-")?,
                }
                expr.fmt_prec(f, UNARY_PREC)?;
                if needs_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Binary { op, left, right } => {
                let prec = op.precedence();
                let needs_parens =
                    prec < parent_prec || (prec == parent_prec && op.is_comparison());
                if needs_parens {
                    write!(f, "(")?;
                }
                left.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Left-associative: the right child needs parens at equal
                // precedence. Comparisons never chain so equal precedence on
                // the right also takes parens.
                right.fmt_prec(f, prec + 1)?;
                if needs_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Prints the expression in a form that [`crate::parse`] reads back to
    /// an identical AST (verified by property tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_flat_call() {
        let e = Expr::call("domestic", vec![Expr::var("destination")]);
        assert_eq!(e.to_string(), "domestic(destination)");
    }

    #[test]
    fn display_respects_precedence() {
        // (a or b) and c needs parens; a or (b and c) does not.
        let a = Expr::var("a");
        let b = Expr::var("b");
        let c = Expr::var("c");
        let left = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Or, a.clone(), b.clone()),
            c.clone(),
        );
        assert_eq!(left.to_string(), "(a or b) and c");
        let right = Expr::bin(BinOp::Or, a, Expr::bin(BinOp::And, b, c));
        assert_eq!(right.to_string(), "a or b and c");
    }

    #[test]
    fn display_right_assoc_parens() {
        // a - (b - c) needs parens on the right.
        let e = Expr::bin(
            BinOp::Sub,
            Expr::var("a"),
            Expr::bin(BinOp::Sub, Expr::var("b"), Expr::var("c")),
        );
        assert_eq!(e.to_string(), "a - (b - c)");
        // (a - b) - c prints without parens (left-assoc default).
        let e2 = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        assert_eq!(e2.to_string(), "a - b - c");
    }

    #[test]
    fn display_not() {
        let e = Expr::not(Expr::call("near", vec![Expr::var("x"), Expr::var("y")]));
        assert_eq!(e.to_string(), "not near(x, y)");
    }

    #[test]
    fn and_opt_combines() {
        let a = Expr::var("a");
        let b = Expr::var("b");
        assert_eq!(Expr::and_opt(None, None), None);
        assert_eq!(Expr::and_opt(Some(a.clone()), None), Some(a.clone()));
        assert_eq!(
            Expr::and_opt(Some(a.clone()), Some(b.clone()))
                .unwrap()
                .to_string(),
            "a and b"
        );
    }

    #[test]
    fn referenced_vars_and_fns() {
        let e = crate::parse("domestic(destination) and price < budget.max").unwrap();
        assert_eq!(
            e.referenced_vars(),
            vec!["destination", "price", "budget.max"]
        );
        assert_eq!(e.referenced_fns(), vec!["domestic"]);
    }

    #[test]
    fn size_counts_nodes() {
        let e = crate::parse("a and not b").unwrap();
        assert_eq!(e.size(), 4);
    }
}
