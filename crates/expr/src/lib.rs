//! # selfserv-expr
//!
//! The guard/condition expression language of the SELF-SERV platform.
//!
//! Statechart transitions in SELF-SERV carry ECA-rule conditions such as
//! `domestic(destination)` or `not near(major_attraction, accommodation)`
//! (Figure 2 of the paper). The service deployer copies these conditions
//! into routing-table preconditions and postprocessings, and coordinators
//! evaluate them at run time against the variables carried inside
//! notification messages.
//!
//! This crate provides:
//!
//! * [`Value`] — the dynamic value type flowing through compositions
//!   (null / bool / int / float / string / list),
//! * [`Expr`] — the expression AST with a round-trippable [`std::fmt::Display`],
//! * [`parse`] — a Pratt parser for the surface syntax,
//! * [`Expr::eval`] — evaluation against an [`Env`] that resolves
//!   variables and (application-registered) predicate functions,
//! * [`MapEnv`] — a ready-made environment backed by hash maps.
//!
//! ## Syntax
//!
//! ```text
//! expr   := or
//! or     := and ( ('or' | '||') and )*
//! and    := cmp ( ('and' | '&&') cmp )*
//! cmp    := add ( ('=='|'!='|'<'|'<='|'>'|'>=') add )?
//! add    := mul ( ('+'|'-') mul )*
//! mul    := unary ( ('*'|'/'|'%') unary )*
//! unary  := ('not' | '!' | '-') unary | primary
//! primary:= literal | name '(' args ')' | name ('.' name)* | '(' expr ')'
//! ```
//!
//! ## Example
//!
//! ```
//! use selfserv_expr::{parse, MapEnv, Value};
//!
//! let guard = parse("not near(major_attraction, accommodation)").unwrap();
//! let mut env = MapEnv::new();
//! env.set("major_attraction", Value::str("Blue Mountains"));
//! env.set("accommodation", Value::str("Sydney CBD"));
//! env.register_fn("near", |args| {
//!     Ok(Value::Bool(args[0] == args[1])) // toy geography
//! });
//! assert_eq!(guard.eval(&env).unwrap(), Value::Bool(true));
//! ```

mod ast;
mod eval;
mod parser;
mod value;

pub use ast::{BinOp, Expr, UnOp};
pub use eval::{Env, EvalError, MapEnv, NativeFn};
pub use parser::{parse, ParseError};
pub use value::Value;

#[cfg(test)]
mod proptests;
