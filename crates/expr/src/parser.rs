//! Lexer and Pratt parser for the guard language.

use crate::ast::{BinOp, Expr, UnOp};
use crate::value::Value;
use std::fmt;

/// A parse error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the source string.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    True,
    False,
    Null,
    Not,
    And,
    Or,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Op(BinOp),
    Bang,
    Minus,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Token, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.bump();
            }
            let start = self.pos;
            let Some(c) = self.peek() else { break };
            let token = match c {
                '(' => {
                    self.bump();
                    Token::LParen
                }
                ')' => {
                    self.bump();
                    Token::RParen
                }
                '[' => {
                    self.bump();
                    Token::LBracket
                }
                ']' => {
                    self.bump();
                    Token::RBracket
                }
                ',' => {
                    self.bump();
                    Token::Comma
                }
                '.' => {
                    self.bump();
                    Token::Dot
                }
                '+' => {
                    self.bump();
                    Token::Op(BinOp::Add)
                }
                '-' => {
                    self.bump();
                    Token::Minus
                }
                '*' => {
                    self.bump();
                    Token::Op(BinOp::Mul)
                }
                '/' => {
                    self.bump();
                    Token::Op(BinOp::Div)
                }
                '%' => {
                    self.bump();
                    Token::Op(BinOp::Rem)
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Op(BinOp::Eq)
                    } else {
                        return Err(self.err("single '=' is not an operator; use '=='"));
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Op(BinOp::Ne)
                    } else {
                        Token::Bang
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Op(BinOp::Le)
                    } else {
                        Token::Op(BinOp::Lt)
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Op(BinOp::Ge)
                    } else {
                        Token::Op(BinOp::Gt)
                    }
                }
                '&' => {
                    self.bump();
                    if self.peek() == Some('&') {
                        self.bump();
                        Token::And
                    } else {
                        return Err(self.err("single '&' is not an operator; use 'and' or '&&'"));
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        Token::Or
                    } else {
                        return Err(self.err("single '|' is not an operator; use 'or' or '||'"));
                    }
                }
                '"' | '\'' => {
                    let quote = c;
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated string literal")),
                            Some(c) if c == quote => break,
                            Some('\\') => match self.bump() {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some('\\') => s.push('\\'),
                                Some(c) if c == quote => s.push(quote),
                                Some('"') => s.push('"'),
                                Some('\'') => s.push('\''),
                                Some(other) => {
                                    return Err(
                                        self.err(format!("unknown escape '\\{other}' in string"))
                                    )
                                }
                                None => return Err(self.err("unterminated string literal")),
                            },
                            Some(c) => s.push(c),
                        }
                    }
                    Token::Str(s)
                }
                c if c.is_ascii_digit() => {
                    let num_start = self.pos;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        self.bump();
                    }
                    let mut is_float = false;
                    // A '.' is part of the number only if followed by a digit;
                    // this keeps `1.max` (not valid anyway) from mislexing.
                    if self.peek() == Some('.')
                        && self.src[self.pos + 1..]
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_digit())
                    {
                        is_float = true;
                        self.bump();
                        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                            self.bump();
                        }
                    }
                    if matches!(self.peek(), Some('e' | 'E')) {
                        let save = self.pos;
                        self.bump();
                        if matches!(self.peek(), Some('+' | '-')) {
                            self.bump();
                        }
                        if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                            is_float = true;
                            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                                self.bump();
                            }
                        } else {
                            self.pos = save;
                        }
                    }
                    let text = &self.src[num_start..self.pos];
                    if is_float {
                        Token::Float(
                            text.parse()
                                .map_err(|e| self.err(format!("bad float: {e}")))?,
                        )
                    } else {
                        Token::Int(
                            text.parse()
                                .map_err(|e| self.err(format!("bad integer: {e}")))?,
                        )
                    }
                }
                c if c.is_alphabetic() || c == '_' => {
                    let id_start = self.pos;
                    while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                        self.bump();
                    }
                    match &self.src[id_start..self.pos] {
                        "and" => Token::And,
                        "or" => Token::Or,
                        "not" => Token::Not,
                        "true" => Token::True,
                        "false" => Token::False,
                        "null" => Token::Null,
                        id => Token::Ident(id.to_string()),
                    }
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            };
            out.push((token, start));
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn expect(&mut self, t: Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(&t) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn parse_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Or) => BinOp::Or,
                Some(Token::And) => BinOp::And,
                Some(Token::Op(op)) => *op,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            // Left-associative: parse the right side at prec+1. Comparisons
            // are non-associative: also prec+1, and a second comparison at
            // the same level will fail the `prec < min_prec` check above and
            // then hit the explicit chain check below.
            let right = self.parse_expr(prec + 1)?;
            if op.is_comparison() {
                if let Some(Token::Op(next)) = self.peek() {
                    if next.is_comparison() {
                        return Err(self.err(
                            "comparison operators do not chain; parenthesize the comparison",
                        ));
                    }
                }
            }
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Not) | Some(Token::Bang) => {
                self.bump();
                let inner = self.parse_unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(inner),
                })
            }
            Some(Token::Minus) => {
                self.bump();
                let inner = self.parse_unary()?;
                // Fold negation of literals so `-3` is a constant, keeping
                // printed forms stable.
                match inner {
                    Expr::Lit(Value::Int(i)) => Ok(Expr::Lit(Value::Int(-i))),
                    Expr::Lit(Value::Float(f)) => Ok(Expr::Lit(Value::Float(-f))),
                    other => Ok(Expr::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(other),
                    }),
                }
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Expr::Lit(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Lit(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Token::True) => Ok(Expr::Lit(Value::Bool(true))),
            Some(Token::False) => Ok(Expr::Lit(Value::Bool(false))),
            Some(Token::Null) => Ok(Expr::Lit(Value::Null)),
            Some(Token::LParen) => {
                let e = self.parse_expr(0)?;
                self.expect(Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::LBracket) => {
                let mut items = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    loop {
                        let item = self.parse_expr(0)?;
                        match item {
                            Expr::Lit(v) => items.push(v),
                            _ => {
                                return Err(
                                    self.err("list literals may only contain constant values")
                                )
                            }
                        }
                        if self.peek() == Some(&Token::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Token::RBracket, "']'")?;
                Ok(Expr::Lit(Value::List(items)))
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr(0)?);
                            if self.peek() == Some(&Token::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Token::RParen, "')' to close argument list")?;
                    Ok(Expr::Call { name, args })
                } else {
                    let mut path = vec![name];
                    while self.peek() == Some(&Token::Dot) {
                        self.bump();
                        match self.bump() {
                            Some(Token::Ident(seg)) => path.push(seg),
                            _ => return Err(self.err("expected identifier after '.'")),
                        }
                    }
                    Ok(Expr::Var(path))
                }
            }
            Some(other) => Err(self.err(format!("unexpected token {other:?}"))),
            None => Err(self.err("unexpected end of expression")),
        }
    }
}

/// Parses a guard expression.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    let e = p.parse_expr(0)?;
    if p.peek().is_some() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).unwrap().to_string()
    }

    #[test]
    fn parses_paper_guards() {
        assert_eq!(roundtrip("domestic(destination)"), "domestic(destination)");
        assert_eq!(
            roundtrip("not domestic(destination)"),
            "not domestic(destination)"
        );
        assert_eq!(
            roundtrip("near(major_attraction, accommodation)"),
            "near(major_attraction, accommodation)"
        );
        assert_eq!(
            roundtrip("not near(major_attraction,accommodation)"),
            "not near(major_attraction, accommodation)"
        );
    }

    #[test]
    fn precedence_and_before_or() {
        let e = parse("a or b and c").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Or,
                Expr::var("a"),
                Expr::bin(BinOp::And, Expr::var("b"), Expr::var("c"))
            )
        );
    }

    #[test]
    fn symbols_and_words_are_synonyms() {
        assert_eq!(
            parse("a && b || !c").unwrap(),
            parse("a and b or not c").unwrap()
        );
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(roundtrip("1+2*3"), "1 + 2 * 3");
        assert_eq!(roundtrip("(1+2)*3"), "(1 + 2) * 3");
        assert_eq!(roundtrip("price * 1.1 <= budget"), "price * 1.1 <= budget");
    }

    #[test]
    fn unary_minus_folds_into_literals() {
        assert_eq!(parse("-3").unwrap(), Expr::Lit(Value::Int(-3)));
        assert_eq!(parse("-3.5").unwrap(), Expr::Lit(Value::Float(-3.5)));
        // but stays an operator on variables
        assert_eq!(roundtrip("-x"), "-x");
    }

    #[test]
    fn dotted_variables() {
        assert_eq!(
            parse("booking.price").unwrap(),
            Expr::Var(vec!["booking".into(), "price".into()])
        );
        assert_eq!(roundtrip("a.b.c == 1"), "a.b.c == 1");
    }

    #[test]
    fn string_literals_with_escapes() {
        let e = parse(r#"city == "He said \"hi\"\n""#).unwrap();
        match e {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, Expr::Lit(Value::str("He said \"hi\"\n")));
            }
            _ => panic!(),
        }
        // single quotes too
        assert_eq!(parse("x == 'ok'").unwrap(), parse("x == \"ok\"").unwrap());
    }

    #[test]
    fn list_literals() {
        let e = parse("contains([1, 2, 3], x)").unwrap();
        match &e {
            Expr::Call { name, args } => {
                assert_eq!(name, "contains");
                assert_eq!(
                    args[0],
                    Expr::Lit(Value::List(vec![
                        Value::Int(1),
                        Value::Int(2),
                        Value::Int(3)
                    ]))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn nested_calls() {
        assert_eq!(roundtrip("f(g(x), h(y, 1))"), "f(g(x), h(y, 1))");
        assert_eq!(roundtrip("f()"), "f()");
    }

    #[test]
    fn comparison_does_not_chain() {
        let err = parse("a < b < c").unwrap_err();
        assert!(
            err.message.contains("parenthesize") || err.message.contains("expected"),
            "{err}"
        );
        // Parenthesized comparison chains are fine.
        parse("(a < b) == (b < c)").unwrap();
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(parse("1e3").unwrap(), Expr::Lit(Value::Float(1000.0)));
        assert_eq!(parse("2.5e-2").unwrap(), Expr::Lit(Value::Float(0.025)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("a +").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a = b").is_err());
        assert!(parse("a | b").is_err());
        assert!(parse("f(a,").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("x.").is_err());
        assert!(parse("@").is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse("abc @").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn bang_equals_not() {
        assert_eq!(parse("!f(x)").unwrap(), parse("not f(x)").unwrap());
    }
}
