//! The dynamic [`Value`] type carried through composite-service executions.

use std::fmt;

/// A runtime value: the type of statechart variables, operation parameters,
/// and expression results.
///
/// In the original platform these values travelled as XML text; here they
/// are typed, and the XML codecs in `selfserv-wsdl` convert to/from the
/// lexical forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (an unset output parameter).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list of values (e.g. the attraction list returned by the
    /// Attraction Search service).
    List(Vec<Value>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// A short, stable name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
        }
    }

    /// Returns the boolean inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as a float if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric equality with int/float promotion; other types use structural
    /// equality. `Null == Null` is true (useful for "output not produced"
    /// checks in guards).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) => (*a as f64) == *b,
            (Value::Float(a), Value::Int(b)) => *a == (*b as f64),
            (a, b) => a == b,
        }
    }

    /// The lexical form used when embedding the value in XML documents.
    /// Round-trips through the wsdl layer's lexical decoding given the
    /// matching type.
    pub fn to_lexical(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                // Ensure floats keep a decimal point so the typed decoder can
                // distinguish them from ints.
                let s = f.to_string();
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Value::Str(s) => s.clone(),
            Value::List(items) => {
                // Lists embed as `|`-separated lexicals; nested lists are not
                // produced by the platform's operations.
                items
                    .iter()
                    .map(Value::to_lexical)
                    .collect::<Vec<_>>()
                    .join("|")
            }
        }
    }
}

impl fmt::Display for Value {
    /// Displays the value as an expression-language literal (strings quoted,
    /// lists bracketed). Used when printing ASTs that contain constants.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Bool(true).type_name(), "bool");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::Float(1.0).type_name(), "float");
        assert_eq!(Value::str("x").type_name(), "string");
        assert_eq!(Value::List(vec![]).type_name(), "list");
    }

    #[test]
    fn loose_eq_promotes_numerics() {
        assert!(Value::Int(3).loose_eq(&Value::Float(3.0)));
        assert!(Value::Float(3.0).loose_eq(&Value::Int(3)));
        assert!(!Value::Int(3).loose_eq(&Value::Float(3.5)));
        assert!(Value::Null.loose_eq(&Value::Null));
        assert!(!Value::str("3").loose_eq(&Value::Int(3)));
    }

    #[test]
    fn display_quotes_and_escapes_strings() {
        assert_eq!(Value::str("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn display_floats_keep_decimal_point() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn display_lists() {
        let v = Value::List(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(v.to_string(), "[1, \"x\"]");
    }

    #[test]
    fn lexical_forms() {
        assert_eq!(Value::Int(42).to_lexical(), "42");
        assert_eq!(Value::Float(2.0).to_lexical(), "2.0");
        assert_eq!(Value::Bool(false).to_lexical(), "false");
        assert_eq!(Value::str("plain").to_lexical(), "plain");
        assert_eq!(Value::Null.to_lexical(), "");
        assert_eq!(
            Value::List(vec![Value::str("a"), Value::str("b")]).to_lexical(),
            "a|b"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::as_f64(&Value::Int(2)), Some(2.0));
        assert_eq!(Value::as_f64(&Value::str("2")), None);
    }
}
