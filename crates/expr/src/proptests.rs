//! Property tests for the guard language: the printer and parser are exact
//! inverses, and evaluation is total (never panics) over typed environments.

use crate::{parse, BinOp, Expr, MapEnv, UnOp, Value};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid the reserved words.
    "[a-z_][a-z0-9_]{0,7}".prop_filter("reserved", |s| {
        !matches!(s.as_str(), "and" | "or" | "not" | "true" | "false" | "null")
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        // Finite floats with short decimal forms to keep Display↔parse exact.
        (-1_000i32..1_000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        "[ -~]{0,10}".prop_map(Value::Str),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::And),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
    ]
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Lit),
        proptest::collection::vec(arb_ident(), 1..3).prop_map(Expr::Var),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_expr(depth - 1);
    let inner2 = arb_expr(depth - 1);
    let inner3 = arb_expr(depth - 1);
    prop_oneof![
        leaf,
        (arb_ident(), proptest::collection::vec(inner3, 0..3))
            .prop_map(|(name, args)| Expr::Call { name, args }),
        inner.clone().prop_map(|e| Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(e)
        }),
        // Neg of a literal folds in the parser, so only generate Neg on
        // non-literal operands to keep round-trips exact.
        arb_expr(depth - 1)
            .prop_filter("no literal under Neg", |e| !matches!(e, Expr::Lit(_)))
            .prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e)
            }),
        (arb_binop(), inner, inner2).prop_map(|(op, l, r)| Expr::bin(op, l, r)),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(e in arb_expr(3)) {
        let printed = e.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse {printed:?}: {err}"));
        prop_assert_eq!(reparsed, e);
    }

    #[test]
    fn eval_never_panics(e in arb_expr(3)) {
        let mut env = MapEnv::with_builtins();
        env.set("x", Value::Int(1));
        // Errors are fine (unknown vars/functions abound); panics are not.
        let _ = e.eval(&env);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~]{0,48}") {
        let _ = parse(&s);
    }

    #[test]
    fn eval_is_deterministic(e in arb_expr(3)) {
        let mut env = MapEnv::with_builtins();
        env.set("a", Value::Int(7));
        env.set("b", Value::str("s"));
        let r1 = e.eval(&env);
        let r2 = e.eval(&env);
        prop_assert_eq!(r1, r2);
    }
}
