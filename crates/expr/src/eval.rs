//! Evaluation of guard expressions against an environment.

use crate::ast::{BinOp, Expr, UnOp};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors produced while evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was not bound in the environment.
    UndefinedVariable(String),
    /// A function was not registered in the environment.
    UnknownFunction(String),
    /// An operator was applied to operands of the wrong type.
    TypeMismatch {
        /// The operation attempted.
        op: String,
        /// Description of the operand types found.
        found: String,
    },
    /// A function was called with the wrong number of arguments.
    ArityMismatch {
        /// Function name.
        function: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        found: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A registered function reported a domain error.
    FunctionError {
        /// Function name.
        function: String,
        /// The function's message.
        message: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UndefinedVariable(v) => write!(f, "undefined variable '{v}'"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
            EvalError::TypeMismatch { op, found } => {
                write!(f, "type mismatch: cannot apply {op} to {found}")
            }
            EvalError::ArityMismatch {
                function,
                expected,
                found,
            } => write!(
                f,
                "function '{function}' expects {expected} argument(s), got {found}"
            ),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::FunctionError { function, message } => {
                write!(f, "function '{function}' failed: {message}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Resolution of variables and functions during evaluation.
///
/// Coordinators implement this over the variable set of a composite-service
/// instance; tests and examples use [`MapEnv`].
pub trait Env {
    /// Resolves a dotted variable path (e.g. `["booking", "price"]`).
    fn get_var(&self, path: &[String]) -> Option<Value>;

    /// Calls a registered predicate/function.
    fn call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError>;
}

/// Signature of registered functions.
pub type NativeFn = Arc<dyn Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync>;

/// A hash-map-backed [`Env`] with a function registry.
///
/// Dotted paths resolve against the flat map using the joined name
/// (`"booking.price"`), falling back to the first segment so that an entire
/// record stored under `booking` does not shadow a specific entry.
///
/// The standard library of guard functions (see [`MapEnv::with_builtins`])
/// covers the generic predicates used across the examples; domain predicates
/// such as `domestic` or `near` are registered by the application, exactly
/// as the original platform required the composer to supply condition
/// evaluation code.
#[derive(Clone, Default)]
pub struct MapEnv {
    vars: HashMap<String, Value>,
    fns: HashMap<String, NativeFn>,
}

impl MapEnv {
    /// An empty environment (no variables, no functions).
    pub fn new() -> Self {
        Self::default()
    }

    /// An environment pre-loaded with the builtin function library:
    /// `len`, `contains`, `starts_with`, `ends_with`, `lower`, `upper`,
    /// `min`, `max`, `abs`, `defined`.
    pub fn with_builtins() -> Self {
        let mut env = Self::new();
        env.register_builtins();
        env
    }

    /// Binds a variable.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Removes a variable binding.
    pub fn unset(&mut self, name: &str) {
        self.vars.remove(name);
    }

    /// Copies all bindings from an iterator.
    pub fn set_all(&mut self, vars: impl IntoIterator<Item = (String, Value)>) {
        self.vars.extend(vars);
    }

    /// Registers a native function under `name`.
    pub fn register_fn<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync + 'static,
    {
        self.fns.insert(name.into(), Arc::new(f));
    }

    /// Registers a pre-wrapped native function (used to share registries).
    pub fn register_shared(&mut self, name: impl Into<String>, f: NativeFn) {
        self.fns.insert(name.into(), f);
    }

    /// Returns the registered function names (sorted), for diagnostics.
    pub fn function_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.fns.keys().cloned().collect();
        names.sort();
        names
    }

    /// Read access to the variable map.
    pub fn vars(&self) -> &HashMap<String, Value> {
        &self.vars
    }

    fn register_builtins(&mut self) {
        fn arity(function: &str, expected: usize, args: &[Value]) -> Result<(), EvalError> {
            if args.len() != expected {
                Err(EvalError::ArityMismatch {
                    function: function.to_string(),
                    expected,
                    found: args.len(),
                })
            } else {
                Ok(())
            }
        }
        self.register_fn("len", |args| {
            arity("len", 1, args)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::List(l) => Ok(Value::Int(l.len() as i64)),
                other => Err(EvalError::TypeMismatch {
                    op: "len".into(),
                    found: other.type_name().into(),
                }),
            }
        });
        self.register_fn("contains", |args| {
            arity("contains", 2, args)?;
            match (&args[0], &args[1]) {
                (Value::Str(hay), Value::Str(needle)) => Ok(Value::Bool(hay.contains(needle))),
                (Value::List(items), needle) => {
                    Ok(Value::Bool(items.iter().any(|i| i.loose_eq(needle))))
                }
                (a, b) => Err(EvalError::TypeMismatch {
                    op: "contains".into(),
                    found: format!("{}, {}", a.type_name(), b.type_name()),
                }),
            }
        });
        self.register_fn("starts_with", |args| {
            arity("starts_with", 2, args)?;
            match (&args[0], &args[1]) {
                (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(s.starts_with(p.as_str()))),
                (a, b) => Err(EvalError::TypeMismatch {
                    op: "starts_with".into(),
                    found: format!("{}, {}", a.type_name(), b.type_name()),
                }),
            }
        });
        self.register_fn("ends_with", |args| {
            arity("ends_with", 2, args)?;
            match (&args[0], &args[1]) {
                (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(s.ends_with(p.as_str()))),
                (a, b) => Err(EvalError::TypeMismatch {
                    op: "ends_with".into(),
                    found: format!("{}, {}", a.type_name(), b.type_name()),
                }),
            }
        });
        self.register_fn("lower", |args| {
            arity("lower", 1, args)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
                other => Err(EvalError::TypeMismatch {
                    op: "lower".into(),
                    found: other.type_name().into(),
                }),
            }
        });
        self.register_fn("upper", |args| {
            arity("upper", 1, args)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
                other => Err(EvalError::TypeMismatch {
                    op: "upper".into(),
                    found: other.type_name().into(),
                }),
            }
        });
        self.register_fn("min", |args| {
            arity("min", 2, args)?;
            numeric_pair("min", &args[0], &args[1], |a, b| a.min(b))
        });
        self.register_fn("max", |args| {
            arity("max", 2, args)?;
            numeric_pair("max", &args[0], &args[1], |a, b| a.max(b))
        });
        self.register_fn("abs", |args| {
            arity("abs", 1, args)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(EvalError::TypeMismatch {
                    op: "abs".into(),
                    found: other.type_name().into(),
                }),
            }
        });
        self.register_fn("defined", |args| {
            arity("defined", 1, args)?;
            Ok(Value::Bool(!matches!(args[0], Value::Null)))
        });
    }
}

fn numeric_pair(
    op: &str,
    a: &Value,
    b: &Value,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Value, EvalError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(f(*x as f64, *y as f64) as i64)),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Value::Float(f(x, y))),
            _ => Err(EvalError::TypeMismatch {
                op: op.to_string(),
                found: format!("{}, {}", a.type_name(), b.type_name()),
            }),
        },
    }
}

impl Env for MapEnv {
    fn get_var(&self, path: &[String]) -> Option<Value> {
        let joined = path.join(".");
        if let Some(v) = self.vars.get(&joined) {
            return Some(v.clone());
        }
        if path.len() > 1 {
            return self.vars.get(&path[0]).cloned();
        }
        None
    }

    fn call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        match self.fns.get(name) {
            Some(f) => f(args),
            None => Err(EvalError::UnknownFunction(name.to_string())),
        }
    }
}

impl Expr {
    /// Evaluates the expression in `env`.
    ///
    /// `and`/`or` short-circuit and require boolean operands; arithmetic
    /// promotes int to float; `==`/`!=` use [`Value::loose_eq`]; ordering is
    /// defined for numbers and for strings.
    pub fn eval(&self, env: &dyn Env) -> Result<Value, EvalError> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(path) => env
                .get_var(path)
                .ok_or_else(|| EvalError::UndefinedVariable(path.join("."))),
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env)?);
                }
                env.call(name, &vals)
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(env)?;
                match op {
                    UnOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(EvalError::TypeMismatch {
                            op: "not".into(),
                            found: other.type_name().into(),
                        }),
                    },
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(EvalError::TypeMismatch {
                            op: "-".into(),
                            found: other.type_name().into(),
                        }),
                    },
                }
            }
            Expr::Binary { op, left, right } => match op {
                BinOp::And => match left.eval(env)? {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    Value::Bool(true) => expect_bool("and", right.eval(env)?),
                    other => Err(EvalError::TypeMismatch {
                        op: "and".into(),
                        found: other.type_name().into(),
                    }),
                },
                BinOp::Or => match left.eval(env)? {
                    Value::Bool(true) => Ok(Value::Bool(true)),
                    Value::Bool(false) => expect_bool("or", right.eval(env)?),
                    other => Err(EvalError::TypeMismatch {
                        op: "or".into(),
                        found: other.type_name().into(),
                    }),
                },
                BinOp::Eq => Ok(Value::Bool(left.eval(env)?.loose_eq(&right.eval(env)?))),
                BinOp::Ne => Ok(Value::Bool(!left.eval(env)?.loose_eq(&right.eval(env)?))),
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let l = left.eval(env)?;
                    let r = right.eval(env)?;
                    let ord = compare(*op, &l, &r)?;
                    Ok(Value::Bool(ord))
                }
                BinOp::Add => {
                    let l = left.eval(env)?;
                    let r = right.eval(env)?;
                    match (&l, &r) {
                        (Value::Str(a), Value::Str(b)) => {
                            let mut s = String::with_capacity(a.len() + b.len());
                            s.push_str(a);
                            s.push_str(b);
                            Ok(Value::Str(s))
                        }
                        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
                        _ => arith("+", &l, &r, |a, b| a + b),
                    }
                }
                BinOp::Sub => {
                    let l = left.eval(env)?;
                    let r = right.eval(env)?;
                    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                        return Ok(Value::Int(a.wrapping_sub(*b)));
                    }
                    arith("-", &l, &r, |a, b| a - b)
                }
                BinOp::Mul => {
                    let l = left.eval(env)?;
                    let r = right.eval(env)?;
                    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                        return Ok(Value::Int(a.wrapping_mul(*b)));
                    }
                    arith("*", &l, &r, |a, b| a * b)
                }
                BinOp::Div => {
                    let l = left.eval(env)?;
                    let r = right.eval(env)?;
                    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                        if *b == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        return Ok(Value::Int(a.wrapping_div(*b)));
                    }
                    arith("/", &l, &r, |a, b| a / b)
                }
                BinOp::Rem => {
                    let l = left.eval(env)?;
                    let r = right.eval(env)?;
                    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                        if *b == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        return Ok(Value::Int(a.wrapping_rem(*b)));
                    }
                    arith("%", &l, &r, |a, b| a % b)
                }
            },
        }
    }

    /// Evaluates the expression and requires a boolean result — the form
    /// used for guards: routing tables reject non-boolean conditions.
    pub fn eval_bool(&self, env: &dyn Env) -> Result<bool, EvalError> {
        match self.eval(env)? {
            Value::Bool(b) => Ok(b),
            other => Err(EvalError::TypeMismatch {
                op: "guard".into(),
                found: other.type_name().into(),
            }),
        }
    }
}

fn expect_bool(op: &str, v: Value) -> Result<Value, EvalError> {
    match v {
        Value::Bool(_) => Ok(v),
        other => Err(EvalError::TypeMismatch {
            op: op.into(),
            found: other.type_name().into(),
        }),
    }
}

fn arith(op: &str, l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Result<Value, EvalError> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok(Value::Float(f(a, b))),
        _ => Err(EvalError::TypeMismatch {
            op: op.to_string(),
            found: format!("{}, {}", l.type_name(), r.type_name()),
        }),
    }
}

fn compare(op: BinOp, l: &Value, r: &Value) -> Result<bool, EvalError> {
    let ord = match (l, r) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).ok_or(EvalError::TypeMismatch {
                op: op.symbol().into(),
                found: "NaN".into(),
            })?,
            _ => {
                return Err(EvalError::TypeMismatch {
                    op: op.symbol().into(),
                    found: format!("{}, {}", l.type_name(), r.type_name()),
                })
            }
        },
    };
    Ok(match op {
        BinOp::Lt => ord == std::cmp::Ordering::Less,
        BinOp::Le => ord != std::cmp::Ordering::Greater,
        BinOp::Gt => ord == std::cmp::Ordering::Greater,
        BinOp::Ge => ord != std::cmp::Ordering::Less,
        _ => unreachable!("compare called with non-comparison operator"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn env() -> MapEnv {
        let mut e = MapEnv::with_builtins();
        e.set("destination", Value::str("Sydney"));
        e.set("price", Value::Int(120));
        e.set("budget", Value::Float(150.0));
        e.set("confirmed", Value::Bool(true));
        e.set("booking.price", Value::Int(99));
        e.register_fn("domestic", |args| {
            let city = args[0].as_str().unwrap_or("");
            Ok(Value::Bool(matches!(
                city,
                "Sydney" | "Melbourne" | "Brisbane" | "Perth"
            )))
        });
        e
    }

    fn eval_str(s: &str) -> Result<Value, EvalError> {
        parse(s).unwrap().eval(&env())
    }

    #[test]
    fn evaluates_paper_guard() {
        assert_eq!(
            eval_str("domestic(destination)").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("not domestic(destination)").unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval_str("price + 30 <= budget").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("price * 2 > budget").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("7 % 3").unwrap(), Value::Int(1));
        assert_eq!(eval_str("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval_str("7.0 / 2").unwrap(), Value::Float(3.5));
    }

    #[test]
    fn string_operations() {
        assert_eq!(eval_str("\"syd\" + \"ney\"").unwrap(), Value::str("sydney"));
        assert_eq!(
            eval_str("lower(destination) == \"sydney\"").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("starts_with(destination, \"Syd\")").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_str("len(destination)").unwrap(), Value::Int(6));
        assert_eq!(
            eval_str("destination < \"Tokyo\"").unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn short_circuit_skips_errors() {
        // `missing` is undefined but never evaluated.
        assert_eq!(eval_str("false and missing").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("true or missing").unwrap(), Value::Bool(true));
        // but is evaluated when reached
        assert!(matches!(
            eval_str("true and missing"),
            Err(EvalError::UndefinedVariable(v)) if v == "missing"
        ));
    }

    #[test]
    fn loose_numeric_equality() {
        assert_eq!(eval_str("price == 120.0").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("price != 121").unwrap(), Value::Bool(true));
    }

    #[test]
    fn dotted_variable_resolution() {
        assert_eq!(eval_str("booking.price == 99").unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(eval_str("1 / 0"), Err(EvalError::DivisionByZero));
        assert_eq!(eval_str("1 % 0"), Err(EvalError::DivisionByZero));
        // Float division by zero yields inf, matching IEEE semantics.
        assert_eq!(eval_str("1.0 / 0").unwrap(), Value::Float(f64::INFINITY));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(matches!(
            eval_str("1 and true"),
            Err(EvalError::TypeMismatch { .. })
        ));
        assert!(matches!(
            eval_str("not 3"),
            Err(EvalError::TypeMismatch { .. })
        ));
        assert!(matches!(
            eval_str("\"a\" - 1"),
            Err(EvalError::TypeMismatch { .. })
        ));
        assert!(matches!(
            eval_str("true < false"),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_function() {
        assert_eq!(
            eval_str("nope(1)"),
            Err(EvalError::UnknownFunction("nope".into()))
        );
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(matches!(
            eval_str("len()"),
            Err(EvalError::ArityMismatch { .. })
        ));
        assert!(matches!(
            eval_str("min(1)"),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn builtin_min_max_abs() {
        assert_eq!(eval_str("min(3, 5)").unwrap(), Value::Int(3));
        assert_eq!(eval_str("max(3, 5.5)").unwrap(), Value::Float(5.5));
        assert_eq!(eval_str("abs(-4)").unwrap(), Value::Int(4));
    }

    #[test]
    fn builtin_contains_on_lists_and_strings() {
        assert_eq!(eval_str("contains([1,2,3], 2)").unwrap(), Value::Bool(true));
        assert_eq!(
            eval_str("contains([1,2,3], 2.0)").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("contains(\"Sydney\", \"dn\")").unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn builtin_defined() {
        assert_eq!(eval_str("defined(destination)").unwrap(), Value::Bool(true));
        let mut e = env();
        e.set("maybe", Value::Null);
        assert_eq!(
            parse("defined(maybe)").unwrap().eval(&e).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn eval_bool_rejects_non_boolean_guards() {
        let g = parse("price + 1").unwrap();
        assert!(matches!(
            g.eval_bool(&env()),
            Err(EvalError::TypeMismatch { .. })
        ));
        let g2 = parse("confirmed").unwrap();
        assert!(g2.eval_bool(&env()).unwrap());
    }

    #[test]
    fn eval_error_display() {
        let e = EvalError::ArityMismatch {
            function: "f".into(),
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("expects 2"));
    }
}
