//! Prometheus scrape endpoint on a plain `std::net::TcpListener`.
//!
//! One acceptor thread serves `GET /metrics` with a freshly rendered
//! exposition per request and closes the connection (scrapers poll at
//! ~1 Hz, so connection reuse buys nothing and keeping each request
//! self-contained keeps the server trivial). Shutdown sets a flag and
//! self-connects to unblock the blocking `accept`.

use crate::registry::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum request head we are willing to buffer before answering.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout; a stalled scraper cannot wedge the
/// acceptor for longer than this.
const CONN_TIMEOUT: Duration = Duration::from_secs(2);

/// A running scrape endpoint. Dropping the server shuts it down.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `registry` on `/metrics`.
    pub fn serve(registry: Registry, addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("obs-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Serve inline: requests are tiny, responses are a
                        // single render, and the socket timeout bounds the
                        // damage a slow client can do.
                        let _ = handle_connection(stream, &registry);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// The bound address of the endpoint.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Full scrape URL, for logs and run summaries.
    pub fn url(&self) -> String {
        format!("http://{}/metrics", self.addr)
    }

    /// Stops the acceptor thread and waits for it to exit.
    pub fn shutdown(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop.
            let _ = TcpStream::connect_timeout(&self.addr, CONN_TIMEOUT);
            let _ = join.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() >= MAX_REQUEST_BYTES {
            return respond(&mut stream, "400 Bad Request", "request too large\n");
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "only GET is supported\n",
        );
    }
    // Accept query strings (e.g. /metrics?format=text) for scraper
    // compatibility.
    if path == "/metrics" || path.starts_with("/metrics?") {
        let body = registry.render();
        let header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(header.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    } else {
        respond(&mut stream, "404 Not Found", "try /metrics\n")
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot HTTP GET returning the response body. Shared by the
/// stress harness's scraper, the monitoring example, and the round-trip
/// tests; only the tiny HTTP/1.1 subset the [`MetricsServer`] speaks is
/// supported.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::other(format!("unexpected status: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let reg = Registry::new();
        reg.counter("selfserv_hits_total", "Hits.", &[]).add(12);
        let server = MetricsServer::serve(reg.clone(), "127.0.0.1:0").unwrap();

        let body = http_get(server.addr(), "/metrics", Duration::from_secs(5)).unwrap();
        assert!(body.contains("selfserv_hits_total 12\n"));

        let err = http_get(server.addr(), "/nope", Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("404"));
    }

    /// Satellite: the endpoint's output round-trips the text-format
    /// parser — names, labels, HELP/TYPE metadata, and no duplicate
    /// series — across every collector kind the registry supports.
    #[test]
    fn exposition_round_trips_parser() {
        let reg = Registry::new();
        reg.counter("selfserv_rt_total", "Round-trip counter.", &[("hub", "h0")])
            .add(3);
        reg.counter("selfserv_rt_total", "Round-trip counter.", &[("hub", "h1")])
            .add(4);
        reg.gauge("selfserv_rt_depth", "Round-trip gauge.", &[])
            .set(-7);
        reg.gauge_fn("selfserv_rt_pull", "Pulled.", &[("k", "v w")], || 2.25);
        reg.counter_fn("selfserv_rt_fn_total", "Pulled counter.", &[], || 99);
        let h = reg.histogram("selfserv_rt_lat_us", "Latency.", &[("hub", "h0")]);
        for v in 1..=100u64 {
            h.record(v);
        }

        let mut server = MetricsServer::serve(reg, "127.0.0.1:0").unwrap();
        let body = http_get(server.addr(), "/metrics", Duration::from_secs(5)).unwrap();
        let exp = parse::parse(&body).unwrap();
        exp.validate().unwrap();

        assert_eq!(
            exp.types.get("selfserv_rt_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(
            exp.types.get("selfserv_rt_depth").map(String::as_str),
            Some("gauge")
        );
        assert_eq!(
            exp.types.get("selfserv_rt_lat_us").map(String::as_str),
            Some("summary")
        );
        assert_eq!(
            exp.help.get("selfserv_rt_total").map(String::as_str),
            Some("Round-trip counter.")
        );
        assert_eq!(exp.value("selfserv_rt_total", &[("hub", "h0")]), Some(3.0));
        assert_eq!(exp.value("selfserv_rt_total", &[("hub", "h1")]), Some(4.0));
        assert_eq!(exp.value("selfserv_rt_depth", &[]), Some(-7.0));
        assert_eq!(exp.value("selfserv_rt_pull", &[("k", "v w")]), Some(2.25));
        assert_eq!(exp.value("selfserv_rt_fn_total", &[]), Some(99.0));
        assert_eq!(
            exp.value("selfserv_rt_lat_us_count", &[("hub", "h0")]),
            Some(100.0)
        );
        let p50 = exp
            .value("selfserv_rt_lat_us", &[("hub", "h0"), ("quantile", "0.5")])
            .unwrap();
        assert!((50.0..=57.0).contains(&p50), "p50 {p50}");

        server.shutdown();
        // After shutdown the endpoint is gone.
        assert!(http_get(server.addr(), "/metrics", Duration::from_millis(500)).is_err());
    }
}
