//! Metric registry and Prometheus text-format exposition.
//!
//! A [`Registry`] is a cheaply cloneable handle to a shared set of metric
//! families. Components register their metrics once (getting back `Arc`s
//! they update lock-free on their hot paths, or handing in pull closures
//! for values they already track elsewhere); the scrape endpoint calls
//! [`Registry::render`] to produce the Prometheus text format.
//!
//! Histograms are exposed in `summary` style — `name{quantile="0.5"}`,
//! `0.99`, `0.999` plus `name_sum` / `name_count` — rather than classic
//! `_bucket` series, which keeps a 496-bucket log histogram from exploding
//! into 496 series per scrape.

use crate::metrics::{Counter, Gauge, Histogram};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The exposition quantiles published for every histogram.
pub const EXPORT_QUANTILES: [f64; 3] = [0.5, 0.99, 0.999];

type Labels = Vec<(String, String)>;

enum Collector {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
}

impl Collector {
    fn kind(&self) -> &'static str {
        match self {
            Collector::Counter(_) | Collector::CounterFn(_) => "counter",
            Collector::Gauge(_) | Collector::GaugeFn(_) => "gauge",
            Collector::Histogram(_) => "summary",
        }
    }
}

struct Series {
    labels: Labels,
    collector: Collector,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    series: Vec<Series>,
}

#[derive(Default)]
struct Inner {
    families: Vec<Family>,
}

/// Shared, cloneable metric registry. Registration takes a short-lived
/// lock; metric updates afterwards touch only the returned atomics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter series. Registering the same
    /// `(name, labels)` twice returns the existing counter, so independent
    /// components can share a series safely.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        let fam_idx = Self::family_index(&mut inner, name, help, "counter");
        let family = &mut inner.families[fam_idx];
        let labels = owned_labels(labels);
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            match &series.collector {
                Collector::Counter(c) => return Arc::clone(c),
                _ => panic!("metric {name} re-registered with a different collector"),
            }
        }
        let counter = Arc::new(Counter::new());
        family.series.push(Series {
            labels,
            collector: Collector::Counter(Arc::clone(&counter)),
        });
        counter
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        let fam_idx = Self::family_index(&mut inner, name, help, "gauge");
        let family = &mut inner.families[fam_idx];
        let labels = owned_labels(labels);
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            match &series.collector {
                Collector::Gauge(g) => return Arc::clone(g),
                _ => panic!("metric {name} re-registered with a different collector"),
            }
        }
        let gauge = Arc::new(Gauge::new());
        family.series.push(Series {
            labels,
            collector: Collector::Gauge(Arc::clone(&gauge)),
        });
        gauge
    }

    /// Registers (or retrieves) a histogram series, exported as a summary
    /// with p50/p99/p999 quantiles.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        let fam_idx = Self::family_index(&mut inner, name, help, "summary");
        let family = &mut inner.families[fam_idx];
        let labels = owned_labels(labels);
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            match &series.collector {
                Collector::Histogram(h) => return Arc::clone(h),
                _ => panic!("metric {name} re-registered with a different collector"),
            }
        }
        let histogram = Arc::new(Histogram::new());
        family.series.push(Series {
            labels,
            collector: Collector::Histogram(Arc::clone(&histogram)),
        });
        histogram
    }

    /// Registers a pull-style counter: `f` is called at scrape time and
    /// must be monotonic. Re-registering the same series replaces the
    /// closure (so a component can re-bind after a restart).
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register_fn(
            name,
            help,
            owned_labels(labels),
            Collector::CounterFn(Box::new(f)),
        );
    }

    /// Registers a pull-style gauge sampled at scrape time.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register_fn(
            name,
            help,
            owned_labels(labels),
            Collector::GaugeFn(Box::new(f)),
        );
    }

    fn register_fn(&self, name: &str, help: &str, labels: Labels, collector: Collector) {
        let mut inner = self.inner.lock().unwrap();
        let fam_idx = Self::family_index(&mut inner, name, help, collector.kind());
        let family = &mut inner.families[fam_idx];
        match family.series.iter_mut().find(|s| s.labels == labels) {
            Some(series) => series.collector = collector,
            None => family.series.push(Series { labels, collector }),
        }
    }

    fn family_index(inner: &mut Inner, name: &str, help: &str, kind: &'static str) -> usize {
        if let Some(i) = inner.families.iter().position(|f| f.name == name) {
            assert_eq!(
                inner.families[i].kind, kind,
                "metric {name} re-registered with a different type"
            );
            return i;
        }
        inner.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        inner.families.len() - 1
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format: one `# HELP` / `# TYPE` pair per family, series sorted by
    /// labels, no duplicate series (registration already dedupes).
    pub fn render(&self) -> String {
        let mut inner = self.inner.lock().unwrap();
        inner.families.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::new();
        for family in &mut inner.families {
            family.series.sort_by(|a, b| a.labels.cmp(&b.labels));
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind);
            for series in &family.series {
                render_series(&mut out, &family.name, &series.labels, &series.collector);
            }
        }
        out
    }
}

fn render_series(out: &mut String, name: &str, labels: &Labels, collector: &Collector) {
    match collector {
        Collector::Counter(c) => {
            let _ = writeln!(out, "{}{} {}", name, fmt_labels(labels, None), c.get());
        }
        Collector::CounterFn(f) => {
            let _ = writeln!(out, "{}{} {}", name, fmt_labels(labels, None), f());
        }
        Collector::Gauge(g) => {
            let _ = writeln!(out, "{}{} {}", name, fmt_labels(labels, None), g.get());
        }
        Collector::GaugeFn(f) => {
            let _ = writeln!(out, "{}{} {}", name, fmt_labels(labels, None), fmt_f64(f()));
        }
        Collector::Histogram(h) => {
            let snap = h.snapshot();
            for q in EXPORT_QUANTILES {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    name,
                    fmt_labels(labels, Some(q)),
                    snap.quantile(q)
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                name,
                fmt_labels(labels, None),
                snap.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                name,
                fmt_labels(labels, None),
                snap.count()
            );
        }
    }
}

fn fmt_labels(labels: &Labels, quantile: Option<f64>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{}\"", fmt_f64(q)));
    }
    format!("{{{}}}", parts.join(","))
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_renders_and_dedupes() {
        let reg = Registry::new();
        let c = reg.counter("selfserv_test_total", "A test counter.", &[("hub", "h0")]);
        c.add(3);
        // Same (name, labels) returns the same underlying counter.
        let c2 = reg.counter("selfserv_test_total", "A test counter.", &[("hub", "h0")]);
        c2.inc();
        assert_eq!(c.get(), 4);
        // Different labels: a second series under the same family.
        reg.counter("selfserv_test_total", "A test counter.", &[("hub", "h1")])
            .add(7);

        let g = reg.gauge("selfserv_depth", "Queue depth.", &[]);
        g.set(-2);
        reg.gauge_fn("selfserv_pull", "Pulled gauge.", &[("k", "v")], || 1.5);

        let h = reg.histogram("selfserv_lat_us", "Latency.", &[]);
        for v in [10u64, 20, 30] {
            h.record(v);
        }

        let text = reg.render();
        assert!(text.contains("# HELP selfserv_test_total A test counter.\n"));
        assert!(text.contains("# TYPE selfserv_test_total counter\n"));
        assert!(text.contains("selfserv_test_total{hub=\"h0\"} 4\n"));
        assert!(text.contains("selfserv_test_total{hub=\"h1\"} 7\n"));
        assert!(text.contains("selfserv_depth -2\n"));
        assert!(text.contains("selfserv_pull{k=\"v\"} 1.5\n"));
        assert!(text.contains("# TYPE selfserv_lat_us summary\n"));
        // p50 of {10, 20, 30} reports the upper bound of 20's bucket (21).
        assert!(text.contains("selfserv_lat_us{quantile=\"0.5\"} 21\n"));
        assert!(text.contains("selfserv_lat_us_sum 60\n"));
        assert!(text.contains("selfserv_lat_us_count 3\n"));
        // HELP/TYPE emitted exactly once per family.
        assert_eq!(text.matches("# TYPE selfserv_test_total ").count(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("selfserv_x", "x", &[]);
        reg.gauge("selfserv_x", "x", &[]);
    }

    #[test]
    fn label_escaping() {
        let reg = Registry::new();
        reg.counter("selfserv_esc", "esc", &[("path", "a\"b\\c\nd")]);
        let text = reg.render();
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
    }
}
