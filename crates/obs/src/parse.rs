//! Minimal Prometheus text-format parser.
//!
//! Understands the subset the registry emits — `# HELP` / `# TYPE`
//! comments, samples with optional label sets, and summary-style
//! `_sum` / `_count` suffixes — which is all the stress harness's scraper
//! and the round-trip tests need. Unknown comment lines are skipped;
//! malformed sample lines are errors.

use std::collections::BTreeMap;

/// One sample line: `name{label="value",...} 42`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// Sorted `(key, value)` pairs.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: HELP/TYPE metadata plus all samples in order.
#[derive(Debug, Default, Clone)]
pub struct Exposition {
    pub help: BTreeMap<String, String>,
    pub types: BTreeMap<String, String>,
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The first sample matching `name` and all given label pairs
    /// (the sample may carry extra labels beyond those asked for).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.label(k).is_some_and(|have| have == *v))
        })
    }

    /// Convenience: the value of the first matching sample.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels).map(|s| s.value)
    }

    /// The metric family a sample name belongs to: the name itself if a
    /// TYPE was declared for it, otherwise the name with a summary or
    /// histogram suffix (`_sum`, `_count`, `_bucket`) stripped.
    pub fn family_of(&self, sample_name: &str) -> Option<&str> {
        if self.types.contains_key(sample_name) {
            return self
                .types
                .get_key_value(sample_name)
                .map(|(k, _)| k.as_str());
        }
        for suffix in ["_sum", "_count", "_bucket"] {
            if let Some(base) = sample_name.strip_suffix(suffix) {
                if self.types.contains_key(base) {
                    return self.types.get_key_value(base).map(|(k, _)| k.as_str());
                }
            }
        }
        None
    }

    /// Structural validation used by the round-trip tests: every sample
    /// belongs to a family with declared HELP and TYPE, and no two samples
    /// form a duplicate series (same name and same label set).
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for sample in &self.samples {
            let family = self
                .family_of(&sample.name)
                .ok_or_else(|| format!("sample {} has no TYPE line", sample.name))?;
            if !self.help.contains_key(family) {
                return Err(format!("family {family} has no HELP line"));
            }
            let key = (sample.name.clone(), sample.labels.clone());
            if !seen.insert(key) {
                return Err(format!(
                    "duplicate series {}{:?}",
                    sample.name, sample.labels
                ));
            }
        }
        Ok(())
    }
}

/// Parses a full exposition body.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .map(|(n, h)| (n, h.to_string()))
                .unwrap_or((rest, String::new()));
            out.help.insert(name.to_string(), unescape(&help));
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').ok_or_else(|| err("bad TYPE"))?;
            out.types.insert(name.to_string(), kind.to_string());
        } else if line.starts_with('#') {
            continue;
        } else {
            out.samples.push(parse_sample(line).map_err(|m| err(&m))?);
        }
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line.find(['{', ' ']).ok_or("missing value")?;
    let name = &line[..name_end];
    if name.is_empty() || !is_metric_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let rest = if line[name_end..].starts_with('{') {
        let close = line[name_end..]
            .find('}')
            .map(|i| name_end + i)
            .ok_or("unterminated label set")?;
        parse_labels(&line[name_end + 1..close], &mut labels)?;
        &line[close + 1..]
    } else {
        &line[name_end..]
    };
    let value: f64 = rest
        .split_whitespace()
        .next()
        .ok_or("missing value")?
        .parse()
        .map_err(|_| format!("bad value {:?}", rest.trim()))?;
    labels.sort();
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut chars = body.chars().peekable();
    loop {
        // Skip separators and trailing comma/whitespace.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(());
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} missing quoted value"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut closed = false;
        for c in chars.by_ref() {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                closed = true;
                break;
            } else {
                value.push(c);
            }
        }
        if !closed {
            return Err(format!("label {key:?} has unterminated value"));
        }
        out.push((key.trim().to_string(), value));
    }
}

fn is_metric_name(name: &str) -> bool {
    name.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn unescape(s: &str) -> String {
    s.replace("\\n", "\n").replace("\\\\", "\\")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_samples_with_and_without_labels() {
        let text = "\
# HELP selfserv_x Things.
# TYPE selfserv_x counter
selfserv_x 5
selfserv_x{hub=\"h1\",zone=\"a b\"} 7.5
";
        let exp = parse(text).unwrap();
        assert_eq!(exp.value("selfserv_x", &[]), Some(5.0));
        assert_eq!(exp.value("selfserv_x", &[("hub", "h1")]), Some(7.5));
        assert_eq!(
            exp.find("selfserv_x", &[("hub", "h1")])
                .unwrap()
                .label("zone"),
            Some("a b")
        );
        exp.validate().unwrap();
    }

    #[test]
    fn summary_suffixes_resolve_to_family() {
        let text = "\
# HELP selfserv_lat Latency.
# TYPE selfserv_lat summary
selfserv_lat{quantile=\"0.5\"} 10
selfserv_lat_sum 30
selfserv_lat_count 3
";
        let exp = parse(text).unwrap();
        assert_eq!(exp.family_of("selfserv_lat_sum"), Some("selfserv_lat"));
        exp.validate().unwrap();
    }

    #[test]
    fn validation_catches_problems() {
        let no_type = parse("selfserv_orphan 1\n").unwrap();
        assert!(no_type.validate().unwrap_err().contains("no TYPE"));

        let dup = parse("# HELP d d\n# TYPE d gauge\nd{a=\"1\"} 1\nd{a=\"1\"} 2\n").unwrap();
        assert!(dup.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let text = "# HELP e e\n# TYPE e counter\ne{p=\"a\\\"b\\\\c\\nd\"} 1\n";
        let exp = parse(text).unwrap();
        assert_eq!(exp.samples[0].label("p"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("not a metric!! 3\n").is_err());
        assert!(parse("x{a=\"unterminated} 3\n").is_err());
        assert!(parse("x notanumber\n").is_err());
    }
}
