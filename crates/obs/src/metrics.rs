//! Lock-free metric primitives: monotonic counters, signed gauges, and
//! log-bucketed latency histograms with mergeable snapshots.
//!
//! Everything in this module is safe to hammer from many threads at once:
//! all mutation is relaxed atomic arithmetic, so recording a sample on a
//! hot path costs a handful of uncontended atomic RMWs and never takes a
//! lock. Reads ([`Histogram::snapshot`]) are racy by design — a snapshot
//! taken while writers are active may tear between `count` and `sum`, which
//! is acceptable for monitoring and keeps the write side wait-free.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge (a value that can go up and down).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power of two. Bucket width at magnitude `2^m` is
/// `2^(m-3)`, so the reported quantile over-estimates the true value by at
/// most `1/SUB_BUCKETS` = 12.5%.
const SUB_BUCKETS: usize = 8;

/// Total buckets needed to cover the full `u64` range: values `0..8` get
/// exact buckets, then 61 octaves of 8 sub-buckets each.
pub const BUCKETS: usize = 62 * SUB_BUCKETS;

/// Index of the bucket that holds `v`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 3)) & 0x7) as usize;
        (msb - 2) * SUB_BUCKETS + sub
    }
}

/// Largest value stored in bucket `idx` (inclusive). Quantiles report this
/// bound, so they never under-estimate the rank statistic.
pub(crate) fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let octave = idx / SUB_BUCKETS; // >= 1
        let sub = (idx % SUB_BUCKETS) as u64;
        // First value of the *next* sub-bucket, minus one. Computed in
        // u128 because the top bucket's next boundary is exactly 2^64.
        let next = u128::from(SUB_BUCKETS as u64 + sub + 1) << (octave - 1);
        if next > u128::from(u64::MAX) {
            u64::MAX
        } else {
            next as u64 - 1
        }
    }
}

/// A log-bucketed histogram of `u64` samples (by convention microseconds).
///
/// Recording is wait-free (one relaxed `fetch_add` on the bucket plus
/// count/sum/min/max maintenance). Buckets grow geometrically with 8
/// sub-buckets per power of two, bounding quantile over-estimation at
/// 12.5% relative error while covering the entire `u64` range in
/// [`BUCKETS`] slots.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .field("p50", &snap.quantile(0.5))
            .field("p99", &snap.quantile(0.99))
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy of the bucket counts. Concurrent writers
    /// may land between the bucket reads and the aggregate reads; the
    /// snapshot is internally consistent enough for monitoring.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state. Snapshots from different
/// histograms (e.g. one per hub, or one per driver thread) merge into a
/// combined distribution; merge is commutative and associative because it
/// is element-wise `u64` addition plus min/max folds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// The snapshot of a histogram with no samples: the identity element
    /// of [`merge`](Self::merge).
    pub fn empty() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Combines two snapshots into the distribution of both sample sets.
    pub fn merge(&self, other: &Self) -> Self {
        let counts = self
            .counts
            .iter()
            .zip(other.counts.iter())
            .map(|(a, b)| a + b)
            .collect();
        Self {
            counts,
            count: self.count + other.count,
            // Recording already wraps `sum` via relaxed fetch_add; merging
            // wraps identically so merge == recording-the-union exactly.
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the sample of rank `ceil(q * count)`, clamped to the
    /// recorded `[min, max]` so the estimate never leaves the observed
    /// range (in particular it never regresses below the true minimum).
    /// Returns 0 when the snapshot is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(10);
        g.dec();
        g.add(-4);
        assert_eq!(g.get(), 5);
        g.inc();
        assert_eq!(g.get(), 6);
    }

    /// Bucket indices are monotone in the value, contiguous from zero, and
    /// every value is <= the upper bound of its own bucket while being >
    /// the upper bound of the previous bucket.
    #[test]
    fn bucket_boundaries_are_consistent() {
        // Exact small values.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        // Probe around every octave boundary plus assorted values.
        let mut probes = vec![0u64, 1, 7, 8, 9, 100, 1000, 123_456_789];
        for shift in 3..64 {
            let base = 1u64 << shift;
            probes.extend([base - 1, base, base + 1]);
        }
        probes.push(u64::MAX);
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let upper = bucket_upper_bound(idx);
            assert!(v <= upper, "{v} above its bucket bound {upper}");
            if idx > 0 {
                let prev_upper = bucket_upper_bound(idx - 1);
                assert!(
                    v > prev_upper,
                    "{v} should be above previous bound {prev_upper}"
                );
            }
        }
        // Monotone and contiguous over a dense range.
        let mut last = 0;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx == last || idx == last + 1, "index jumped at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    /// Relative over-estimation of a bucket bound is <= 12.5%.
    #[test]
    fn bucket_relative_error_is_bounded() {
        for shift in 3u32..50 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off * (1u64 << shift.saturating_sub(2));
                let upper = bucket_upper_bound(bucket_index(v));
                let err = (upper - v) as f64 / v as f64;
                assert!(err <= 0.125, "error {err} too large at {v}");
            }
        }
    }

    #[test]
    fn quantiles_bound_the_true_rank_statistic() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.min(), Some(1));
        assert_eq!(snap.max(), Some(1000));
        for (q, true_rank) in [(0.5, 500u64), (0.99, 990), (0.999, 999)] {
            let est = snap.quantile(q);
            assert!(est >= true_rank, "q{q}: {est} < true {true_rank}");
            // Over-estimation bounded by bucket width.
            assert!(
                (est as f64) <= true_rank as f64 * 1.125 + 1.0,
                "q{q}: {est} too far above {true_rank}"
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let snap = HistogramSnapshot::empty();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.min(), None);

        let h = Histogram::new();
        h.record(77);
        let snap = h.snapshot();
        // A single sample: every quantile is clamped to [min, max] == 77.
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(snap.quantile(q), 77);
        }
    }

    #[test]
    fn merge_combines_distributions() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
        }
        for v in 901..=1000u64 {
            b.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.min(), Some(1));
        assert_eq!(merged.max(), Some(1000));
        // Median sits at the top of the low half.
        let p50 = merged.p50();
        assert!((90..=113).contains(&p50), "p50 {p50}");
        // Identity element.
        assert_eq!(merged.merge(&HistogramSnapshot::empty()), merged);
    }
}
