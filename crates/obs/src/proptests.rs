//! Property tests for histogram snapshots: merge forms a commutative
//! monoid over snapshots, quantiles stay inside the recorded value range,
//! and quantile estimates never under-report the true rank statistic.

use crate::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes so samples cross many octaves.
    proptest::collection::vec(
        prop_oneof![0u64..16, 16u64..4096, 4096u64..u64::MAX / 2],
        0..64,
    )
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in arb_samples(), b in arb_samples()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn merge_is_associative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn empty_is_merge_identity(a in arb_samples()) {
        let sa = snapshot_of(&a);
        prop_assert_eq!(sa.merge(&HistogramSnapshot::empty()), sa.clone());
        prop_assert_eq!(HistogramSnapshot::empty().merge(&sa), sa);
    }

    #[test]
    fn merge_equals_recording_union(a in arb_samples(), b in arb_samples()) {
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&union));
    }

    /// Quantiles never regress below the recorded minimum (or above the
    /// maximum), for every snapshot and every probed quantile — including
    /// after merges.
    #[test]
    fn quantiles_stay_in_recorded_range(
        a in arb_samples(),
        b in arb_samples(),
        q in 0.0f64..=1.0,
    ) {
        for snap in [snapshot_of(&a), snapshot_of(&a).merge(&snapshot_of(&b))] {
            let est = snap.quantile(q);
            if let (Some(min), Some(max)) = (snap.min(), snap.max()) {
                prop_assert!(est >= min, "quantile {} below min {}", est, min);
                prop_assert!(est <= max, "quantile {} above max {}", est, max);
            } else {
                prop_assert_eq!(est, 0);
            }
        }
    }

    /// The estimate at quantile `q` is an upper bound for the true rank
    /// statistic of the recorded samples (the histogram reports bucket
    /// upper bounds, so it may over- but never under-estimate).
    #[test]
    fn quantile_bounds_true_rank(
        mut a in proptest::collection::vec(0u64..u64::MAX / 2, 1..64),
        q in 0.0f64..=1.0,
    ) {
        let snap = snapshot_of(&a);
        a.sort_unstable();
        let rank = ((q * a.len() as f64).ceil() as usize).clamp(1, a.len());
        let truth = a[rank - 1];
        prop_assert!(snap.quantile(q) >= truth);
    }
}
