//! # selfserv-obs — unified observability layer
//!
//! Lock-light metric primitives and Prometheus text exposition for the
//! SELF-SERV platform, with zero external dependencies:
//!
//! - [`Counter`] / [`Gauge`] — relaxed-atomic scalars.
//! - [`Histogram`] — log-bucketed (8 sub-buckets per power of two, ≤12.5%
//!   relative error) latency histogram with wait-free recording and
//!   mergeable [`HistogramSnapshot`]s exposing p50/p99/p999.
//! - [`Registry`] — cloneable shared registry rendering the Prometheus
//!   text format (histograms as `summary` families).
//! - [`MetricsServer`] — a `/metrics` scrape endpoint on a std
//!   `TcpListener`, plus [`http_get`] for the scraping side.
//! - [`parse`] — a minimal text-format parser used by the stress
//!   harness's scraper and the round-trip tests.
//!
//! Every layer of the platform registers into one [`Registry`] per hub:
//! transport I/O and writer backpressure, executor run-queue and steal
//! counts, instance lifecycle latencies from the execution monitor,
//! community delegation, and discovery gossip. See `DESIGN.md`
//! ("Observability") for the full inventory.

mod metrics;
pub mod parse;
mod registry;
mod server;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Registry, EXPORT_QUANTILES};
pub use server::{http_get, MetricsServer};

#[cfg(test)]
mod proptests;
