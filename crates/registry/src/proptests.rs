//! Property tests: index consistency under arbitrary publish/delete
//! interleavings, and query/scan agreement.

use crate::{FindQuery, UddiRegistry};
use proptest::prelude::*;
use selfserv_wsdl::{Binding, OperationDef, ServiceDescription};

#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)]
enum Op {
    Publish { name_seed: u8, op_seed: u8 },
    Delete { idx_seed: u8 },
    FindByOp { op_seed: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>())
            .prop_map(|(name_seed, op_seed)| Op::Publish { name_seed, op_seed }),
        any::<u8>().prop_map(|idx_seed| Op::Delete { idx_seed }),
        any::<u8>().prop_map(|op_seed| Op::FindByOp { op_seed }),
    ]
}

fn service_name(seed: u8) -> String {
    format!("Service-{seed}")
}

fn operation_name(seed: u8) -> String {
    format!("op{}", seed % 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any interleaving of publishes and deletes, the indexed `find`
    /// answers agree with a naive full scan.
    #[test]
    fn find_agrees_with_full_scan(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let reg = UddiRegistry::new();
        let biz = reg.save_business("PropCo", "p@p").key;
        let mut published: Vec<crate::ServiceKey> = Vec::new();
        let mut counter = 0u32;
        for op in ops {
            match op {
                Op::Publish { name_seed, op_seed } => {
                    counter += 1;
                    // Unique names to avoid duplicate-service rejections.
                    let name = format!("{}-{counter}", service_name(name_seed));
                    let desc = ServiceDescription::new(name, "PropCo")
                        .with_operation(OperationDef::new(operation_name(op_seed)))
                        .with_binding(Binding::fabric("n"));
                    let key = reg.save_service(&biz, "cat", desc, None).unwrap();
                    published.push(key);
                }
                Op::Delete { idx_seed } => {
                    if !published.is_empty() {
                        let idx = idx_seed as usize % published.len();
                        let key = published.swap_remove(idx);
                        reg.delete_service(&key).unwrap();
                    }
                }
                Op::FindByOp { op_seed } => {
                    let op_name = operation_name(op_seed);
                    let indexed = reg.find(&FindQuery::any().operation(&op_name));
                    let scan: Vec<_> = reg
                        .find(&FindQuery::any())
                        .into_iter()
                        .filter(|r| {
                            r.description
                                .operations
                                .iter()
                                .any(|o| o.name.to_lowercase().starts_with(&op_name))
                        })
                        .collect();
                    prop_assert_eq!(
                        indexed.iter().map(|r| &r.key).collect::<Vec<_>>(),
                        scan.iter().map(|r| &r.key).collect::<Vec<_>>()
                    );
                }
            }
        }
        prop_assert_eq!(reg.service_count(), published.len());
    }

    /// Prefix queries are consistent with their definition.
    #[test]
    fn prefix_query_semantics(names in proptest::collection::hash_set("[a-z]{1,8}", 1..20), prefix in "[a-z]{0,3}") {
        let reg = UddiRegistry::new();
        let biz = reg.save_business("P", "x").key;
        for n in &names {
            let desc = ServiceDescription::new(n.clone(), "P")
                .with_operation(OperationDef::new("op"))
                .with_binding(Binding::fabric("n"));
            reg.save_service(&biz, "c", desc, None).unwrap();
        }
        let hits = reg.find(&FindQuery::any().service_name(&prefix));
        let expected = names.iter().filter(|n| n.starts_with(&prefix)).count();
        prop_assert_eq!(hits.len(), expected);
        for h in hits {
            prop_assert!(h.description.name.starts_with(&prefix));
        }
    }
}
