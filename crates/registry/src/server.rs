//! The registry as a network service: XML request/response envelopes over
//! the fabric — the analogue of the original's UDDI/SOAP calls.

use crate::model::{
    BusinessEntity, BusinessKey, FindQuery, RegistryError, ServiceKey, ServiceRecord,
};
use crate::store::UddiRegistry;
use selfserv_net::{
    ConnectError, Endpoint, Envelope, NodeId, RpcError, Transport, TransportHandle,
};
use selfserv_runtime::{ExecutorHandle, Flow, NodeCtx, NodeHandle, NodeLogic};
use selfserv_wsdl::ServiceDescription;
use selfserv_xml::Element;
use std::sync::Arc;
use std::time::Duration;

/// Message kinds of the registry protocol.
mod kinds {
    pub const SAVE_BUSINESS: &str = "uddi.save_business";
    pub const SAVE_SERVICE: &str = "uddi.save_service";
    pub const FIND_SERVICE: &str = "uddi.find_service";
    pub const FIND_BUSINESS: &str = "uddi.find_business";
    pub const GET_SERVICE: &str = "uddi.get_service";
    pub const DELETE_SERVICE: &str = "uddi.delete_service";
    pub const RESULT: &str = "uddi.result";
    pub const FAULT: &str = "uddi.fault";
    pub const STOP: &str = "registry.stop";
}

fn fault_body(err: &RegistryError) -> Element {
    let code = match err {
        RegistryError::UnknownBusiness(_) => "unknown-business",
        RegistryError::UnknownService(_) => "unknown-service",
        RegistryError::DuplicateService { .. } => "duplicate-service",
        RegistryError::Protocol(_) => "protocol",
        RegistryError::Unreachable(_) => "unreachable",
    };
    Element::new("fault")
        .with_attr("code", code)
        .with_attr("reason", err.to_string())
}

fn decode_fault(body: &Element) -> RegistryError {
    let reason = body.attr("reason").unwrap_or("unspecified").to_string();
    match body.attr("code") {
        Some("unknown-business") => RegistryError::UnknownBusiness(BusinessKey(reason)),
        Some("unknown-service") => RegistryError::UnknownService(ServiceKey(reason)),
        Some("duplicate-service") => RegistryError::DuplicateService {
            business: BusinessKey(String::new()),
            name: reason,
        },
        _ => RegistryError::Protocol(reason),
    }
}

/// Spawner for registry servers: serves the UDDI protocol on an executor
/// node until stopped.
pub struct RegistryServer;

struct RegistryLogic {
    registry: Arc<UddiRegistry>,
}

/// Handle to a spawned [`RegistryServer`] node.
pub struct RegistryServerHandle {
    node: NodeId,
    net: TransportHandle,
    handle: Option<NodeHandle>,
}

impl RegistryServerHandle {
    /// The node name the server listens on.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// Stops the server and joins its thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // Clear any kill left by failure injection so the name isn't
            // poisoned for a redeploy.
            self.net.revive(&self.node);
            handle.stop();
        }
    }
}

impl Drop for RegistryServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl RegistryServer {
    /// Spawns a registry server on `node_name`, serving `registry`, over
    /// any [`Transport`], scheduled on the process-wide shared executor.
    pub fn spawn(
        net: &dyn Transport,
        node_name: &str,
        registry: Arc<UddiRegistry>,
    ) -> Result<RegistryServerHandle, ConnectError> {
        Self::spawn_on(net, selfserv_runtime::shared(), node_name, registry)
    }

    /// Spawns a registry server scheduled on an explicit executor.
    pub fn spawn_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        node_name: &str,
        registry: Arc<UddiRegistry>,
    ) -> Result<RegistryServerHandle, ConnectError> {
        let endpoint = net.connect(NodeId::new(node_name))?;
        let node = endpoint.node().clone();
        Ok(RegistryServerHandle {
            node,
            net: net.handle(),
            handle: Some(exec.spawn_node(endpoint, RegistryLogic { registry })),
        })
    }
}

impl NodeLogic for RegistryLogic {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, request: Envelope) -> Flow {
        if request.kind == kinds::STOP {
            return Flow::Stop;
        }
        let reply = self.handle(&request);
        let (kind, body) = match reply {
            Ok(body) => (kinds::RESULT, body),
            Err(err) => (kinds::FAULT, fault_body(&err)),
        };
        let _ = ctx.endpoint().reply(&request, kind, body);
        Flow::Continue
    }
}

impl RegistryLogic {
    fn handle(&self, request: &Envelope) -> Result<Element, RegistryError> {
        let body = &request.body;
        match request.kind.as_str() {
            kinds::SAVE_BUSINESS => {
                let name = body.require_attr("name").map_err(RegistryError::Protocol)?;
                let contact = body.attr("contact").unwrap_or("");
                let entity = self.registry.save_business(name, contact);
                Ok(Element::new("businessKey")
                    .with_attr("key", &entity.key.0)
                    .with_attr("name", &entity.name))
            }
            kinds::SAVE_SERVICE => {
                let business = BusinessKey(
                    body.require_attr("business")
                        .map_err(RegistryError::Protocol)?
                        .to_string(),
                );
                let category = body.attr("category").unwrap_or("").to_string();
                let lease = body
                    .attr("lease_ms")
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(Duration::from_millis);
                let def = body.find("definitions").ok_or_else(|| {
                    RegistryError::Protocol("save_service missing definitions".into())
                })?;
                let description = ServiceDescription::from_xml(def)
                    .map_err(|e| RegistryError::Protocol(e.to_string()))?;
                let key = self
                    .registry
                    .save_service(&business, category, description, lease)?;
                Ok(Element::new("serviceKey").with_attr("key", &key.0))
            }
            kinds::FIND_SERVICE => {
                let query = FindQuery::from_xml(body)?;
                let mut list = Element::new("serviceList");
                for rec in self.registry.find(&query) {
                    list.push_child(rec.to_xml());
                }
                Ok(list)
            }
            kinds::FIND_BUSINESS => {
                let prefix = body.attr("prefix").unwrap_or("");
                let mut list = Element::new("businessList");
                for b in self.registry.find_businesses(prefix) {
                    list.push_child(
                        Element::new("business")
                            .with_attr("key", &b.key.0)
                            .with_attr("name", &b.name)
                            .with_attr("contact", &b.contact),
                    );
                }
                Ok(list)
            }
            kinds::GET_SERVICE => {
                let key = ServiceKey(
                    body.require_attr("key")
                        .map_err(RegistryError::Protocol)?
                        .to_string(),
                );
                Ok(self.registry.get_service(&key)?.to_xml())
            }
            kinds::DELETE_SERVICE => {
                let key = ServiceKey(
                    body.require_attr("key")
                        .map_err(RegistryError::Protocol)?
                        .to_string(),
                );
                self.registry.delete_service(&key)?;
                Ok(Element::new("ok"))
            }
            other => Err(RegistryError::Protocol(format!(
                "unknown request kind {other:?}"
            ))),
        }
    }
}

/// Typed client for a remote registry node.
pub struct RegistryClient {
    endpoint: Endpoint,
    registry_node: NodeId,
    /// RPC deadline; defaults to 5 s.
    pub timeout: Duration,
}

impl RegistryClient {
    /// Connects a client node and points it at `registry_node`.
    pub fn connect(
        net: &dyn Transport,
        client_name: &str,
        registry_node: impl Into<NodeId>,
    ) -> Result<Self, ConnectError> {
        Ok(RegistryClient {
            endpoint: net.connect(NodeId::new(client_name))?,
            registry_node: registry_node.into(),
            timeout: Duration::from_secs(5),
        })
    }

    /// Builds a client on an existing endpoint (sharing a component's node).
    pub fn on_endpoint(endpoint: Endpoint, registry_node: impl Into<NodeId>) -> Self {
        RegistryClient {
            endpoint,
            registry_node: registry_node.into(),
            timeout: Duration::from_secs(5),
        }
    }

    fn call(&self, kind: &str, body: Element) -> Result<Element, RegistryError> {
        let reply = self
            .endpoint
            .rpc(self.registry_node.clone(), kind, body, self.timeout)
            .map_err(|e| match e {
                RpcError::Timeout => RegistryError::Unreachable("rpc timeout".into()),
                RpcError::Send(s) => RegistryError::Unreachable(s.to_string()),
            })?;
        if reply.kind == kinds::FAULT {
            Err(decode_fault(&reply.body))
        } else {
            Ok(reply.body)
        }
    }

    /// Registers a provider.
    pub fn save_business(&self, name: &str, contact: &str) -> Result<BusinessKey, RegistryError> {
        let body = Element::new("save_business")
            .with_attr("name", name)
            .with_attr("contact", contact);
        let reply = self.call(kinds::SAVE_BUSINESS, body)?;
        Ok(BusinessKey(
            reply
                .require_attr("key")
                .map_err(RegistryError::Protocol)?
                .to_string(),
        ))
    }

    /// Publishes a service description.
    pub fn save_service(
        &self,
        business: &BusinessKey,
        category: &str,
        description: &ServiceDescription,
        lease: Option<Duration>,
    ) -> Result<ServiceKey, RegistryError> {
        let mut body = Element::new("save_service")
            .with_attr("business", &business.0)
            .with_attr("category", category);
        if let Some(l) = lease {
            body.set_attr("lease_ms", l.as_millis().to_string());
        }
        body.push_child(description.to_xml());
        let reply = self.call(kinds::SAVE_SERVICE, body)?;
        Ok(ServiceKey(
            reply
                .require_attr("key")
                .map_err(RegistryError::Protocol)?
                .to_string(),
        ))
    }

    /// Finds services matching a query.
    pub fn find(&self, query: &FindQuery) -> Result<Vec<ServiceRecord>, RegistryError> {
        let reply = self.call(kinds::FIND_SERVICE, query.to_xml())?;
        reply
            .find_all("serviceInfo")
            .map(ServiceRecord::from_xml)
            .collect()
    }

    /// Finds businesses by name prefix.
    pub fn find_businesses(&self, prefix: &str) -> Result<Vec<BusinessEntity>, RegistryError> {
        let reply = self.call(
            kinds::FIND_BUSINESS,
            Element::new("find_business").with_attr("prefix", prefix),
        )?;
        reply
            .find_all("business")
            .map(|b| {
                Ok(BusinessEntity {
                    key: BusinessKey(
                        b.require_attr("key")
                            .map_err(RegistryError::Protocol)?
                            .to_string(),
                    ),
                    name: b
                        .require_attr("name")
                        .map_err(RegistryError::Protocol)?
                        .to_string(),
                    contact: b.attr("contact").unwrap_or("").to_string(),
                })
            })
            .collect()
    }

    /// Retrieves a service by key.
    pub fn get_service(&self, key: &ServiceKey) -> Result<ServiceRecord, RegistryError> {
        let reply = self.call(
            kinds::GET_SERVICE,
            Element::new("get_service").with_attr("key", &key.0),
        )?;
        ServiceRecord::from_xml(&reply)
    }

    /// Deletes a service by key.
    pub fn delete_service(&self, key: &ServiceKey) -> Result<(), RegistryError> {
        self.call(
            kinds::DELETE_SERVICE,
            Element::new("delete_service").with_attr("key", &key.0),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_net::{Network, NetworkConfig};
    use selfserv_wsdl::{Binding, OperationDef};

    fn setup() -> (Network, RegistryServerHandle, RegistryClient) {
        let net = Network::new(NetworkConfig::instant());
        let handle = RegistryServer::spawn(&net, "uddi", Arc::new(UddiRegistry::new())).unwrap();
        let client = RegistryClient::connect(&net, "client", "uddi").unwrap();
        (net, handle, client)
    }

    fn desc(name: &str, op: &str) -> ServiceDescription {
        ServiceDescription::new(name, "TestCo")
            .with_operation(OperationDef::new(op))
            .with_binding(Binding::fabric("svc.x"))
    }

    #[test]
    fn remote_publish_and_find() {
        let (_net, _handle, client) = setup();
        let biz = client.save_business("TestCo", "t@test").unwrap();
        let key = client
            .save_service(
                &biz,
                "travel",
                &desc("Attraction Search", "searchAttractions"),
                None,
            )
            .unwrap();
        let hits = client.find(&FindQuery::any().operation("search")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, key);
        assert_eq!(hits[0].description.name, "Attraction Search");
        assert_eq!(hits[0].provider_name, "TestCo");
    }

    #[test]
    fn remote_get_and_delete() {
        let (_net, _handle, client) = setup();
        let biz = client.save_business("TestCo", "t@test").unwrap();
        let key = client
            .save_service(&biz, "c", &desc("S", "op"), None)
            .unwrap();
        let rec = client.get_service(&key).unwrap();
        assert_eq!(rec.description.name, "S");
        client.delete_service(&key).unwrap();
        assert!(matches!(
            client.get_service(&key),
            Err(RegistryError::UnknownService(_))
        ));
    }

    #[test]
    fn remote_find_businesses() {
        let (_net, _handle, client) = setup();
        client.save_business("AusAir", "a@a").unwrap();
        client.save_business("AusRail", "r@r").unwrap();
        client.save_business("WheelsNow", "w@w").unwrap();
        let hits = client.find_businesses("aus").unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn faults_travel_back() {
        let (_net, _handle, client) = setup();
        let err = client
            .save_service(&BusinessKey("ghost".into()), "c", &desc("S", "op"), None)
            .unwrap_err();
        assert!(matches!(err, RegistryError::UnknownBusiness(_)), "{err:?}");
        let biz = client.save_business("B", "x").unwrap();
        client
            .save_service(&biz, "c", &desc("S", "op"), None)
            .unwrap();
        let dup = client
            .save_service(&biz, "c", &desc("S", "op"), None)
            .unwrap_err();
        assert!(
            matches!(dup, RegistryError::DuplicateService { .. }),
            "{dup:?}"
        );
    }

    #[test]
    fn unknown_request_kind_faults() {
        let (net, handle, _client) = setup();
        let probe = net.connect("probe").unwrap();
        let reply = probe
            .rpc(
                handle.node().clone(),
                "uddi.reboot",
                Element::new("x"),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.kind, "uddi.fault");
    }

    #[test]
    fn client_times_out_when_registry_dead() {
        let (net, handle, client) = setup();
        net.kill(handle.node());
        let mut client = client;
        client.timeout = Duration::from_millis(80);
        let err = client.find(&FindQuery::any()).unwrap_err();
        assert!(matches!(err, RegistryError::Unreachable(_)), "{err:?}");
    }

    #[test]
    fn server_stop_disconnects_node() {
        let (net, handle, _client) = setup();
        assert!(net.is_connected("uddi"));
        handle.stop();
        assert!(!net.is_connected("uddi"));
    }

    #[test]
    fn leases_respected_remotely() {
        let (_net, _handle, client) = setup();
        let biz = client.save_business("B", "x").unwrap();
        client
            .save_service(
                &biz,
                "c",
                &desc("Flaky", "op"),
                Some(Duration::from_millis(1)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(client.find(&FindQuery::any()).unwrap().is_empty());
    }

    #[test]
    fn concurrent_clients() {
        let (net, _handle, client) = setup();
        let biz = client.save_business("B", "x").unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let net = net.clone();
            let biz = biz.clone();
            handles.push(std::thread::spawn(move || {
                let c = RegistryClient::connect(&net, &format!("client{t}"), "uddi").unwrap();
                for i in 0..10 {
                    c.save_service(&biz, "bulk", &desc(&format!("S{t}-{i}"), "op"), None)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            client
                .find(&FindQuery::any().operation("op"))
                .unwrap()
                .len(),
            40
        );
    }
}
