//! The in-memory UDDI registry store with prefix and operation indexes.
//!
//! The service table is **partitioned**: records shard by a stable hash
//! of the (lowercased) service name into [`SHARD_COUNT`] independently
//! locked sub-stores, each with its own indexes. Publishes and lookups
//! touching different names proceed in parallel instead of serializing
//! on one registry-wide lock — the registry stops being a single
//! contention point as provider churn scales. Queries that cannot be
//! pinned to one shard (prefix scans, key lookups) visit the shards in
//! order and merge; results stay sorted by key, so the partitioning is
//! invisible behind the API.

use crate::model::{
    BusinessEntity, BusinessKey, FindQuery, RegistryError, ServiceKey, ServiceRecord,
};
use parking_lot::RwLock;
use selfserv_wsdl::ServiceDescription;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of service-table partitions. A small power of two: enough to
/// spread unrelated publishes across locks, small enough that whole-table
/// scans (empty queries, key lookups) stay cheap.
const SHARD_COUNT: usize = 8;

/// Stable shard index for a service name (FNV-1a over the lowercased
/// name). A business's duplicate check relies on this: records with the
/// same name always land in the same shard.
fn shard_of(service_name: &str) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in service_name.to_lowercase().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    (h % SHARD_COUNT as u64) as usize
}

#[derive(Default)]
struct Indexes {
    /// lowercase service name → keys (BTreeMap for prefix range scans).
    by_name: BTreeMap<String, HashSet<ServiceKey>>,
    /// lowercase provider name → keys.
    by_provider: BTreeMap<String, HashSet<ServiceKey>>,
    /// lowercase operation name → keys.
    by_operation: BTreeMap<String, HashSet<ServiceKey>>,
    /// exact category → keys.
    by_category: HashMap<String, HashSet<ServiceKey>>,
}

impl Indexes {
    fn insert(&mut self, rec: &ServiceRecord) {
        self.by_name
            .entry(rec.description.name.to_lowercase())
            .or_default()
            .insert(rec.key.clone());
        self.by_provider
            .entry(rec.provider_name.to_lowercase())
            .or_default()
            .insert(rec.key.clone());
        for op in &rec.description.operations {
            self.by_operation
                .entry(op.name.to_lowercase())
                .or_default()
                .insert(rec.key.clone());
        }
        self.by_category
            .entry(rec.category.clone())
            .or_default()
            .insert(rec.key.clone());
    }

    fn remove(&mut self, rec: &ServiceRecord) {
        fn drop_key<K: Ord>(map: &mut BTreeMap<K, HashSet<ServiceKey>>, k: K, key: &ServiceKey) {
            if let Some(set) = map.get_mut(&k) {
                set.remove(key);
                if set.is_empty() {
                    map.remove(&k);
                }
            }
        }
        drop_key(
            &mut self.by_name,
            rec.description.name.to_lowercase(),
            &rec.key,
        );
        drop_key(
            &mut self.by_provider,
            rec.provider_name.to_lowercase(),
            &rec.key,
        );
        for op in &rec.description.operations {
            drop_key(&mut self.by_operation, op.name.to_lowercase(), &rec.key);
        }
        if let Some(set) = self.by_category.get_mut(&rec.category) {
            set.remove(&rec.key);
            if set.is_empty() {
                self.by_category.remove(&rec.category);
            }
        }
    }

    /// Keys whose indexed string starts with `prefix` (already lowercased).
    fn prefix_scan(
        map: &BTreeMap<String, HashSet<ServiceKey>>,
        prefix: &str,
    ) -> HashSet<ServiceKey> {
        let mut out = HashSet::new();
        for (name, keys) in map.range(prefix.to_string()..) {
            if !name.starts_with(prefix) {
                break;
            }
            out.extend(keys.iter().cloned());
        }
        out
    }
}

/// One partition of the service table: its records plus their indexes,
/// under an independent lock.
#[derive(Default)]
struct Shard {
    services: HashMap<ServiceKey, ServiceRecord>,
    indexes: Indexes,
}

impl Shard {
    /// The shard's keys matching `query` (every criterion intersected),
    /// or `None` when the query carries no criteria at all.
    fn candidates(&self, query: &FindQuery) -> Option<HashSet<ServiceKey>> {
        let mut candidates: Option<HashSet<ServiceKey>> = None;
        let intersect = |set: HashSet<ServiceKey>, candidates: &mut Option<HashSet<ServiceKey>>| {
            *candidates = Some(match candidates.take() {
                None => set,
                Some(prev) => prev.intersection(&set).cloned().collect(),
            });
        };
        if let Some(p) = &query.provider {
            intersect(
                Indexes::prefix_scan(&self.indexes.by_provider, &p.to_lowercase()),
                &mut candidates,
            );
        }
        if let Some(n) = &query.service_name {
            intersect(
                Indexes::prefix_scan(&self.indexes.by_name, &n.to_lowercase()),
                &mut candidates,
            );
        }
        if let Some(o) = &query.operation {
            intersect(
                Indexes::prefix_scan(&self.indexes.by_operation, &o.to_lowercase()),
                &mut candidates,
            );
        }
        if let Some(c) = &query.category {
            intersect(
                self.indexes.by_category.get(c).cloned().unwrap_or_default(),
                &mut candidates,
            );
        }
        candidates
    }
}

/// The thread-safe UDDI registry. Cheap handle semantics are obtained by
/// wrapping it in `Arc` where shared.
pub struct UddiRegistry {
    businesses: RwLock<HashMap<BusinessKey, BusinessEntity>>,
    shards: Vec<RwLock<Shard>>,
    next_business: AtomicU64,
    next_service: AtomicU64,
}

impl Default for UddiRegistry {
    fn default() -> Self {
        UddiRegistry {
            businesses: RwLock::default(),
            shards: (0..SHARD_COUNT).map(|_| RwLock::default()).collect(),
            next_business: AtomicU64::new(0),
            next_service: AtomicU64::new(0),
        }
    }
}

impl UddiRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a provider; returns its key.
    pub fn save_business(
        &self,
        name: impl Into<String>,
        contact: impl Into<String>,
    ) -> BusinessEntity {
        let key = BusinessKey(format!(
            "biz-{}",
            self.next_business.fetch_add(1, Ordering::Relaxed) + 1
        ));
        let entity = BusinessEntity {
            key: key.clone(),
            name: name.into(),
            contact: contact.into(),
        };
        self.businesses.write().insert(key, entity.clone());
        entity
    }

    /// Looks up a business.
    pub fn business(&self, key: &BusinessKey) -> Option<BusinessEntity> {
        self.businesses.read().get(key).cloned()
    }

    /// All businesses whose name starts with `prefix` (case-insensitive).
    pub fn find_businesses(&self, prefix: &str) -> Vec<BusinessEntity> {
        let prefix = prefix.to_lowercase();
        let mut out: Vec<BusinessEntity> = self
            .businesses
            .read()
            .values()
            .filter(|b| b.name.to_lowercase().starts_with(&prefix))
            .cloned()
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Publishes a service description under a business, with an optional
    /// lease. Publishing a new description for a name the business already
    /// publishes is an error (use [`UddiRegistry::renew`] or delete first).
    ///
    /// Only the name's home shard is locked: same-name records always
    /// hash to the same shard, so the duplicate check stays complete.
    pub fn save_service(
        &self,
        business: &BusinessKey,
        category: impl Into<String>,
        description: ServiceDescription,
        lease: Option<Duration>,
    ) -> Result<ServiceKey, RegistryError> {
        let provider_name = self
            .businesses
            .read()
            .get(business)
            .ok_or_else(|| RegistryError::UnknownBusiness(business.clone()))?
            .name
            .clone();
        let mut shard = self.shards[shard_of(&description.name)].write();
        if shard
            .services
            .values()
            .any(|r| r.business == *business && r.description.name == description.name)
        {
            return Err(RegistryError::DuplicateService {
                business: business.clone(),
                name: description.name,
            });
        }
        let key = ServiceKey(format!(
            "svc-{}",
            self.next_service.fetch_add(1, Ordering::Relaxed) + 1
        ));
        let record = ServiceRecord {
            key: key.clone(),
            business: business.clone(),
            provider_name,
            category: category.into(),
            description,
            published_at: Instant::now(),
            lease,
        };
        shard.indexes.insert(&record);
        shard.services.insert(key.clone(), record);
        Ok(key)
    }

    /// Retrieves a service record (expired leases behave as absent).
    /// Keys don't encode the shard, so the shards are probed in order.
    pub fn get_service(&self, key: &ServiceKey) -> Result<ServiceRecord, RegistryError> {
        let now = Instant::now();
        for shard in &self.shards {
            if let Some(r) = shard.read().services.get(key) {
                return if r.is_expired(now) {
                    Err(RegistryError::UnknownService(key.clone()))
                } else {
                    Ok(r.clone())
                };
            }
        }
        Err(RegistryError::UnknownService(key.clone()))
    }

    /// Deletes a service.
    pub fn delete_service(&self, key: &ServiceKey) -> Result<(), RegistryError> {
        for shard in &self.shards {
            let mut shard = shard.write();
            if let Some(rec) = shard.services.remove(key) {
                shard.indexes.remove(&rec);
                return Ok(());
            }
        }
        Err(RegistryError::UnknownService(key.clone()))
    }

    /// Renews a leased service's publication instant.
    pub fn renew(&self, key: &ServiceKey) -> Result<(), RegistryError> {
        for shard in &self.shards {
            if let Some(r) = shard.write().services.get_mut(key) {
                r.published_at = Instant::now();
                return Ok(());
            }
        }
        Err(RegistryError::UnknownService(key.clone()))
    }

    /// Removes expired records; returns how many were swept. Shards are
    /// swept one at a time — concurrent publishes to other shards never
    /// wait on the sweeper.
    pub fn sweep_expired(&self) -> usize {
        let now = Instant::now();
        let mut swept = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            let expired: Vec<ServiceKey> = shard
                .services
                .values()
                .filter(|r| r.is_expired(now))
                .map(|r| r.key.clone())
                .collect();
            for key in &expired {
                if let Some(rec) = shard.services.remove(key) {
                    shard.indexes.remove(&rec);
                }
            }
            swept += expired.len();
        }
        swept
    }

    /// Finds services matching a query, sorted by key for determinism.
    /// Expired records never match. Each shard resolves its own index
    /// intersection under its own read lock; the per-shard hits are
    /// merged and sorted, so results are identical to an unpartitioned
    /// scan.
    pub fn find(&self, query: &FindQuery) -> Vec<ServiceRecord> {
        let now = Instant::now();
        let mut records: Vec<ServiceRecord> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            match shard.candidates(query) {
                Some(keys) => records.extend(
                    keys.into_iter()
                        .filter_map(|k| shard.services.get(&k))
                        .filter(|r| !r.is_expired(now))
                        .cloned(),
                ),
                // Empty query: everything (unexpired).
                None => records.extend(
                    shard
                        .services
                        .values()
                        .filter(|r| !r.is_expired(now))
                        .cloned(),
                ),
            }
        }
        records.sort_by(|a, b| a.key.cmp(&b.key));
        records
    }

    /// Number of live (unexpired) services.
    pub fn service_count(&self) -> usize {
        let now = Instant::now();
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .services
                    .values()
                    .filter(|r| !r.is_expired(now))
                    .count()
            })
            .sum()
    }

    /// Number of registered businesses.
    pub fn business_count(&self) -> usize {
        self.businesses.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_wsdl::{Binding, OperationDef, ServiceDescription};

    fn desc(name: &str, provider: &str, ops: &[&str]) -> ServiceDescription {
        let mut d = ServiceDescription::new(name, provider).with_binding(Binding::fabric("n"));
        for op in ops {
            d.operations.push(OperationDef::new(*op));
        }
        d
    }

    fn seeded() -> (UddiRegistry, BusinessKey, BusinessKey) {
        let reg = UddiRegistry::new();
        let ausair = reg.save_business("AusAir", "ops@ausair.example").key;
        let wheels = reg.save_business("WheelsNow", "cars@wheels.example").key;
        reg.save_service(
            &ausair,
            "flight-booking",
            desc(
                "Domestic Flight Booking",
                "AusAir",
                &["bookFlight", "cancelFlight"],
            ),
            None,
        )
        .unwrap();
        reg.save_service(
            &ausair,
            "flight-booking",
            desc("International Flight Booking", "AusAir", &["bookFlight"]),
            None,
        )
        .unwrap();
        reg.save_service(
            &wheels,
            "car-rental",
            desc("Car Rental", "WheelsNow", &["rentCar"]),
            None,
        )
        .unwrap();
        (reg, ausair, wheels)
    }

    #[test]
    fn publish_and_count() {
        let (reg, _, _) = seeded();
        assert_eq!(reg.service_count(), 3);
        assert_eq!(reg.business_count(), 2);
    }

    #[test]
    fn find_by_provider_prefix_case_insensitive() {
        let (reg, _, _) = seeded();
        let hits = reg.find(&FindQuery::any().provider("ausa"));
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|r| r.provider_name == "AusAir"));
    }

    #[test]
    fn find_by_service_name_prefix() {
        let (reg, _, _) = seeded();
        let hits = reg.find(&FindQuery::any().service_name("domestic"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].description.name, "Domestic Flight Booking");
    }

    #[test]
    fn find_by_operation() {
        let (reg, _, _) = seeded();
        assert_eq!(reg.find(&FindQuery::any().operation("bookFlight")).len(), 2);
        assert_eq!(reg.find(&FindQuery::any().operation("rent")).len(), 1);
        assert_eq!(reg.find(&FindQuery::any().operation("teleport")).len(), 0);
    }

    #[test]
    fn find_by_category_exact() {
        let (reg, _, _) = seeded();
        assert_eq!(
            reg.find(&FindQuery::any().category("flight-booking")).len(),
            2
        );
        assert_eq!(
            reg.find(&FindQuery::any().category("flight")).len(),
            0,
            "category is exact"
        );
    }

    #[test]
    fn criteria_are_anded() {
        let (reg, _, _) = seeded();
        let hits = reg.find(&FindQuery::any().provider("AusAir").operation("cancel"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].description.name, "Domestic Flight Booking");
        let none = reg.find(
            &FindQuery::any()
                .provider("WheelsNow")
                .operation("bookFlight"),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn empty_query_returns_all_sorted() {
        let (reg, _, _) = seeded();
        let all = reg.find(&FindQuery::any());
        assert_eq!(all.len(), 3);
        let keys: Vec<&str> = all.iter().map(|r| r.key.0.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn duplicate_service_rejected() {
        let (reg, ausair, _) = seeded();
        let err = reg
            .save_service(
                &ausair,
                "flight-booking",
                desc("Domestic Flight Booking", "AusAir", &["bookFlight"]),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, RegistryError::DuplicateService { .. }));
    }

    #[test]
    fn unknown_business_rejected() {
        let reg = UddiRegistry::new();
        let err = reg
            .save_service(&BusinessKey("nope".into()), "c", desc("S", "P", &[]), None)
            .unwrap_err();
        assert!(matches!(err, RegistryError::UnknownBusiness(_)));
    }

    #[test]
    fn delete_removes_from_indexes() {
        let (reg, _, _) = seeded();
        let key = reg.find(&FindQuery::any().service_name("Car Rental"))[0]
            .key
            .clone();
        reg.delete_service(&key).unwrap();
        assert!(reg.find(&FindQuery::any().operation("rentCar")).is_empty());
        assert!(reg.get_service(&key).is_err());
        assert!(reg.delete_service(&key).is_err());
    }

    #[test]
    fn leases_expire_and_sweep() {
        let reg = UddiRegistry::new();
        let biz = reg.save_business("Ephemeral", "x").key;
        let key = reg
            .save_service(
                &biz,
                "c",
                desc("Flaky", "Ephemeral", &["op"]),
                Some(Duration::ZERO),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
        assert!(
            reg.get_service(&key).is_err(),
            "expired record behaves as absent"
        );
        assert!(reg.find(&FindQuery::any()).is_empty());
        assert_eq!(reg.service_count(), 0);
        assert_eq!(reg.sweep_expired(), 1);
    }

    #[test]
    fn renew_extends_lease() {
        let reg = UddiRegistry::new();
        let biz = reg.save_business("B", "x").key;
        let key = reg
            .save_service(
                &biz,
                "c",
                desc("S", "B", &["op"]),
                Some(Duration::from_millis(40)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(25));
        reg.renew(&key).unwrap();
        std::thread::sleep(Duration::from_millis(25));
        assert!(reg.get_service(&key).is_ok(), "renewed lease is still live");
    }

    #[test]
    fn find_businesses_prefix() {
        let (reg, _, _) = seeded();
        assert_eq!(reg.find_businesses("aus").len(), 1);
        assert_eq!(reg.find_businesses("").len(), 2);
    }

    #[test]
    fn business_lookup() {
        let (reg, ausair, _) = seeded();
        assert_eq!(reg.business(&ausair).unwrap().name, "AusAir");
        assert!(reg.business(&BusinessKey("nope".into())).is_none());
    }

    #[test]
    fn records_spread_across_shards_invisibly() {
        let reg = UddiRegistry::new();
        let biz = reg.save_business("Spread", "x").key;
        let mut shards = HashSet::new();
        let mut keys = Vec::new();
        for i in 0..32 {
            let name = format!("Svc-{i}");
            shards.insert(shard_of(&name));
            keys.push(
                reg.save_service(&biz, "c", desc(&name, "Spread", &["op"]), None)
                    .unwrap(),
            );
        }
        assert!(shards.len() > 1, "names hash to multiple shards");
        assert_eq!(reg.service_count(), 32);
        let all = reg.find(&FindQuery::any());
        assert_eq!(all.len(), 32);
        let found: Vec<&str> = all.iter().map(|r| r.key.0.as_str()).collect();
        let mut sorted = found.clone();
        sorted.sort();
        assert_eq!(found, sorted, "merged results stay sorted by key");
        for key in &keys {
            assert!(reg.get_service(key).is_ok(), "key lookup probes all shards");
        }
        reg.delete_service(&keys[0]).unwrap();
        assert_eq!(reg.service_count(), 31);
    }

    #[test]
    fn concurrent_publish_and_find() {
        let reg = std::sync::Arc::new(UddiRegistry::new());
        let biz = reg.save_business("Conc", "x").key;
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = std::sync::Arc::clone(&reg);
            let biz = biz.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    reg.save_service(
                        &biz,
                        "bulk",
                        desc(&format!("Svc-{t}-{i}"), "Conc", &["op"]),
                        None,
                    )
                    .unwrap();
                    let _ = reg.find(&FindQuery::any().operation("op"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.service_count(), 200);
        assert_eq!(reg.find(&FindQuery::any().operation("op")).len(), 200);
    }
}
