//! Registry data model: businesses, published services, queries.

use selfserv_wsdl::ServiceDescription;
use selfserv_xml::Element;
use std::fmt;
use std::time::{Duration, Instant};

/// Key of a registered business (provider). Assigned by the registry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusinessKey(pub String);

impl fmt::Display for BusinessKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Key of a published service. Assigned by the registry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceKey(pub String);

impl fmt::Display for ServiceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A provider registered with the discovery engine (the "provider name,
/// contact data" of the Publish panel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessEntity {
    /// Registry-assigned key.
    pub key: BusinessKey,
    /// Provider name.
    pub name: String,
    /// Contact data.
    pub contact: String,
}

/// A published service: description plus registry metadata.
#[derive(Debug, Clone)]
pub struct ServiceRecord {
    /// Registry-assigned key.
    pub key: ServiceKey,
    /// Owning business.
    pub business: BusinessKey,
    /// Provider name (denormalised for display, as in Figure 3's result
    /// list which shows each provider with all its services).
    pub provider_name: String,
    /// Category (the tModel/service-type analogue, e.g. `"flight-booking"`).
    pub category: String,
    /// The WSDL-style description.
    pub description: ServiceDescription,
    /// When the record was published.
    pub published_at: Instant,
    /// Optional lease; the record expires `lease` after `published_at`
    /// unless renewed.
    pub lease: Option<Duration>,
}

impl ServiceRecord {
    /// True when the lease has expired as of `now`.
    pub fn is_expired(&self, now: Instant) -> bool {
        match self.lease {
            Some(lease) => now.duration_since(self.published_at) > lease,
            None => false,
        }
    }

    /// Encodes the record (metadata + description) for transport.
    pub fn to_xml(&self) -> Element {
        Element::new("serviceInfo")
            .with_attr("key", &self.key.0)
            .with_attr("business", &self.business.0)
            .with_attr("provider", &self.provider_name)
            .with_attr("category", &self.category)
            .with_child(self.description.to_xml())
    }

    /// Decodes a transported record. Lease/publication instants are local
    /// to each side, so they reset to "now, no lease".
    pub fn from_xml(e: &Element) -> Result<Self, RegistryError> {
        if e.name != "serviceInfo" {
            return Err(RegistryError::Protocol(format!(
                "expected <serviceInfo>, got <{}>",
                e.name
            )));
        }
        let desc = e
            .find("definitions")
            .ok_or_else(|| RegistryError::Protocol("serviceInfo missing definitions".into()))?;
        Ok(ServiceRecord {
            key: ServiceKey(
                e.require_attr("key")
                    .map_err(RegistryError::Protocol)?
                    .to_string(),
            ),
            business: BusinessKey(
                e.require_attr("business")
                    .map_err(RegistryError::Protocol)?
                    .to_string(),
            ),
            provider_name: e
                .require_attr("provider")
                .map_err(RegistryError::Protocol)?
                .to_string(),
            category: e.attr("category").unwrap_or("").to_string(),
            description: ServiceDescription::from_xml(desc)
                .map_err(|err| RegistryError::Protocol(err.to_string()))?,
            published_at: Instant::now(),
            lease: None,
        })
    }
}

/// A discovery query. All present criteria must match (logical AND);
/// strings match case-insensitively by prefix, mirroring how the Search
/// panel narrows the provider/service/operation lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FindQuery {
    /// Provider (business) name prefix.
    pub provider: Option<String>,
    /// Service name prefix.
    pub service_name: Option<String>,
    /// Operation name prefix.
    pub operation: Option<String>,
    /// Exact category.
    pub category: Option<String>,
}

impl FindQuery {
    /// Query matching everything.
    pub fn any() -> Self {
        FindQuery::default()
    }

    /// Builder: filter by provider name prefix.
    pub fn provider(mut self, p: impl Into<String>) -> Self {
        self.provider = Some(p.into());
        self
    }

    /// Builder: filter by service name prefix.
    pub fn service_name(mut self, n: impl Into<String>) -> Self {
        self.service_name = Some(n.into());
        self
    }

    /// Builder: filter by operation name prefix.
    pub fn operation(mut self, o: impl Into<String>) -> Self {
        self.operation = Some(o.into());
        self
    }

    /// Builder: filter by exact category.
    pub fn category(mut self, c: impl Into<String>) -> Self {
        self.category = Some(c.into());
        self
    }

    /// Encodes as the body of a `find_service` request.
    pub fn to_xml(&self) -> Element {
        Element::new("find_service")
            .with_opt_attr("provider", self.provider.clone())
            .with_opt_attr("name", self.service_name.clone())
            .with_opt_attr("operation", self.operation.clone())
            .with_opt_attr("category", self.category.clone())
    }

    /// Decodes a `find_service` request body.
    pub fn from_xml(e: &Element) -> Result<Self, RegistryError> {
        if e.name != "find_service" {
            return Err(RegistryError::Protocol(format!(
                "expected <find_service>, got <{}>",
                e.name
            )));
        }
        Ok(FindQuery {
            provider: e.attr("provider").map(str::to_string),
            service_name: e.attr("name").map(str::to_string),
            operation: e.attr("operation").map(str::to_string),
            category: e.attr("category").map(str::to_string),
        })
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Referenced business does not exist.
    UnknownBusiness(BusinessKey),
    /// Referenced service does not exist (or its lease expired).
    UnknownService(ServiceKey),
    /// A service with this name is already published by this business.
    DuplicateService {
        /// The conflicting business.
        business: BusinessKey,
        /// The conflicting service name.
        name: String,
    },
    /// Wire-protocol problem (malformed request/response).
    Protocol(String),
    /// The remote registry could not be reached.
    Unreachable(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownBusiness(k) => write!(f, "unknown business '{k}'"),
            RegistryError::UnknownService(k) => write!(f, "unknown service '{k}'"),
            RegistryError::DuplicateService { business, name } => {
                write!(
                    f,
                    "business '{business}' already publishes a service named {name:?}"
                )
            }
            RegistryError::Protocol(m) => write!(f, "registry protocol error: {m}"),
            RegistryError::Unreachable(m) => write!(f, "registry unreachable: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_wsdl::{Binding, OperationDef, ServiceDescription};

    fn record() -> ServiceRecord {
        ServiceRecord {
            key: ServiceKey("svc-1".into()),
            business: BusinessKey("biz-1".into()),
            provider_name: "AusAir".into(),
            category: "flight-booking".into(),
            description: ServiceDescription::new("Domestic Flight Booking", "AusAir")
                .with_operation(OperationDef::new("bookFlight"))
                .with_binding(Binding::fabric("svc.dfb")),
            published_at: Instant::now(),
            lease: None,
        }
    }

    #[test]
    fn record_xml_round_trip() {
        let r = record();
        let back = ServiceRecord::from_xml(&r.to_xml()).unwrap();
        assert_eq!(back.key, r.key);
        assert_eq!(back.business, r.business);
        assert_eq!(back.provider_name, r.provider_name);
        assert_eq!(back.category, r.category);
        assert_eq!(back.description, r.description);
    }

    #[test]
    fn record_expiry() {
        let mut r = record();
        assert!(!r.is_expired(Instant::now()));
        r.lease = Some(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(r.is_expired(Instant::now()));
        r.lease = Some(Duration::from_secs(3600));
        assert!(!r.is_expired(Instant::now()));
    }

    #[test]
    fn query_xml_round_trip() {
        let q = FindQuery::any()
            .provider("Aus")
            .service_name("Domestic")
            .operation("book")
            .category("flight-booking");
        let back = FindQuery::from_xml(&q.to_xml()).unwrap();
        assert_eq!(back, q);
        let empty = FindQuery::from_xml(&FindQuery::any().to_xml()).unwrap();
        assert_eq!(empty, FindQuery::any());
    }

    #[test]
    fn decode_rejects_wrong_elements() {
        assert!(FindQuery::from_xml(&Element::new("nope")).is_err());
        assert!(ServiceRecord::from_xml(&Element::new("nope")).is_err());
        // serviceInfo without definitions
        let e = Element::new("serviceInfo")
            .with_attr("key", "k")
            .with_attr("business", "b")
            .with_attr("provider", "p");
        assert!(ServiceRecord::from_xml(&e).is_err());
    }

    #[test]
    fn error_display() {
        let e = RegistryError::DuplicateService {
            business: BusinessKey("biz-9".into()),
            name: "X".into(),
        };
        assert!(e.to_string().contains("biz-9"));
    }
}
