//! # selfserv-registry
//!
//! The **service discovery engine** of SELF-SERV: a UDDI-style registry.
//!
//! The paper's discovery engine "facilitates the advertisement and location
//! of services" and is "implemented using UDDI, WSDL and SOAP"; service
//! registration, discovery and invocation are SOAP calls (Section 3). The
//! Search panel of Figure 3 lets users find services "by providers, service
//! names or operations". This crate reproduces that layer:
//!
//! * [`UddiRegistry`] — businesses (providers), published services with
//!   WSDL-style descriptions, categories (the tModel analogue), lease-based
//!   expiry, and [`FindQuery`] lookups by provider / service name /
//!   operation / category (case-insensitive prefix matching, AND-combined);
//! * [`RegistryServer`] — the registry exposed as a fabric node answering
//!   XML request/response envelopes (the SOAP-call analogue);
//! * [`RegistryClient`] — the typed client the service manager, composers
//!   and end users use to publish and search remotely.

mod model;
mod server;
mod store;

pub use model::{BusinessEntity, BusinessKey, FindQuery, RegistryError, ServiceKey, ServiceRecord};
pub use server::{RegistryClient, RegistryServer, RegistryServerHandle};
pub use store::UddiRegistry;

#[cfg(test)]
mod proptests;
