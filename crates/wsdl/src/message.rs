//! [`MessageDoc`]: the XML documents that carry parameter values between
//! wrappers, coordinators, and end users.

use crate::description::{ParamType, WsdlError};
use selfserv_expr::Value;
use selfserv_xml::Element;
use std::collections::BTreeMap;

/// A typed parameter document: the payload of service invocations and
/// replies.
///
/// Parameters are kept sorted by name (`BTreeMap`) so the XML encoding is
/// deterministic — routing-table golden tests and message-size benches rely
/// on that.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MessageDoc {
    /// The operation this message invokes or replies to.
    pub operation: String,
    /// `request` or `response` (or `fault`).
    pub kind: MessageKind,
    /// Parameter bindings.
    params: BTreeMap<String, Value>,
}

/// The direction/flavour of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MessageKind {
    /// An invocation.
    #[default]
    Request,
    /// A successful reply.
    Response,
    /// A failure reply; the `fault` parameter carries the reason.
    Fault,
}

impl MessageKind {
    fn name(self) -> &'static str {
        match self {
            MessageKind::Request => "request",
            MessageKind::Response => "response",
            MessageKind::Fault => "fault",
        }
    }

    fn from_name(s: &str) -> Result<Self, WsdlError> {
        Ok(match s {
            "request" => MessageKind::Request,
            "response" => MessageKind::Response,
            "fault" => MessageKind::Fault,
            other => {
                return Err(WsdlError::Malformed(format!(
                    "unknown message kind {other:?}"
                )))
            }
        })
    }
}

/// Maps a runtime [`Value`] to the parameter type it satisfies, or `None`
/// for `Null` (which is compatible with everything).
pub(crate) fn value_param_type(v: &Value) -> Option<ParamType> {
    match v {
        Value::Null => None,
        Value::Bool(_) => Some(ParamType::Bool),
        Value::Int(_) => Some(ParamType::Int),
        Value::Float(_) => Some(ParamType::Float),
        Value::Str(_) => Some(ParamType::Str),
        Value::List(_) => Some(ParamType::List),
    }
}

impl MessageDoc {
    /// An empty request for `operation`.
    pub fn request(operation: impl Into<String>) -> Self {
        MessageDoc {
            operation: operation.into(),
            kind: MessageKind::Request,
            params: BTreeMap::new(),
        }
    }

    /// An empty response for `operation`.
    pub fn response(operation: impl Into<String>) -> Self {
        MessageDoc {
            operation: operation.into(),
            kind: MessageKind::Response,
            params: BTreeMap::new(),
        }
    }

    /// A fault reply carrying `reason`.
    pub fn fault(operation: impl Into<String>, reason: impl Into<String>) -> Self {
        let mut m = MessageDoc {
            operation: operation.into(),
            kind: MessageKind::Fault,
            params: BTreeMap::new(),
        };
        m.set("fault", Value::Str(reason.into()));
        m
    }

    /// True when this is a fault message.
    pub fn is_fault(&self) -> bool {
        self.kind == MessageKind::Fault
    }

    /// The fault reason, when [`Self::is_fault`].
    pub fn fault_reason(&self) -> Option<&str> {
        if self.is_fault() {
            self.get("fault").and_then(Value::as_str)
        } else {
            None
        }
    }

    /// Builder: sets a parameter and returns `self`.
    pub fn with(mut self, name: impl Into<String>, value: Value) -> Self {
        self.set(name, value);
        self
    }

    /// Sets a parameter.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.params.insert(name.into(), value);
    }

    /// Reads a parameter.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.params.get(name)
    }

    /// Reads a string parameter.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Parameter names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.params.keys().map(String::as_str)
    }

    /// Parameter count.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates over `(name, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Copies every parameter of `other` into `self` (later wins), the
    /// merge coordinators perform when joining parallel branches.
    pub fn merge_from(&mut self, other: &MessageDoc) {
        for (k, v) in &other.params {
            self.params.insert(k.clone(), v.clone());
        }
    }

    /// Consumes the message into its parameter map.
    pub fn into_params(self) -> BTreeMap<String, Value> {
        self.params
    }

    /// Encodes to the platform's XML message form.
    ///
    /// ```xml
    /// <message operation="bookFlight" kind="request">
    ///   <param name="customer" type="string">Eileen</param>
    /// </message>
    /// ```
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("message")
            .with_attr("operation", &self.operation)
            .with_attr("kind", self.kind.name());
        for (name, value) in &self.params {
            e.push_child(encode_param(name, value));
        }
        e
    }

    /// Decodes the XML message form.
    pub fn from_xml(e: &Element) -> Result<Self, WsdlError> {
        if e.name != "message" {
            return Err(WsdlError::Malformed(format!(
                "expected <message>, got <{}>",
                e.name
            )));
        }
        let mut m = MessageDoc {
            operation: e.require_attr("operation")?.to_string(),
            kind: MessageKind::from_name(e.attr("kind").unwrap_or("request"))?,
            params: BTreeMap::new(),
        };
        for p in e.find_all("param") {
            let (name, value) = decode_param(p)?;
            m.params.insert(name, value);
        }
        Ok(m)
    }

    /// Parses from XML text.
    pub fn from_xml_str(s: &str) -> Result<Self, WsdlError> {
        Self::from_xml(&selfserv_xml::parse(s)?)
    }
}

fn encode_param(name: &str, value: &Value) -> Element {
    let ty = match value {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Int(_) => "int",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::List(_) => "list",
    };
    let mut e = Element::new("param")
        .with_attr("name", name)
        .with_attr("type", ty);
    match value {
        Value::Null => {}
        Value::List(items) => {
            for item in items {
                e.push_child(encode_param("item", item));
            }
        }
        other => e.push_text(other.to_lexical()),
    }
    e
}

fn decode_param(e: &Element) -> Result<(String, Value), WsdlError> {
    let name = e.require_attr("name")?.to_string();
    let ty = e.attr("type").unwrap_or("string");
    let text = e.text();
    let value =
        match ty {
            "null" => Value::Null,
            "boolean" => match text.as_str() {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                other => {
                    return Err(WsdlError::Malformed(format!(
                        "param '{name}': bad boolean {other:?}"
                    )))
                }
            },
            "int" => {
                Value::Int(text.trim().parse().map_err(|_| {
                    WsdlError::Malformed(format!("param '{name}': bad int {text:?}"))
                })?)
            }
            "float" => Value::Float(text.trim().parse().map_err(|_| {
                WsdlError::Malformed(format!("param '{name}': bad float {text:?}"))
            })?),
            "string" | "date" => Value::Str(text),
            "list" => {
                let mut items = Vec::new();
                for item in e.find_all("param") {
                    let (_, v) = decode_param(item)?;
                    items.push(v);
                }
                Value::List(items)
            }
            other => {
                return Err(WsdlError::Malformed(format!(
                    "param '{name}': unknown type {other:?}"
                )))
            }
        };
    Ok((name, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MessageDoc {
        MessageDoc::request("bookFlight")
            .with("customer", Value::str("Eileen"))
            .with("destination", Value::str("Hong Kong"))
            .with("budget", Value::Float(1500.5))
            .with("nights", Value::Int(7))
            .with("insured", Value::Bool(false))
            .with("notes", Value::Null)
            .with(
                "attractions",
                Value::List(vec![Value::str("Peak Tram"), Value::str("Star Ferry")]),
            )
    }

    #[test]
    fn xml_round_trip() {
        let m = sample();
        let xml = m.to_xml().to_pretty_xml();
        let back = MessageDoc::from_xml_str(&xml).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn kind_round_trip() {
        for make in [
            MessageDoc::request("x"),
            MessageDoc::response("x"),
            MessageDoc::fault("x", "boom"),
        ] {
            let back = MessageDoc::from_xml(&make.to_xml()).unwrap();
            assert_eq!(back.kind, make.kind);
        }
    }

    #[test]
    fn fault_helpers() {
        let f = MessageDoc::fault("bookFlight", "no seats");
        assert!(f.is_fault());
        assert_eq!(f.fault_reason(), Some("no seats"));
        assert_eq!(sample().fault_reason(), None);
    }

    #[test]
    fn merge_from_overwrites() {
        let mut a = MessageDoc::request("op")
            .with("x", Value::Int(1))
            .with("y", Value::Int(2));
        let b = MessageDoc::response("op")
            .with("y", Value::Int(20))
            .with("z", Value::Int(30));
        a.merge_from(&b);
        assert_eq!(a.get("x"), Some(&Value::Int(1)));
        assert_eq!(a.get("y"), Some(&Value::Int(20)));
        assert_eq!(a.get("z"), Some(&Value::Int(30)));
    }

    #[test]
    fn deterministic_encoding_order() {
        let m1 = MessageDoc::request("op")
            .with("b", Value::Int(2))
            .with("a", Value::Int(1));
        let m2 = MessageDoc::request("op")
            .with("a", Value::Int(1))
            .with("b", Value::Int(2));
        assert_eq!(m1.to_xml().to_xml(), m2.to_xml().to_xml());
    }

    #[test]
    fn decode_rejects_bad_lexicals() {
        let bad_int =
            "<message operation=\"o\"><param name=\"n\" type=\"int\">xyz</param></message>";
        assert!(MessageDoc::from_xml_str(bad_int).is_err());
        let bad_bool =
            "<message operation=\"o\"><param name=\"b\" type=\"boolean\">maybe</param></message>";
        assert!(MessageDoc::from_xml_str(bad_bool).is_err());
        let bad_kind = "<message operation=\"o\" kind=\"telegram\"/>";
        assert!(MessageDoc::from_xml_str(bad_kind).is_err());
    }

    #[test]
    fn missing_kind_defaults_to_request() {
        let m = MessageDoc::from_xml_str("<message operation=\"o\"/>").unwrap();
        assert_eq!(m.kind, MessageKind::Request);
    }

    #[test]
    fn nested_lists_round_trip() {
        let m = MessageDoc::request("op").with(
            "grid",
            Value::List(vec![Value::List(vec![Value::Int(1)]), Value::List(vec![])]),
        );
        let back = MessageDoc::from_xml(&m.to_xml()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn strings_with_markup_round_trip() {
        let m = MessageDoc::request("op").with("q", Value::str("a < b && \"c\""));
        let back = MessageDoc::from_xml_str(&m.to_xml().to_xml()).unwrap();
        assert_eq!(back.get_str("q"), Some("a < b && \"c\""));
    }

    #[test]
    fn iteration_and_len() {
        let m = sample();
        assert_eq!(m.len(), 7);
        assert!(!m.is_empty());
        let names: Vec<&str> = m.names().collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "names iterate in sorted order");
        assert_eq!(m.iter().count(), 7);
    }
}
