//! Service descriptions: the WSDL analogue.

use selfserv_xml::{Element, XmlError};
use std::fmt;

/// Errors produced when decoding or validating WSDL-level artefacts.
#[derive(Debug, Clone, PartialEq)]
pub enum WsdlError {
    /// The underlying XML failed to parse.
    Xml(String),
    /// A document had the wrong shape (missing element/attribute etc.).
    Malformed(String),
    /// A message did not conform to an operation signature.
    Invalid(String),
}

impl fmt::Display for WsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsdlError::Xml(m) => write!(f, "xml error: {m}"),
            WsdlError::Malformed(m) => write!(f, "malformed description: {m}"),
            WsdlError::Invalid(m) => write!(f, "invalid message: {m}"),
        }
    }
}

impl std::error::Error for WsdlError {}

impl From<XmlError> for WsdlError {
    fn from(e: XmlError) -> Self {
        WsdlError::Xml(e.to_string())
    }
}

impl From<String> for WsdlError {
    fn from(m: String) -> Self {
        WsdlError::Malformed(m)
    }
}

/// Parameter types supported by the platform's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamType {
    /// UTF-8 string.
    Str,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Calendar date, carried as an ISO `YYYY-MM-DD` string.
    Date,
    /// List of strings (e.g. attraction names).
    List,
}

impl ParamType {
    /// The name used in XML `type` attributes.
    pub fn name(self) -> &'static str {
        match self {
            ParamType::Str => "string",
            ParamType::Int => "int",
            ParamType::Float => "float",
            ParamType::Bool => "boolean",
            ParamType::Date => "date",
            ParamType::List => "list",
        }
    }

    /// Parses a `type` attribute value.
    pub fn from_name(s: &str) -> Result<Self, WsdlError> {
        Ok(match s {
            "string" => ParamType::Str,
            "int" => ParamType::Int,
            "float" => ParamType::Float,
            "boolean" => ParamType::Bool,
            "date" => ParamType::Date,
            "list" => ParamType::List,
            other => {
                return Err(WsdlError::Malformed(format!(
                    "unknown parameter type {other:?}"
                )))
            }
        })
    }

    /// True when a value of type `actual` may be supplied where `self` is
    /// declared (identity, plus int→float widening, plus date↔string since
    /// dates are carried lexically).
    pub fn accepts(self, actual: ParamType) -> bool {
        self == actual
            || (self == ParamType::Float && actual == ParamType::Int)
            || (self == ParamType::Date && actual == ParamType::Str)
            || (self == ParamType::Str && actual == ParamType::Date)
    }
}

impl fmt::Display for ParamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed parameter of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
    /// Whether the parameter must be present on invocation.
    pub required: bool,
}

impl Param {
    /// A required parameter.
    pub fn required(name: impl Into<String>, ty: ParamType) -> Self {
        Param {
            name: name.into(),
            ty,
            required: true,
        }
    }

    /// An optional parameter.
    pub fn optional(name: impl Into<String>, ty: ParamType) -> Self {
        Param {
            name: name.into(),
            ty,
            required: false,
        }
    }

    fn to_xml(&self, tag: &str) -> Element {
        Element::new(tag)
            .with_attr("name", &self.name)
            .with_attr("type", self.ty.name())
            .with_attr("required", if self.required { "true" } else { "false" })
    }

    fn from_xml(e: &Element) -> Result<Self, WsdlError> {
        Ok(Param {
            name: e.require_attr("name")?.to_string(),
            ty: ParamType::from_name(e.require_attr("type")?)?,
            required: e.attr("required").unwrap_or("true") == "true",
        })
    }
}

/// An operation of a service: the unit end users execute (Figure 3's
/// "Execute" button targets one operation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDef {
    /// Operation name, unique within its service.
    pub name: String,
    /// Human-readable purpose.
    pub documentation: String,
    /// Input parameters.
    pub inputs: Vec<Param>,
    /// Output parameters.
    pub outputs: Vec<Param>,
    /// Events this operation consumes (statechart-level ECA wiring).
    pub consumed_events: Vec<String>,
    /// Events this operation produces.
    pub produced_events: Vec<String>,
}

impl OperationDef {
    /// A new operation with no parameters.
    pub fn new(name: impl Into<String>) -> Self {
        OperationDef {
            name: name.into(),
            documentation: String::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            consumed_events: Vec::new(),
            produced_events: Vec::new(),
        }
    }

    /// Builder: sets documentation.
    pub fn with_doc(mut self, doc: impl Into<String>) -> Self {
        self.documentation = doc.into();
        self
    }

    /// Builder: adds an input parameter.
    pub fn with_input(mut self, p: Param) -> Self {
        self.inputs.push(p);
        self
    }

    /// Builder: adds an output parameter.
    pub fn with_output(mut self, p: Param) -> Self {
        self.outputs.push(p);
        self
    }

    /// Builder: adds a produced event.
    pub fn with_produced_event(mut self, ev: impl Into<String>) -> Self {
        self.produced_events.push(ev.into());
        self
    }

    /// Builder: adds a consumed event.
    pub fn with_consumed_event(mut self, ev: impl Into<String>) -> Self {
        self.consumed_events.push(ev.into());
        self
    }

    /// Looks up an input parameter by name.
    pub fn input(&self, name: &str) -> Option<&Param> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Looks up an output parameter by name.
    pub fn output(&self, name: &str) -> Option<&Param> {
        self.outputs.iter().find(|p| p.name == name)
    }

    /// Checks an invocation message against this signature: every required
    /// input present, every present input declared and type-compatible.
    pub fn validate_inputs(&self, msg: &crate::MessageDoc) -> Result<(), WsdlError> {
        for p in &self.inputs {
            match msg.get(&p.name) {
                None if p.required => {
                    return Err(WsdlError::Invalid(format!(
                        "operation '{}': missing required input '{}'",
                        self.name, p.name
                    )))
                }
                None => {}
                Some(v) => {
                    let actual = crate::message::value_param_type(v);
                    if let Some(actual) = actual {
                        if !p.ty.accepts(actual) {
                            return Err(WsdlError::Invalid(format!(
                                "operation '{}': input '{}' has type {}, expected {}",
                                self.name, p.name, actual, p.ty
                            )));
                        }
                    }
                    // Null passes: it means "explicitly absent".
                }
            }
        }
        for name in msg.names() {
            if self.input(name).is_none() {
                return Err(WsdlError::Invalid(format!(
                    "operation '{}': unexpected input '{}'",
                    self.name, name
                )));
            }
        }
        Ok(())
    }

    /// XML form (`<operation>`).
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("operation").with_attr("name", &self.name);
        if !self.documentation.is_empty() {
            e.push_child(Element::new("documentation").with_text(&self.documentation));
        }
        for p in &self.inputs {
            e.push_child(p.to_xml("input"));
        }
        for p in &self.outputs {
            e.push_child(p.to_xml("output"));
        }
        for ev in &self.consumed_events {
            e.push_child(Element::new("consumes").with_attr("event", ev));
        }
        for ev in &self.produced_events {
            e.push_child(Element::new("produces").with_attr("event", ev));
        }
        e
    }

    /// Decodes the XML form.
    pub fn from_xml(e: &Element) -> Result<Self, WsdlError> {
        if e.name != "operation" {
            return Err(WsdlError::Malformed(format!(
                "expected <operation>, got <{}>",
                e.name
            )));
        }
        let mut op = OperationDef::new(e.require_attr("name")?);
        if let Some(doc) = e.child_text("documentation") {
            op.documentation = doc;
        }
        for i in e.find_all("input") {
            op.inputs.push(Param::from_xml(i)?);
        }
        for o in e.find_all("output") {
            op.outputs.push(Param::from_xml(o)?);
        }
        for c in e.find_all("consumes") {
            op.consumed_events
                .push(c.require_attr("event")?.to_string());
        }
        for p in e.find_all("produces") {
            op.produced_events
                .push(p.require_attr("event")?.to_string());
        }
        Ok(op)
    }
}

/// Transport protocols a binding can use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protocol {
    /// The platform's native envelope protocol over the message fabric
    /// (the analogue of SOAP-over-HTTP in the original).
    #[default]
    SelfServ,
    /// Raw TCP with length-prefixed XML (the analogue of Java sockets).
    Tcp,
}

impl Protocol {
    /// The name used in XML.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::SelfServ => "selfserv",
            Protocol::Tcp => "tcp",
        }
    }

    /// Parses the XML name.
    pub fn from_name(s: &str) -> Result<Self, WsdlError> {
        Ok(match s {
            "selfserv" => Protocol::SelfServ,
            "tcp" => Protocol::Tcp,
            other => return Err(WsdlError::Malformed(format!("unknown protocol {other:?}"))),
        })
    }
}

/// Where and how a service can be invoked — the "binding details" used when
/// an execution request is sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Protocol to use.
    pub protocol: Protocol,
    /// Endpoint address: a fabric node name for [`Protocol::SelfServ`], a
    /// `host:port` pair for [`Protocol::Tcp`].
    pub endpoint: String,
}

impl Binding {
    /// A native-fabric binding.
    pub fn fabric(endpoint: impl Into<String>) -> Self {
        Binding {
            protocol: Protocol::SelfServ,
            endpoint: endpoint.into(),
        }
    }

    /// A TCP binding.
    pub fn tcp(endpoint: impl Into<String>) -> Self {
        Binding {
            protocol: Protocol::Tcp,
            endpoint: endpoint.into(),
        }
    }

    fn to_xml(&self) -> Element {
        Element::new("binding")
            .with_attr("protocol", self.protocol.name())
            .with_attr("endpoint", &self.endpoint)
    }

    fn from_xml(e: &Element) -> Result<Self, WsdlError> {
        Ok(Binding {
            protocol: Protocol::from_name(e.require_attr("protocol")?)?,
            endpoint: e.require_attr("endpoint")?.to_string(),
        })
    }
}

/// A complete service description: the artefact published to the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Service name (e.g. `"Domestic Flight Booking"`).
    pub name: String,
    /// Provider (business) name.
    pub provider: String,
    /// Human-readable purpose.
    pub documentation: String,
    /// The operations offered.
    pub operations: Vec<OperationDef>,
    /// Invocation bindings (at least one for an invocable service).
    pub bindings: Vec<Binding>,
}

impl ServiceDescription {
    /// A new description with no operations.
    pub fn new(name: impl Into<String>, provider: impl Into<String>) -> Self {
        ServiceDescription {
            name: name.into(),
            provider: provider.into(),
            documentation: String::new(),
            operations: Vec::new(),
            bindings: Vec::new(),
        }
    }

    /// Builder: sets documentation.
    pub fn with_doc(mut self, doc: impl Into<String>) -> Self {
        self.documentation = doc.into();
        self
    }

    /// Builder: adds an operation.
    pub fn with_operation(mut self, op: OperationDef) -> Self {
        self.operations.push(op);
        self
    }

    /// Builder: adds a binding.
    pub fn with_binding(mut self, b: Binding) -> Self {
        self.bindings.push(b);
        self
    }

    /// Looks up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&OperationDef> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// The preferred (first) binding, if any.
    pub fn primary_binding(&self) -> Option<&Binding> {
        self.bindings.first()
    }

    /// Encodes to the WSDL-flavoured XML form (`<definitions>`).
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("definitions")
            .with_attr("name", &self.name)
            .with_attr("provider", &self.provider);
        if !self.documentation.is_empty() {
            e.push_child(Element::new("documentation").with_text(&self.documentation));
        }
        for op in &self.operations {
            e.push_child(op.to_xml());
        }
        for b in &self.bindings {
            e.push_child(b.to_xml());
        }
        e
    }

    /// Decodes the XML form.
    pub fn from_xml(e: &Element) -> Result<Self, WsdlError> {
        if e.name != "definitions" {
            return Err(WsdlError::Malformed(format!(
                "expected <definitions>, got <{}>",
                e.name
            )));
        }
        let mut d = ServiceDescription::new(e.require_attr("name")?, e.require_attr("provider")?);
        if let Some(doc) = e.child_text("documentation") {
            d.documentation = doc;
        }
        for op in e.find_all("operation") {
            d.operations.push(OperationDef::from_xml(op)?);
        }
        for b in e.find_all("binding") {
            d.bindings.push(Binding::from_xml(b)?);
        }
        Ok(d)
    }

    /// Parses from XML text.
    pub fn from_xml_str(s: &str) -> Result<Self, WsdlError> {
        Self::from_xml(&selfserv_xml::parse(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessageDoc;
    use selfserv_expr::Value;

    fn flight_booking() -> ServiceDescription {
        ServiceDescription::new("Domestic Flight Booking", "Qantas Demo")
            .with_doc("Books domestic flights within Australia")
            .with_operation(
                OperationDef::new("bookFlight")
                    .with_doc("Book a one-way or return flight")
                    .with_input(Param::required("customer", ParamType::Str))
                    .with_input(Param::required("destination", ParamType::Str))
                    .with_input(Param::required("departure_date", ParamType::Date))
                    .with_input(Param::optional("return_date", ParamType::Date))
                    .with_output(Param::required("confirmation", ParamType::Str))
                    .with_output(Param::required("price", ParamType::Float))
                    .with_produced_event("flightBooked"),
            )
            .with_binding(Binding::fabric("svc.dfb"))
    }

    #[test]
    fn xml_round_trip() {
        let d = flight_booking();
        let xml = d.to_xml().to_pretty_xml();
        let back = ServiceDescription::from_xml_str(&xml).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn operation_lookup() {
        let d = flight_booking();
        assert!(d.operation("bookFlight").is_some());
        assert!(d.operation("cancel").is_none());
        let op = d.operation("bookFlight").unwrap();
        assert_eq!(op.input("customer").unwrap().ty, ParamType::Str);
        assert_eq!(op.output("price").unwrap().ty, ParamType::Float);
    }

    #[test]
    fn validate_accepts_conforming_message() {
        let d = flight_booking();
        let op = d.operation("bookFlight").unwrap();
        let mut msg = MessageDoc::request("bookFlight");
        msg.set("customer", Value::str("Eileen"));
        msg.set("destination", Value::str("Melbourne"));
        msg.set("departure_date", Value::str("2002-08-20"));
        op.validate_inputs(&msg).unwrap();
    }

    #[test]
    fn validate_rejects_missing_required() {
        let d = flight_booking();
        let op = d.operation("bookFlight").unwrap();
        let msg = MessageDoc::request("bookFlight");
        let err = op.validate_inputs(&msg).unwrap_err();
        assert!(err.to_string().contains("customer"), "{err}");
    }

    #[test]
    fn validate_rejects_unknown_param() {
        let d = flight_booking();
        let op = d.operation("bookFlight").unwrap();
        let mut msg = MessageDoc::request("bookFlight");
        msg.set("customer", Value::str("E"));
        msg.set("destination", Value::str("M"));
        msg.set("departure_date", Value::str("2002-08-20"));
        msg.set("seat_colour", Value::str("red"));
        let err = op.validate_inputs(&msg).unwrap_err();
        assert!(err.to_string().contains("seat_colour"), "{err}");
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let d = flight_booking();
        let op = d.operation("bookFlight").unwrap();
        let mut msg = MessageDoc::request("bookFlight");
        msg.set("customer", Value::Int(42));
        msg.set("destination", Value::str("M"));
        msg.set("departure_date", Value::str("2002-08-20"));
        let err = op.validate_inputs(&msg).unwrap_err();
        assert!(err.to_string().contains("customer"), "{err}");
    }

    #[test]
    fn int_widens_to_float() {
        let op = OperationDef::new("pay").with_input(Param::required("amount", ParamType::Float));
        let mut msg = MessageDoc::request("pay");
        msg.set("amount", Value::Int(100));
        op.validate_inputs(&msg).unwrap();
    }

    #[test]
    fn optional_params_may_be_absent() {
        let d = flight_booking();
        let op = d.operation("bookFlight").unwrap();
        let mut msg = MessageDoc::request("bookFlight");
        msg.set("customer", Value::str("E"));
        msg.set("destination", Value::str("M"));
        msg.set("departure_date", Value::str("2002-08-20"));
        op.validate_inputs(&msg).unwrap(); // no return_date
    }

    #[test]
    fn param_type_names_round_trip() {
        for ty in [
            ParamType::Str,
            ParamType::Int,
            ParamType::Float,
            ParamType::Bool,
            ParamType::Date,
            ParamType::List,
        ] {
            assert_eq!(ParamType::from_name(ty.name()).unwrap(), ty);
        }
        assert!(ParamType::from_name("object").is_err());
    }

    #[test]
    fn protocol_names_round_trip() {
        assert_eq!(Protocol::from_name("selfserv").unwrap(), Protocol::SelfServ);
        assert_eq!(Protocol::from_name("tcp").unwrap(), Protocol::Tcp);
        assert!(Protocol::from_name("carrier-pigeon").is_err());
    }

    #[test]
    fn from_xml_rejects_wrong_root() {
        let e = Element::new("service");
        assert!(ServiceDescription::from_xml(&e).is_err());
    }

    #[test]
    fn events_round_trip() {
        let op = OperationDef::new("search")
            .with_consumed_event("searchRequested")
            .with_produced_event("searchDone");
        let back = OperationDef::from_xml(&op.to_xml()).unwrap();
        assert_eq!(back.consumed_events, vec!["searchRequested"]);
        assert_eq!(back.produced_events, vec!["searchDone"]);
    }
}
