//! Property tests: message and description XML round-trips.

use crate::{Binding, MessageDoc, OperationDef, Param, ParamType, ServiceDescription};
use proptest::prelude::*;
use selfserv_expr::Value;

fn arb_param_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,9}"
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Floats that round-trip through decimal text exactly.
        (-100_000i64..100_000).prop_map(|i| Value::Float(i as f64 / 8.0)),
        "[ -~]{0,16}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

fn arb_param_type() -> impl Strategy<Value = ParamType> {
    prop_oneof![
        Just(ParamType::Str),
        Just(ParamType::Int),
        Just(ParamType::Float),
        Just(ParamType::Bool),
        Just(ParamType::Date),
        Just(ParamType::List),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn message_round_trip(
        op in "[a-zA-Z][a-zA-Z0-9_]{0,11}",
        params in proptest::collection::btree_map(arb_param_name(), arb_value(), 0..6),
    ) {
        let mut m = MessageDoc::request(op);
        for (k, v) in params {
            m.set(k, v);
        }
        let xml = m.to_xml().to_pretty_xml();
        let back = MessageDoc::from_xml_str(&xml).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn description_round_trip(
        svc in "[A-Za-z][A-Za-z0-9 ]{0,14}",
        provider in "[A-Za-z][A-Za-z0-9 ]{0,14}",
        ops in proptest::collection::vec(
            ("[a-z][a-zA-Z0-9]{0,9}",
             proptest::collection::vec((arb_param_name(), arb_param_type(), any::<bool>()), 0..4)),
            0..4,
        ),
    ) {
        let mut d = ServiceDescription::new(svc, provider).with_binding(Binding::fabric("node.x"));
        for (name, params) in ops {
            let mut op = OperationDef::new(name);
            for (pname, ty, required) in params {
                op.inputs.push(Param { name: pname, ty, required });
            }
            d.operations.push(op);
        }
        let xml = d.to_xml().to_pretty_xml();
        let back = ServiceDescription::from_xml_str(&xml).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn validation_never_panics(
        v in arb_value(),
        required in any::<bool>(),
        ty in arb_param_type(),
    ) {
        let op = OperationDef::new("op").with_input(Param { name: "p".into(), ty, required });
        let msg = MessageDoc::request("op").with("p", v);
        let _ = op.validate_inputs(&msg);
    }
}
