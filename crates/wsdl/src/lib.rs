//! # selfserv-wsdl
//!
//! WSDL-like service descriptions and typed message documents.
//!
//! In the original SELF-SERV demo, a service's WSDL description had to be
//! "created and deployed … so that \[it\] can be retrieved using public URLs"
//! before publication to the UDDI registry, and invocations were XML
//! documents "sent to the service using the binding details of the WSDL
//! service descriptions". This crate reproduces that layer:
//!
//! * [`ServiceDescription`] — a service with named, typed
//!   [`OperationDef`]s (input/output parameters), bindings, and
//!   documentation; round-trips through a WSDL-flavoured XML form,
//! * [`MessageDoc`] — the XML invocation/reply document carrying parameter
//!   values, with type-checked encoding/decoding,
//! * [`validate_inputs`](OperationDef::validate_inputs) — conformance of a
//!   message against an operation signature (the check the composite
//!   wrapper performs before kicking off an execution).

mod description;
mod message;

pub use description::{
    Binding, OperationDef, Param, ParamType, Protocol, ServiceDescription, WsdlError,
};
pub use message::MessageDoc;

#[cfg(test)]
mod proptests;
