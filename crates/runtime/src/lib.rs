//! # selfserv-runtime
//!
//! The shared worker-pool node runtime of the SELF-SERV reproduction.
//!
//! The paper distributes the execution of a composite service across many
//! lightweight peers ("the responsibility of executing a composite service
//! is distributed across several peers"). A peer must therefore be cheap:
//! a deployment of thousands of coordinators cannot afford one OS thread
//! per peer parked in `recv`. This crate turns every platform component
//! into an event-driven state machine:
//!
//! * [`NodeLogic`] — the component contract: `on_start` / `on_message` /
//!   `on_timer` / `on_stop` callbacks over a transport
//!   [`Endpoint`](selfserv_net::Endpoint);
//! * [`Executor`] — a fixed-size worker pool multiplexing any number of
//!   nodes onto `W` threads, with **per-node mailbox serialization** (one
//!   node never runs on two workers at once), a timer service for the
//!   runtime's `sleep`-shaped delays, and graceful drain on shutdown;
//! * [`ExecutorHandle`] — the cloneable spawn handle components take
//!   instead of `std::thread::Builder`.
//!
//! ## Scheduling model
//!
//! Each spawned node owns its transport endpoint. The runtime installs a
//! *mailbox waker* on the endpoint
//! ([`Endpoint::set_mailbox_waker`](selfserv_net::Endpoint::set_mailbox_waker)):
//! when
//! a transport delivers an envelope, the waker enqueues the node on the
//! executor's run queue (if it is not already queued or running). A worker
//! then drains the node's pending timers and mailbox in arrival order,
//! invoking the callbacks with exclusive access to the logic — the
//! serialization the old one-thread-per-node model provided implicitly.
//! Nodes with empty mailboxes cost nothing: no thread, no poll.
//!
//! ## Waiting without parking: continuation-passing rpc
//!
//! Request/response that scales with load goes through
//! [`NodeCtx::rpc_async`]: the call registers a continuation in the
//! endpoint's reply demultiplexer and returns immediately; when the
//! correlated reply arrives (or the timer-service-backed deadline fires
//! first, or the request cannot be sent) the runtime queues an
//! [`RpcDone`] completion event and the node resumes in
//! [`NodeLogic::on_rpc_done`] — with the same exclusive serialization as
//! `on_message`, and with **zero workers parked** while the request was
//! in flight. A node that stops with requests outstanding cancels them:
//! their ids are retired so late replies are discarded at delivery, and
//! no completion is ever delivered. Off-node work (a spawned pool task)
//! resumes its node the same way through a [`TaskCompleter`].
//!
//! ## Blocking inside callbacks
//!
//! Some waits genuinely park a thread: a backend that simulates service
//! latency with `sleep`, or a deliberately synchronous
//! [`Endpoint::rpc`](selfserv_net::Endpoint::rpc) on a low-concurrency
//! control path. Such sections go through [`NodeCtx::block_on`] (or
//! [`NodeCtx::rpc`], which wraps it): the worker declares itself
//! *blocked*, and the pool — like Go's scheduler around syscalls — spawns
//! a compensating worker whenever the count of unblocked workers would
//! fall below the configured pool size, so node progress can never
//! deadlock on parked workers. Compensating workers retire lazily once
//! the pool is idle and over target, so bursts reuse them instead of
//! thrashing spawn/join.
//!
//! The **thread budget** of a process is therefore
//! `W (workers) + 1 (timer) + B (concurrently blocked callbacks) +
//! transport threads` — independent of how many nodes are deployed, and,
//! since in-flight `rpc_async` invocations contribute nothing to `B`,
//! independent of how many requests are awaiting replies: the blocked
//! term counts only genuinely thread-blocking sections (sleeping
//! backends, synchronous control rpcs). The whole delegation path is out
//! of `B`: coordinators awaiting providers, community servers holding
//! open delegations, and service hosts dispatching non-blocking backends
//! all run continuation-passing, so `B` is bounded by the backends that
//! truly park a thread — not by traffic. The transport term is elastic
//! too: idle TCP writers retire after a few seconds and respawn lazily
//! on the next send.
//!
//! ## Shutdown ordering
//!
//! Stop nodes first ([`NodeHandle::stop`] delivers a stop event, runs
//! `on_stop` on a worker, and drops the endpoint so the node's name frees
//! up), then [`Executor::shutdown`] — which lets workers drain the run
//! queue before joining them. Components' public handles do this in the
//! right order already; the process-wide [`shared`] executor is never shut
//! down.

mod executor;
mod node;
mod timer;

pub use executor::{Executor, ExecutorHandle};
pub use node::{
    Flow, NodeCtx, NodeHandle, NodeLogic, RpcDone, RpcToken, TaskCompleter, TimerToken,
};

use std::sync::OnceLock;

/// The process-wide shared executor: sized to the machine
/// (`available_parallelism`, clamped to 2–8 workers), created on first
/// use, never shut down. Components spawned without an explicit executor
/// (e.g. [`Transport`]-only `spawn` signatures) land here, so an
/// application that never names an executor still runs every node on one
/// bounded pool.
///
/// [`Transport`]: selfserv_net::Transport
pub fn shared() -> &'static ExecutorHandle {
    static SHARED: OnceLock<ExecutorHandle> = OnceLock::new();
    SHARED.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().clamp(2, 8))
            .unwrap_or(4);
        Executor::new(workers).into_handle()
    })
}

#[cfg(test)]
mod proptests;

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_net::{Envelope, Network, NetworkConfig, RecvError};
    use selfserv_xml::Element;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Answers `ping` with `pong`; stops on `stop`.
    struct EchoLogic;

    impl NodeLogic for EchoLogic {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
            match env.kind.as_str() {
                "ping" => {
                    let _ = ctx.endpoint().reply(&env, "pong", Element::new("pong"));
                    Flow::Continue
                }
                "stop" => Flow::Stop,
                _ => Flow::Continue,
            }
        }
    }

    #[test]
    fn node_answers_rpc_on_executor() {
        let exec = Executor::new(2);
        let net = Network::new(NetworkConfig::instant());
        let _node = exec
            .handle()
            .spawn_node(net.connect("echo").unwrap(), EchoLogic);
        let client = net.connect("client").unwrap();
        let reply = client
            .rpc("echo", "ping", Element::new("ping"), Duration::from_secs(2))
            .unwrap();
        assert_eq!(reply.kind, "pong");
        exec.shutdown();
    }

    #[test]
    fn resolved_rpc_deadlines_are_invalidated_in_timer_heap() {
        /// Fires a burst of long-deadline requests; replies resolve them
        /// all long before the deadlines, so without lazy invalidation
        /// every deadline would squat in the timer heap for 100 s.
        struct Burster {
            total: usize,
            done: Arc<AtomicUsize>,
        }
        impl NodeLogic for Burster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                for i in 0..self.total {
                    ctx.rpc_async(
                        "echo",
                        "ping",
                        Element::new("ping"),
                        Duration::from_secs(100),
                        RpcToken(i as u64),
                    );
                }
            }
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                Flow::Continue
            }
            fn on_rpc_done(&mut self, _ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
                assert!(done.result.is_ok());
                self.done.fetch_add(1, Ordering::SeqCst);
                Flow::Continue
            }
        }
        let exec = Executor::new(2);
        let net = Network::new(NetworkConfig::instant());
        let _echo = exec
            .handle()
            .spawn_node(net.connect("echo").unwrap(), EchoLogic);
        let done = Arc::new(AtomicUsize::new(0));
        let total = 200;
        let _burster = exec.handle().spawn_node(
            net.connect("burster").unwrap(),
            Burster {
                total,
                done: Arc::clone(&done),
            },
        );
        let t0 = Instant::now();
        while done.load(Ordering::SeqCst) < total && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(done.load(Ordering::SeqCst), total);
        // Every request resolved; tombstone-triggered rebuilds must have
        // swept the bulk of the 200 dead deadlines out of the heap (the
        // rebuild floor is 64 — below it, tombstones just wait).
        assert!(
            exec.timer_heap_len() < 64,
            "dead deadlines piled up: {} entries for 0 in-flight rpcs",
            exec.timer_heap_len()
        );
        exec.shutdown();
    }

    #[test]
    fn leak_audit_gauges_return_to_zero_after_quiesce() {
        /// One request that replies, one whose destination never answers
        /// (resolved by deadline), one to a nonexistent node (send error):
        /// all three decrement paths of the in-flight gauge.
        struct Auditee {
            done: Arc<AtomicUsize>,
        }
        impl NodeLogic for Auditee {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.rpc_async(
                    "echo",
                    "ping",
                    Element::new("ping"),
                    Duration::from_secs(5),
                    RpcToken(0),
                );
                ctx.rpc_async(
                    "mute",
                    "ping",
                    Element::new("ping"),
                    Duration::from_millis(40),
                    RpcToken(1),
                );
                ctx.rpc_async(
                    "nobody-home",
                    "ping",
                    Element::new("ping"),
                    Duration::from_secs(5),
                    RpcToken(2),
                );
            }
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                Flow::Continue
            }
            fn on_rpc_done(&mut self, _ctx: &mut NodeCtx<'_>, _done: RpcDone) -> Flow {
                self.done.fetch_add(1, Ordering::SeqCst);
                Flow::Continue
            }
        }
        /// Swallows every message without replying.
        struct Mute;
        impl NodeLogic for Mute {
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                Flow::Continue
            }
        }
        let exec = Executor::new(2);
        let handle = exec.handle();
        let net = Network::new(NetworkConfig::instant());
        let echo = handle.spawn_node(net.connect("echo").unwrap(), EchoLogic);
        let mute = handle.spawn_node(net.connect("mute").unwrap(), Mute);
        let done = Arc::new(AtomicUsize::new(0));
        let auditee = handle.spawn_node(
            net.connect("auditee").unwrap(),
            Auditee {
                done: Arc::clone(&done),
            },
        );
        let t0 = Instant::now();
        while done.load(Ordering::SeqCst) < 3 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(done.load(Ordering::SeqCst), 3);
        assert_eq!(
            handle.in_flight_rpcs(),
            0,
            "continuations leaked after all three resolution paths ran"
        );
        auditee.stop();
        mute.stop();
        echo.stop();
        assert_eq!(
            handle.live_timers(),
            0,
            "timer heap holds entries that can still fire into a live node"
        );
        exec.shutdown();
    }

    #[test]
    fn stopping_a_node_mid_rpc_clears_the_in_flight_gauge() {
        struct Caller;
        impl NodeLogic for Caller {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.rpc_async(
                    "mute",
                    "ping",
                    Element::new("ping"),
                    Duration::from_secs(100),
                    RpcToken(0),
                );
            }
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                Flow::Continue
            }
        }
        struct Mute;
        impl NodeLogic for Mute {
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                Flow::Continue
            }
        }
        let exec = Executor::new(2);
        let handle = exec.handle();
        let net = Network::new(NetworkConfig::instant());
        let mute = handle.spawn_node(net.connect("mute").unwrap(), Mute);
        let caller = handle.spawn_node(net.connect("caller").unwrap(), Caller);
        let t0 = Instant::now();
        while handle.in_flight_rpcs() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(handle.in_flight_rpcs(), 1);
        // Cancel-on-stop must release the continuation and its deadline.
        caller.stop();
        assert_eq!(handle.in_flight_rpcs(), 0, "stop leaked the continuation");
        assert_eq!(handle.live_timers(), 0, "stop leaked the rpc deadline");
        mute.stop();
        exec.shutdown();
    }

    #[test]
    fn many_nodes_few_workers() {
        let exec = Executor::new(2);
        let net = Network::new(NetworkConfig::instant());
        let nodes: Vec<NodeHandle> = (0..64)
            .map(|i| {
                exec.handle()
                    .spawn_node(net.connect(format!("echo{i}")).unwrap(), EchoLogic)
            })
            .collect();
        let client = net.connect("client").unwrap();
        for i in 0..64 {
            let reply = client
                .rpc(
                    format!("echo{i}"),
                    "ping",
                    Element::new("ping"),
                    Duration::from_secs(5),
                )
                .unwrap();
            assert_eq!(reply.kind, "pong");
        }
        for n in &nodes {
            n.stop();
        }
        assert!(!net.is_connected("echo0"), "stop frees the name");
        exec.shutdown();
    }

    #[test]
    fn stop_runs_on_stop_and_frees_name() {
        struct Stoppy(Arc<AtomicUsize>);
        impl NodeLogic for Stoppy {
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                Flow::Continue
            }
            fn on_stop(&mut self, _ctx: &mut NodeCtx<'_>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let exec = Executor::new(1);
        let net = Network::new(NetworkConfig::instant());
        let stops = Arc::new(AtomicUsize::new(0));
        let node = exec
            .handle()
            .spawn_node(net.connect("s").unwrap(), Stoppy(Arc::clone(&stops)));
        assert!(net.is_connected("s"));
        node.stop();
        node.stop(); // idempotent
        assert!(node.is_stopped());
        assert!(!net.is_connected("s"));
        assert_eq!(stops.load(Ordering::SeqCst), 1, "on_stop ran exactly once");
        exec.shutdown();
    }

    #[test]
    fn flow_stop_from_on_message_stops_the_node() {
        let exec = Executor::new(1);
        let net = Network::new(NetworkConfig::instant());
        let node = exec
            .handle()
            .spawn_node(net.connect("echo").unwrap(), EchoLogic);
        let client = net.connect("client").unwrap();
        client.send("echo", "stop", Element::new("stop")).unwrap();
        let t0 = Instant::now();
        while !node.is_stopped() && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(node.is_stopped());
        assert!(!net.is_connected("echo"));
        exec.shutdown();
    }

    #[test]
    fn timers_fire_in_order_and_rearm() {
        struct Ticker {
            fired: Arc<AtomicUsize>,
        }
        impl NodeLogic for Ticker {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(Duration::from_millis(10), TimerToken(1));
            }
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                Flow::Continue
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) -> Flow {
                assert_eq!(timer, TimerToken(1));
                if self.fired.fetch_add(1, Ordering::SeqCst) + 1 < 3 {
                    ctx.set_timer(Duration::from_millis(10), TimerToken(1));
                }
                Flow::Continue
            }
        }
        let exec = Executor::new(1);
        let net = Network::new(NetworkConfig::instant());
        let fired = Arc::new(AtomicUsize::new(0));
        let node = exec.handle().spawn_node(
            net.connect("tick").unwrap(),
            Ticker {
                fired: Arc::clone(&fired),
            },
        );
        let t0 = Instant::now();
        while fired.load(Ordering::SeqCst) < 3 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 3, "recurring timer fired");
        node.stop();
        exec.shutdown();
    }

    #[test]
    fn tasks_run_in_parallel_across_workers() {
        let exec = Executor::new(4);
        let handle = exec.handle();
        let done = Arc::new(AtomicUsize::new(0));
        let t0 = Instant::now();
        for _ in 0..4 {
            let done = Arc::clone(&done);
            let h = handle.clone();
            handle.spawn_task(move || {
                h.block_on(|| std::thread::sleep(Duration::from_millis(50)));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        while done.load(Ordering::SeqCst) < 4 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 4);
        assert!(
            t0.elapsed() < Duration::from_millis(180),
            "4 × 50 ms tasks must overlap: {:?}",
            t0.elapsed()
        );
        exec.shutdown();
    }

    #[test]
    fn blocking_rpc_between_nodes_on_a_one_worker_pool() {
        // `front` rpcs `back` from inside on_message. On a 1-worker pool
        // this deadlocks without compensation: the only worker parks in
        // the rpc and `back` never gets scheduled.
        struct Front;
        impl NodeLogic for Front {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
                if env.kind == "go" {
                    let reply = ctx
                        .rpc("back", "ping", Element::new("ping"), Duration::from_secs(5))
                        .expect("compensated rpc completes");
                    let _ = ctx.endpoint().reply(&env, reply.kind, reply.body);
                }
                Flow::Continue
            }
        }
        let exec = Executor::new(1);
        let net = Network::new(NetworkConfig::instant());
        let _front = exec
            .handle()
            .spawn_node(net.connect("front").unwrap(), Front);
        let _back = exec
            .handle()
            .spawn_node(net.connect("back").unwrap(), EchoLogic);
        let client = net.connect("client").unwrap();
        let reply = client
            .rpc("front", "go", Element::new("go"), Duration::from_secs(5))
            .unwrap();
        assert_eq!(reply.kind, "pong");
        exec.shutdown();
    }

    #[test]
    fn compensation_workers_retire_when_idle() {
        let exec = Executor::new(2);
        let handle = exec.handle();
        let release = Arc::new(AtomicBool::new(false));
        for _ in 0..6 {
            let h = handle.clone();
            let release = Arc::clone(&release);
            handle.spawn_task(move || {
                h.block_on(|| {
                    while !release.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                });
            });
        }
        // All six tasks block concurrently: compensation grew the pool.
        let t0 = Instant::now();
        while handle.blocked_workers() < 6 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(handle.live_workers() >= 6, "pool compensated for blockers");
        release.store(true, Ordering::SeqCst);
        let t0 = Instant::now();
        while handle.live_workers() > 2 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.live_workers(), 2, "surplus retired back to base");
        exec.shutdown();
    }

    #[test]
    fn stopping_a_node_from_a_pool_task_on_a_one_worker_pool() {
        // NodeHandle::stop called on a worker (a component handle dropped
        // inside a task or another node's callback) parks that worker
        // until the target's stop turn runs — which needs a worker. The
        // wait is compensated, so even a 1-worker pool makes progress.
        let exec = Executor::new(1);
        let net = Network::new(NetworkConfig::instant());
        let node = exec
            .handle()
            .spawn_node(net.connect("victim").unwrap(), EchoLogic);
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        exec.handle().spawn_task(move || {
            node.stop();
            assert!(node.is_stopped());
            done2.store(true, Ordering::SeqCst);
        });
        let t0 = Instant::now();
        while !done.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(done.load(Ordering::SeqCst), "stop-from-worker completed");
        assert!(!net.is_connected("victim"));
        exec.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_tasks() {
        let exec = Executor::new(1);
        let handle = exec.handle();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            handle.spawn_task(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        exec.shutdown();
        assert_eq!(
            done.load(Ordering::SeqCst),
            32,
            "shutdown ran every queued task"
        );
    }

    #[test]
    fn stop_after_shutdown_still_frees_the_name() {
        let exec = Executor::new(1);
        let net = Network::new(NetworkConfig::instant());
        let node = exec
            .handle()
            .spawn_node(net.connect("late").unwrap(), EchoLogic);
        // Let the start turn finish so no worker holds the node.
        let t0 = Instant::now();
        while net.metrics().node("late").is_none() && t0.elapsed() < Duration::from_millis(200) {
            std::thread::sleep(Duration::from_millis(5));
        }
        exec.shutdown();
        node.stop(); // documented ordering violation: inline finalize
        assert!(node.is_stopped());
        assert!(!net.is_connected("late"));
    }

    #[test]
    fn mailbox_order_is_preserved() {
        struct Collect(Arc<parking_lot::Mutex<Vec<String>>>);
        impl NodeLogic for Collect {
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
                self.0.lock().push(env.body.attr("i").unwrap().to_string());
                Flow::Continue
            }
        }
        let exec = Executor::new(4);
        let net = Network::new(NetworkConfig::instant());
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let node = exec
            .handle()
            .spawn_node(net.connect("sink").unwrap(), Collect(Arc::clone(&seen)));
        let client = net.connect("client").unwrap();
        for i in 0..500 {
            client
                .send("sink", "n", Element::new("n").with_attr("i", i.to_string()))
                .unwrap();
        }
        let t0 = Instant::now();
        while seen.lock().len() < 500 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let seen = seen.lock().clone();
        let expect: Vec<String> = (0..500).map(|i| i.to_string()).collect();
        assert_eq!(seen, expect, "one sender's envelopes arrive in order");
        node.stop();
        exec.shutdown();
    }

    #[test]
    fn panicking_callback_kills_the_node_not_the_pool() {
        // A panic inside on_message must not corrupt worker accounting
        // (shutdown would hang) and must finalize the node (stop would
        // hang); healthy nodes keep running.
        struct Bomb;
        impl NodeLogic for Bomb {
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                panic!("backend bug");
            }
        }
        let exec = Executor::new(2);
        let net = Network::new(NetworkConfig::instant());
        let bomb = exec.handle().spawn_node(net.connect("bomb").unwrap(), Bomb);
        let _echo = exec
            .handle()
            .spawn_node(net.connect("echo").unwrap(), EchoLogic);
        let client = net.connect("client").unwrap();
        client.send("bomb", "boom", Element::new("x")).unwrap();
        let t0 = Instant::now();
        while !bomb.is_stopped() && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(bomb.is_stopped(), "panicked node finalized as dead");
        bomb.stop(); // must not hang
        assert!(!net.is_connected("bomb"), "dead node's name freed");
        // The pool survived: other nodes still answer.
        let reply = client
            .rpc("echo", "ping", Element::new("ping"), Duration::from_secs(2))
            .unwrap();
        assert_eq!(reply.kind, "pong");
        assert_eq!(exec.handle().live_workers(), 2, "no worker died");
        exec.shutdown(); // must not hang on corrupted counts
    }

    /// A node relaying through rpc_async on a 1-worker pool: the reply
    /// arrives as an on_rpc_done event and **no compensation worker is
    /// ever spawned** — the in-flight request parks nothing.
    #[test]
    fn rpc_async_is_thread_free_on_a_one_worker_pool() {
        struct Front;
        impl NodeLogic for Front {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
                if env.kind == "go" {
                    ctx.rpc_async(
                        "back",
                        "ping",
                        Element::new("ping"),
                        Duration::from_secs(5),
                        RpcToken(7),
                    );
                }
                Flow::Continue
            }
            fn on_rpc_done(&mut self, ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
                assert_eq!(done.token, RpcToken(7));
                let reply = done.result.expect("echo answers");
                let _ = ctx.endpoint().send("client", reply.kind, reply.body);
                Flow::Continue
            }
        }
        let exec = Executor::new(1);
        let net = Network::new(NetworkConfig::instant());
        let _front = exec
            .handle()
            .spawn_node(net.connect("front").unwrap(), Front);
        let _back = exec
            .handle()
            .spawn_node(net.connect("back").unwrap(), EchoLogic);
        let client = net.connect("client").unwrap();
        client.send("front", "go", Element::new("go")).unwrap();
        let relayed = client.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(relayed.kind, "pong");
        assert_eq!(
            exec.handle().live_workers(),
            1,
            "no compensation was needed: nothing parked"
        );
        assert_eq!(exec.handle().blocked_workers(), 0);
        exec.shutdown();
    }

    /// A request to a silent responder resolves to Err(Timeout) through
    /// the timer service, and the continuation handler is cleaned up.
    #[test]
    fn rpc_async_times_out_via_the_timer_service() {
        struct Caller(Arc<AtomicUsize>);
        impl NodeLogic for Caller {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
                if env.kind == "go" {
                    ctx.rpc_async(
                        "mute",
                        "ping",
                        Element::new("ping"),
                        Duration::from_millis(50),
                        RpcToken(1),
                    );
                }
                Flow::Continue
            }
            fn on_rpc_done(&mut self, _ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
                assert_eq!(done.result, Err(selfserv_net::RpcError::Timeout));
                self.0.fetch_add(1, Ordering::SeqCst);
                Flow::Continue
            }
        }
        struct Mute;
        impl NodeLogic for Mute {
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
                Flow::Continue // never replies
            }
        }
        let exec = Executor::new(2);
        let net = Network::new(NetworkConfig::instant());
        let timeouts = Arc::new(AtomicUsize::new(0));
        let caller = exec.handle().spawn_node(
            net.connect("caller").unwrap(),
            Caller(Arc::clone(&timeouts)),
        );
        let _mute = exec.handle().spawn_node(net.connect("mute").unwrap(), Mute);
        let client = net.connect("client").unwrap();
        client.send("caller", "go", Element::new("go")).unwrap();
        let t0 = Instant::now();
        while timeouts.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(timeouts.load(Ordering::SeqCst), 1, "exactly one completion");
        caller.stop();
        exec.shutdown();
    }

    /// An unsendable request (unknown destination) resolves to
    /// Err(Send(_)) in the same turn — all failures arrive as completions.
    #[test]
    fn rpc_async_send_failure_arrives_as_completion() {
        struct Caller(Arc<AtomicBool>);
        impl NodeLogic for Caller {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
                if env.kind == "go" {
                    ctx.rpc_async(
                        "nobody-home",
                        "ping",
                        Element::new("ping"),
                        Duration::from_secs(5),
                        RpcToken(3),
                    );
                }
                Flow::Continue
            }
            fn on_rpc_done(&mut self, _ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
                assert!(matches!(
                    done.result,
                    Err(selfserv_net::RpcError::Send(
                        selfserv_net::SendError::UnknownNode(_)
                    ))
                ));
                self.0.store(true, Ordering::SeqCst);
                Flow::Continue
            }
        }
        let exec = Executor::new(1);
        let net = Network::new(NetworkConfig::instant());
        let failed = Arc::new(AtomicBool::new(false));
        let caller = exec
            .handle()
            .spawn_node(net.connect("caller").unwrap(), Caller(Arc::clone(&failed)));
        let client = net.connect("client").unwrap();
        client.send("caller", "go", Element::new("go")).unwrap();
        let t0 = Instant::now();
        while !failed.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(failed.load(Ordering::SeqCst));
        caller.stop();
        exec.shutdown();
    }

    /// Cancel-on-stop: a node stopped with a request in flight delivers no
    /// completion, retires the continuation handler, and discards the late
    /// reply instead of leaking it anywhere.
    #[test]
    fn rpc_async_cancelled_on_stop_discards_late_reply() {
        struct Caller(Arc<AtomicUsize>);
        impl NodeLogic for Caller {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
                if env.kind == "go" {
                    ctx.rpc_async(
                        "slow",
                        "ping",
                        Element::new("ping"),
                        Duration::from_secs(5),
                        RpcToken(9),
                    );
                }
                Flow::Continue
            }
            fn on_rpc_done(&mut self, _ctx: &mut NodeCtx<'_>, _done: RpcDone) -> Flow {
                self.0.fetch_add(1, Ordering::SeqCst);
                Flow::Continue
            }
        }
        // Replies only when released.
        struct Slow {
            parked: Arc<parking_lot::Mutex<Vec<Envelope>>>,
        }
        impl NodeLogic for Slow {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
                if env.kind == "release" {
                    for req in self.parked.lock().drain(..) {
                        let _ = ctx.endpoint().reply(&req, "pong", Element::new("late"));
                    }
                } else {
                    self.parked.lock().push(env);
                }
                Flow::Continue
            }
        }
        let exec = Executor::new(2);
        let net = Network::new(NetworkConfig::instant());
        let completions = Arc::new(AtomicUsize::new(0));
        let caller = exec.handle().spawn_node(
            net.connect("caller").unwrap(),
            Caller(Arc::clone(&completions)),
        );
        let parked = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let slow = exec.handle().spawn_node(
            net.connect("slow").unwrap(),
            Slow {
                parked: Arc::clone(&parked),
            },
        );
        let client = net.connect("client").unwrap();
        client.send("caller", "go", Element::new("go")).unwrap();
        let t0 = Instant::now();
        while parked.lock().is_empty() && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Stop the caller with the request still in flight, then release
        // the reply into the void.
        caller.stop();
        client.send("slow", "release", Element::new("r")).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            completions.load(Ordering::SeqCst),
            0,
            "no completion after stop"
        );
        slow.stop();
        exec.shutdown();
    }

    /// A TaskCompleter resumes its node from a spawned task; one for a
    /// stopped node is dropped silently.
    #[test]
    fn task_completer_resumes_the_node() {
        struct Waiter(Arc<AtomicUsize>);
        impl NodeLogic for Waiter {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
                if env.kind == "go" {
                    let completer = ctx.completer(RpcToken(5));
                    let node = ctx.node().clone();
                    ctx.executor().spawn_task(move || {
                        completer.complete(Ok(Envelope::synthetic(
                            node,
                            "task.result",
                            Element::new("done"),
                        )));
                    });
                }
                Flow::Continue
            }
            fn on_rpc_done(&mut self, _ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
                assert_eq!(done.token, RpcToken(5));
                assert_eq!(done.result.unwrap().kind, "task.result");
                self.0.fetch_add(1, Ordering::SeqCst);
                Flow::Continue
            }
        }
        let exec = Executor::new(2);
        let net = Network::new(NetworkConfig::instant());
        let resumed = Arc::new(AtomicUsize::new(0));
        let node = exec
            .handle()
            .spawn_node(net.connect("waiter").unwrap(), Waiter(Arc::clone(&resumed)));
        let client = net.connect("client").unwrap();
        client.send("waiter", "go", Element::new("go")).unwrap();
        let t0 = Instant::now();
        while resumed.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(resumed.load(Ordering::SeqCst), 1);
        node.stop();
        exec.shutdown();
    }

    #[test]
    fn shared_executor_is_a_singleton() {
        let a = shared();
        let b = shared();
        assert_eq!(a.workers(), b.workers());
        assert!(a.workers() >= 2);
    }

    #[test]
    fn endpoint_recv_error_shapes_unchanged() {
        // The runtime never changes Endpoint semantics for non-runtime
        // users: a bare endpoint still times out normally.
        let net = Network::new(NetworkConfig::instant());
        let e = net.connect("bare").unwrap();
        assert_eq!(
            e.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
    }
}
