//! Node state machines: the [`NodeLogic`] contract, the per-node cell that
//! guarantees serialized callback execution, and the public [`NodeHandle`].

use crate::executor::{ExecutorHandle, Pool, Runnable};
use parking_lot::{Condvar, Mutex};
use selfserv_net::{Endpoint, Envelope, MessageId, NodeId, ReplyDemux, RpcError};
use selfserv_xml::Element;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// How many mailbox envelopes one scheduling turn may consume before the
/// node yields its worker (the node re-queues itself if more are waiting),
/// so one flooded node cannot starve its pool-mates.
const BATCH: usize = 64;

/// What a callback tells the runtime to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep the node running.
    Continue,
    /// Stop the node: `on_stop` runs, the endpoint is dropped (freeing the
    /// node's name), and no further callbacks are delivered.
    Stop,
}

/// Identifies a timer set via [`NodeCtx::set_timer`] when it fires in
/// [`NodeLogic::on_timer`]. Tokens are chosen by the node's logic; the
/// runtime never interprets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Correlates an asynchronous request started via [`NodeCtx::rpc_async`]
/// (or a [`TaskCompleter`]) with the [`RpcDone`] completion later handed
/// to [`NodeLogic::on_rpc_done`]. Like [`TimerToken`], tokens are chosen
/// by the node's logic and never interpreted by the runtime — a node with
/// many requests in flight keys its per-request continuation state on
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RpcToken(pub u64);

/// The completion event of a continuation-passing request: delivered to
/// [`NodeLogic::on_rpc_done`] when the reply of a [`NodeCtx::rpc_async`]
/// arrives (or its deadline fires), or when a [`TaskCompleter`] is
/// completed by an off-node task.
///
/// `result` is `Ok(reply)` with the correlated reply envelope,
/// `Err(RpcError::Timeout)` when the deadline won the race, or
/// `Err(RpcError::Send(_))` when the request never left the transport.
/// Exactly one completion is delivered per request — unless the node
/// stops first, in which case the request is cancelled and nothing is
/// delivered (see the cancel-on-stop notes on [`NodeCtx::rpc_async`]).
#[derive(Debug)]
pub struct RpcDone {
    /// The token the request was started with.
    pub token: RpcToken,
    /// The reply, or why there is none.
    pub result: Result<Envelope, RpcError>,
}

/// An event-driven platform node: the state machine behind one transport
/// endpoint, scheduled by an [`crate::Executor`].
///
/// The runtime guarantees **per-node serialization**: for one spawned
/// node, callbacks never run concurrently and are totally ordered (the old
/// one-thread-per-node model's implicit guarantee). Different nodes run in
/// parallel across the pool's workers.
///
/// Callbacks should return promptly. For request/response, prefer
/// [`NodeCtx::rpc_async`]: it returns immediately and delivers the reply
/// as an [`RpcDone`] completion to [`NodeLogic::on_rpc_done`], so any
/// number of requests can be in flight with zero parked workers. Anything
/// that genuinely *blocks the calling thread* — a sleeping backend, a
/// hand-rolled wait, or a deliberately synchronous [`NodeCtx::rpc`] —
/// must go through [`NodeCtx::block_on`] so the pool can compensate for
/// the parked worker. Don't call [`Endpoint::recv`] inside a callback:
/// the runtime drains the mailbox for you and hands every envelope to
/// `on_message`.
pub trait NodeLogic: Send + 'static {
    /// Runs once, before any message is delivered.
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// Handles one inbound envelope.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow;

    /// Handles a timer set via [`NodeCtx::set_timer`].
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: TimerToken) -> Flow {
        Flow::Continue
    }

    /// Handles the completion of a request started with
    /// [`NodeCtx::rpc_async`] or a [`TaskCompleter`] — the continuation of
    /// a state task split across a reply. Runs with the same exclusive,
    /// serialized access as `on_message`.
    fn on_rpc_done(&mut self, _ctx: &mut NodeCtx<'_>, _done: RpcDone) -> Flow {
        Flow::Continue
    }

    /// Runs exactly once when the node stops (requested via
    /// [`NodeHandle::stop`] or a callback returning [`Flow::Stop`]), while
    /// the endpoint is still connected.
    fn on_stop(&mut self, _ctx: &mut NodeCtx<'_>) {}
}

/// The runtime services available to a callback: the node's endpoint,
/// timers, blocking sections, and the executor itself.
pub struct NodeCtx<'a> {
    endpoint: &'a Endpoint,
    pool: &'a Arc<Pool>,
    cell: &'a Arc<NodeCell>,
}

impl NodeCtx<'_> {
    /// The node's id.
    pub fn node(&self) -> &NodeId {
        self.endpoint.node()
    }

    /// The node's transport endpoint: send, reply, correlate, clone a
    /// [`selfserv_net::NodeSender`] for spawned tasks. Receiving is the
    /// runtime's job — see the [`NodeLogic`] contract.
    pub fn endpoint(&self) -> &Endpoint {
        self.endpoint
    }

    /// The executor this node runs on (to spawn tasks or further nodes).
    pub fn executor(&self) -> ExecutorHandle {
        ExecutorHandle::from_pool(Arc::clone(self.pool))
    }

    /// Runs a section that may block (sleep, wait on a condition, a
    /// hand-rolled request/response), compensating the pool for the parked
    /// worker so other nodes keep making progress. See the crate docs for
    /// the thread-budget implications.
    pub fn block_on<R>(&self, f: impl FnOnce() -> R) -> R {
        self.pool.block_on(f)
    }

    /// *Blocking* request/response as this node — [`Endpoint::rpc`]
    /// wrapped in [`NodeCtx::block_on`]. The calling worker parks on the
    /// reply slot (the reply re-enters through the endpoint's
    /// `ReplyDemux`, exactly as on a dedicated thread) while the pool
    /// compensates, so nodes rpc-ing each other on one executor cannot
    /// deadlock the pool.
    ///
    /// **Decision rule:** each concurrent `rpc` costs one parked OS thread
    /// for its whole round trip; [`NodeCtx::rpc_async`] costs none. Use
    /// `rpc` only where straight-line code mid-callback is worth a thread
    /// — setup/teardown paths, low-concurrency control traffic. Anything
    /// that scales with load (per-instance, per-request invocations)
    /// should use `rpc_async` and resume in [`NodeLogic::on_rpc_done`].
    pub fn rpc(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        timeout: Duration,
    ) -> Result<Envelope, RpcError> {
        let to = to.into();
        let kind = kind.into();
        self.block_on(|| self.endpoint.rpc(to, kind, body, timeout))
    }

    /// Continuation-passing request/response: sends `kind` to `to` as this
    /// node and returns immediately. The correlated reply — or
    /// `Err(Timeout)` once `timeout` elapses first, or `Err(Send(_))` if
    /// the request never left — is delivered back into this node's event
    /// stream as an [`RpcDone`] carrying `token`, handed to
    /// [`NodeLogic::on_rpc_done`] with the usual exclusive serialized
    /// access. **No worker is parked** while the request is in flight, so
    /// any number of requests (across any number of instances this node
    /// manages) can be outstanding on a fixed-size pool.
    ///
    /// Exactly one completion is delivered per call, arbitrated between
    /// the reply, the timer-service-backed deadline, and node stop:
    /// if the node stops first, the request is cancelled — its id is
    /// retired so a late reply is discarded at delivery, and no completion
    /// is ever delivered.
    ///
    /// Returns the request's message id (for diagnostics; completions are
    /// matched by `token`).
    ///
    /// ```
    /// use selfserv_net::{Envelope, Network, NetworkConfig};
    /// use selfserv_runtime::{Executor, Flow, NodeCtx, NodeLogic, RpcDone, RpcToken};
    /// use selfserv_xml::Element;
    /// use std::time::Duration;
    ///
    /// /// Forwards each `ask` to the oracle without parking a worker,
    /// /// answering the original caller when the oracle's reply arrives.
    /// struct Relay {
    ///     next: u64,
    ///     waiting: std::collections::HashMap<RpcToken, Envelope>,
    /// }
    ///
    /// impl NodeLogic for Relay {
    ///     fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
    ///         self.next += 1;
    ///         let token = RpcToken(self.next);
    ///         ctx.rpc_async(
    ///             "oracle",
    ///             "question",
    ///             env.body.clone(),
    ///             Duration::from_secs(5),
    ///             token,
    ///         );
    ///         self.waiting.insert(token, env); // resume state, no parked thread
    ///         Flow::Continue
    ///     }
    ///
    ///     fn on_rpc_done(&mut self, ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
    ///         let asker = self.waiting.remove(&done.token).expect("known token");
    ///         let reply = done.result.expect("oracle answered");
    ///         let _ = ctx.endpoint().reply(&asker, "answer", reply.body);
    ///         Flow::Continue
    ///     }
    /// }
    ///
    /// /// Answers every question with `42`.
    /// struct Oracle;
    /// impl NodeLogic for Oracle {
    ///     fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
    ///         let _ = ctx.endpoint().reply(&env, "wisdom", Element::new("n").with_attr("v", "42"));
    ///         Flow::Continue
    ///     }
    /// }
    ///
    /// let exec = Executor::new(1); // one worker is enough: nobody parks
    /// let net = Network::new(NetworkConfig::instant());
    /// let relay = exec.handle().spawn_node(
    ///     net.connect("relay").unwrap(),
    ///     Relay { next: 0, waiting: Default::default() },
    /// );
    /// let oracle = exec.handle().spawn_node(net.connect("oracle").unwrap(), Oracle);
    /// let client = net.connect("client").unwrap();
    /// let answer = client
    ///     .rpc("relay", "ask", Element::new("q"), Duration::from_secs(5))
    ///     .unwrap();
    /// assert_eq!(answer.body.attr("v"), Some("42"));
    /// relay.stop();
    /// oracle.stop();
    /// exec.shutdown();
    /// ```
    pub fn rpc_async(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        timeout: Duration,
        token: RpcToken,
    ) -> MessageId {
        let transport = self.endpoint.transport();
        let id = transport.next_message_id();
        self.cell.inner.lock().pending_rpcs.insert(
            id,
            PendingRpc {
                token,
                deadline_seq: None,
            },
        );
        // Leak-audit gauge: every insert is matched by exactly one
        // decrement at whichever site wins the pending_rpcs removal.
        self.pool.rpc_in_flight.fetch_add(1, Ordering::Relaxed);
        // Register the continuation before the request leaves, so even an
        // instantly delivered reply finds it. The handler only re-enters
        // the node's scheduler — cheap enough for the delivery path.
        let weak = Arc::downgrade(self.cell);
        self.endpoint.demux().register_handler(id, move |env| {
            if let Some(cell) = weak.upgrade() {
                cell.deliver_rpc_reply(id, env);
            }
        });
        match transport.send_prepared(id, self.node(), to.into(), kind.into(), body, None) {
            Ok(()) => {
                let seq =
                    self.pool
                        .timers
                        .schedule_rpc_deadline(timeout, Arc::downgrade(self.cell), id);
                // Attach the deadline to the request so whoever resolves
                // it (reply or stop) can invalidate the heap entry. If the
                // request already resolved — a same-executor reply can win
                // between send and here — the deadline is dead on arrival:
                // cancel it ourselves.
                let mut inner = self.cell.inner.lock();
                match inner.pending_rpcs.get_mut(&id) {
                    Some(pending) => pending.deadline_seq = Some(seq),
                    None => {
                        drop(inner);
                        self.pool.timers.cancel_rpc_deadline(seq);
                    }
                }
            }
            Err(e) => {
                // The request never left: resolve immediately. The event
                // is picked up at the end of the current turn (a NodeCtx
                // only exists inside one), so no wake is needed.
                self.endpoint.demux().cancel_handler(id);
                let mut inner = self.cell.inner.lock();
                if inner.pending_rpcs.remove(&id).is_some() {
                    self.pool.rpc_in_flight.fetch_sub(1, Ordering::Relaxed);
                }
                inner.events.push_back(Event::RpcDone(RpcDone {
                    token,
                    result: Err(RpcError::Send(e)),
                }));
            }
        }
        id
    }

    /// A one-shot handle that delivers an off-node task's outcome back
    /// into this node's event stream as an [`RpcDone`] completion — the
    /// continuation-passing analogue of returning from a blocking section.
    /// Hand it to a task spawned via [`ExecutorHandle::spawn_task`]; when
    /// the task calls [`TaskCompleter::complete`], the node resumes in
    /// [`NodeLogic::on_rpc_done`] under its usual serialization. If the
    /// node stopped in the meantime, the completion is dropped.
    pub fn completer(&self, token: RpcToken) -> TaskCompleter {
        TaskCompleter {
            cell: Arc::downgrade(self.cell),
            token,
        }
    }

    /// Arms a one-shot timer: `on_timer(token)` fires after `after`
    /// (dropped silently if the node stops first). Re-arm from `on_timer`
    /// for a recurring cadence.
    pub fn set_timer(&self, after: Duration, token: TimerToken) {
        self.pool
            .timers
            .schedule(after, Arc::downgrade(self.cell), token);
    }
}

/// One-shot handle delivering the outcome of off-node work back into the
/// owning node's event stream as an [`RpcDone`] completion. Obtained from
/// [`NodeCtx::completer`]; moved into a spawned pool task (or any thread).
///
/// This is how a node delegates genuinely thread-blocking work (a backend
/// call that sleeps, a file read) without occupying itself: the task runs
/// under [`ExecutorHandle::block_on`] compensation, and its result
/// re-enters the state machine through [`NodeLogic::on_rpc_done`] exactly
/// like an [`NodeCtx::rpc_async`] reply. Completions for stopped nodes
/// are dropped silently. Dropping the completer without calling
/// [`TaskCompleter::complete`] delivers nothing — the owning logic should
/// bound such requests itself if it needs a guarantee.
pub struct TaskCompleter {
    cell: Weak<NodeCell>,
    token: RpcToken,
}

impl TaskCompleter {
    /// The token the completion will carry.
    pub fn token(&self) -> RpcToken {
        self.token
    }

    /// Delivers `result` to the owning node as an [`RpcDone`] completion
    /// (a no-op if the node has stopped).
    pub fn complete(self, result: Result<Envelope, RpcError>) {
        if let Some(cell) = self.cell.upgrade() {
            cell.deliver_completion(self.token, result);
        }
    }
}

impl fmt::Debug for TaskCompleter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskCompleter")
            .field("token", &self.token)
            .finish()
    }
}

enum Event {
    Start,
    Timer(TimerToken),
    RpcDone(RpcDone),
    StopRequested,
}

struct Body {
    logic: Box<dyn NodeLogic>,
    endpoint: Endpoint,
}

struct CellInner {
    /// Runtime events (start, timers, stop requests); transport envelopes
    /// stay queued in the endpoint's own mailbox.
    events: VecDeque<Event>,
    /// True from the moment the node is pushed on the run queue until its
    /// scheduling turn ends — the bit that makes callbacks serialized: a
    /// scheduled/running node is never pushed again.
    scheduled: bool,
    /// Terminal: `on_stop` ran (or the node was finalized inline) and the
    /// endpoint was dropped.
    stopped: bool,
    /// The logic + endpoint, present unless a worker is running the node
    /// (taken for the duration of a turn) or the node has stopped.
    body: Option<Body>,
    /// In-flight [`NodeCtx::rpc_async`] requests: request id → the token
    /// the completion will carry plus its scheduled deadline. Whichever of
    /// reply / deadline / stop removes an id first owns delivering (or
    /// suppressing) its completion — and cancelling the deadline's timer
    /// entry, so resolved requests don't pile dead entries in the heap.
    pending_rpcs: HashMap<MessageId, PendingRpc>,
}

/// Book-keeping for one in-flight [`NodeCtx::rpc_async`] request.
struct PendingRpc {
    token: RpcToken,
    /// The timer-heap sequence number of the request's deadline; `None`
    /// until the deadline is scheduled (a send error resolves the request
    /// before one exists).
    deadline_seq: Option<u64>,
}

/// One spawned node: its event queue, scheduling state, and machine.
pub(crate) struct NodeCell {
    node: NodeId,
    pool: Weak<Pool>,
    /// The endpoint's reply demultiplexer, held directly so rpc deadlines
    /// and stop-time cancellation can reach it even while a worker has the
    /// body checked out mid-turn.
    demux: Arc<ReplyDemux>,
    inner: Mutex<CellInner>,
    stopped_cv: Condvar,
}

impl NodeCell {
    pub(crate) fn spawn(
        pool: &Arc<Pool>,
        endpoint: Endpoint,
        logic: Box<dyn NodeLogic>,
    ) -> NodeHandle {
        let cell = Arc::new(NodeCell {
            node: endpoint.node().clone(),
            pool: Arc::downgrade(pool),
            demux: Arc::clone(endpoint.demux()),
            inner: Mutex::new(CellInner {
                events: VecDeque::from([Event::Start]),
                scheduled: false,
                stopped: false,
                body: Some(Body { logic, endpoint }),
                pending_rpcs: HashMap::new(),
            }),
            stopped_cv: Condvar::new(),
        });
        {
            // Install the waker before the first wake: every envelope the
            // transport queues from here on schedules the node. Anything
            // delivered earlier is already in the mailbox and is drained
            // by the initial turn below.
            let inner = cell.inner.lock();
            let weak_cell = Arc::downgrade(&cell);
            inner
                .body
                .as_ref()
                .expect("fresh cell has its body")
                .endpoint
                .set_mailbox_waker(move || {
                    if let Some(cell) = weak_cell.upgrade() {
                        cell.wake();
                    }
                });
        }
        cell.wake();
        NodeHandle { cell }
    }

    /// Schedules the node if it is not already queued, running, or
    /// stopped.
    pub(crate) fn wake(self: &Arc<Self>) {
        {
            let mut inner = self.inner.lock();
            if inner.stopped || inner.scheduled {
                return;
            }
            inner.scheduled = true;
        }
        if let Some(pool) = self.pool.upgrade() {
            pool.push(Runnable::Node(Arc::clone(self)));
        }
    }

    /// Queues a fired timer as a runtime event and schedules the node.
    pub(crate) fn deliver_timer(self: &Arc<Self>, token: TimerToken) {
        {
            let mut inner = self.inner.lock();
            if inner.stopped {
                return;
            }
            inner.events.push_back(Event::Timer(token));
        }
        self.wake();
    }

    /// Resolves an in-flight rpc with its reply: invoked by the demux
    /// continuation handler on the transport's delivery path. Queues an
    /// [`RpcDone`] completion and schedules the node; a no-op if the
    /// request was already resolved (deadline won) or the node stopped.
    pub(crate) fn deliver_rpc_reply(self: &Arc<Self>, id: MessageId, env: Envelope) {
        let deadline_seq = {
            let mut inner = self.inner.lock();
            if inner.stopped {
                return;
            }
            let Some(pending) = inner.pending_rpcs.remove(&id) else {
                return;
            };
            inner.events.push_back(Event::RpcDone(RpcDone {
                token: pending.token,
                result: Ok(env),
            }));
            pending.deadline_seq
        };
        // The reply won: invalidate the now-dead deadline (outside the
        // cell lock — cancellation takes the timer lock).
        if let Some(pool) = self.pool.upgrade() {
            pool.rpc_in_flight.fetch_sub(1, Ordering::Relaxed);
            if let Some(seq) = deadline_seq {
                pool.timers.cancel_rpc_deadline(seq);
            }
        }
        self.wake();
    }

    /// Resolves an in-flight rpc to a timeout: invoked by the timer
    /// service when the request's deadline fires. The demux arbitrates the
    /// race — if cancelling the continuation handler fails, the reply
    /// already won (or the node stopped and cancelled everything) and the
    /// deadline is a no-op.
    pub(crate) fn deliver_rpc_timeout(self: &Arc<Self>, id: MessageId) {
        if !self.demux.cancel_handler(id) {
            return;
        }
        {
            let mut inner = self.inner.lock();
            if inner.stopped {
                return;
            }
            let Some(pending) = inner.pending_rpcs.remove(&id) else {
                return;
            };
            inner.events.push_back(Event::RpcDone(RpcDone {
                token: pending.token,
                result: Err(RpcError::Timeout),
            }));
        }
        if let Some(pool) = self.pool.upgrade() {
            pool.rpc_in_flight.fetch_sub(1, Ordering::Relaxed);
        }
        self.wake();
    }

    /// Queues a completion delivered by a [`TaskCompleter`] (work finished
    /// off-node). Dropped silently when the node has stopped.
    pub(crate) fn deliver_completion(
        self: &Arc<Self>,
        token: RpcToken,
        result: Result<Envelope, RpcError>,
    ) {
        {
            let mut inner = self.inner.lock();
            if inner.stopped {
                return;
            }
            inner
                .events
                .push_back(Event::RpcDone(RpcDone { token, result }));
        }
        self.wake();
    }

    /// Whether this node has stopped — timers scheduled by a stopped cell
    /// can never fire into it, so the leak audit ignores them.
    pub(crate) fn is_stopped(&self) -> bool {
        self.inner.lock().stopped
    }

    fn finalize(&self, body: Option<Body>) {
        // Drop the endpoint first: the name deregisters and the transport
        // stops delivering before the stop becomes observable.
        drop(body);
        let cancelled: Vec<(MessageId, Option<u64>)> = {
            let mut inner = self.inner.lock();
            inner.stopped = true;
            inner.scheduled = false;
            inner.events.clear();
            inner.body = None;
            inner
                .pending_rpcs
                .drain()
                .map(|(id, pending)| (id, pending.deadline_seq))
                .collect()
        };
        // Cancel-on-stop: retire every in-flight rpc_async id in the demux
        // (outside the cell lock — cancel takes demux locks) so late
        // replies are discarded at delivery instead of running
        // continuations for a dead node — and invalidate their deadlines
        // so the timer heap doesn't carry entries for a stopped node.
        let pool = self.pool.upgrade();
        if let Some(pool) = pool.as_ref() {
            pool.rpc_in_flight
                .fetch_sub(cancelled.len(), Ordering::Relaxed);
        }
        for (id, deadline_seq) in cancelled {
            self.demux.cancel_handler(id);
            if let (Some(seq), Some(pool)) = (deadline_seq, pool.as_ref()) {
                pool.timers.cancel_rpc_deadline(seq);
            }
        }
        self.stopped_cv.notify_all();
    }
}

/// One scheduling turn of a node, executed by a pool worker: drain runtime
/// events, then up to [`BATCH`] mailbox envelopes, re-queueing the node if
/// work remains. Exclusive access is guaranteed by the `scheduled` bit —
/// the queue holds at most one entry per node.
pub(crate) fn run_node(pool: &Arc<Pool>, cell: Arc<NodeCell>) {
    let (mut body, mut events) = {
        let mut inner = cell.inner.lock();
        debug_assert!(inner.scheduled, "a queued node is always marked scheduled");
        match inner.body.take() {
            Some(body) => (body, std::mem::take(&mut inner.events)),
            None => {
                // Already stopped (e.g. finalized inline after an executor
                // shutdown); nothing to run.
                inner.scheduled = false;
                return;
            }
        }
    };
    // Panic fence: if a callback unwinds, the body (and its endpoint) is
    // dropped by the unwind with the turn still holding the node — treat
    // that as node death. The guard finalizes the cell (stopped + name
    // already freed + waiters notified) so `NodeHandle::stop` cannot hang
    // on a wedged node; the worker itself survives via the pool's
    // catch_unwind.
    struct TurnGuard<'a> {
        cell: &'a Arc<NodeCell>,
        armed: bool,
    }
    impl Drop for TurnGuard<'_> {
        fn drop(&mut self) {
            if self.armed {
                self.cell.finalize(None);
            }
        }
    }
    let mut guard = TurnGuard {
        cell: &cell,
        armed: true,
    };
    let mut stop = false;
    {
        let Body { logic, endpoint } = &mut body;
        let endpoint: &Endpoint = endpoint;
        let mut ctx = NodeCtx {
            endpoint,
            pool,
            cell: &cell,
        };
        while let Some(event) = events.pop_front() {
            match event {
                Event::Start => logic.on_start(&mut ctx),
                Event::Timer(token) => {
                    if logic.on_timer(&mut ctx, token) == Flow::Stop {
                        stop = true;
                    }
                }
                Event::RpcDone(done) => {
                    if logic.on_rpc_done(&mut ctx, done) == Flow::Stop {
                        stop = true;
                    }
                }
                Event::StopRequested => stop = true,
            }
            if stop {
                break;
            }
        }
        let mut handled = 0;
        while !stop && handled < BATCH {
            let Some(env) = endpoint.try_recv() else {
                break;
            };
            handled += 1;
            if logic.on_message(&mut ctx, env) == Flow::Stop {
                stop = true;
            }
        }
        if stop {
            logic.on_stop(&mut ctx);
        }
    }
    guard.armed = false;
    if stop {
        cell.finalize(Some(body));
        return;
    }
    let mut inner = cell.inner.lock();
    if inner.stopped {
        // Stopped out from under us (inline finalization raced a late
        // turn); discard the machine.
        inner.scheduled = false;
        drop(inner);
        cell.finalize(Some(body));
        return;
    }
    // Read the mailbox depth *under the cell lock*: a delivery landing
    // after this read runs its waker after we release the lock, where it
    // either observes `scheduled == true` (we re-queued below) or
    // re-schedules the node itself — no lost wakeups either way.
    let more = !inner.events.is_empty() || body.endpoint.pending() > 0;
    inner.body = Some(body);
    if more {
        drop(inner);
        pool.push(Runnable::Node(cell.clone()));
    } else {
        inner.scheduled = false;
    }
}

/// Handle to a spawned node: observe it and stop it. Dropping the handle
/// does **not** stop the node (component handles own that decision).
pub struct NodeHandle {
    cell: Arc<NodeCell>,
}

impl NodeHandle {
    /// The node's id.
    pub fn node(&self) -> &NodeId {
        &self.cell.node
    }

    /// True once the node has fully stopped (endpoint dropped, name free).
    pub fn is_stopped(&self) -> bool {
        self.cell.inner.lock().stopped
    }

    /// Stops the node and waits until it has fully stopped: a stop event
    /// is queued behind whatever the node is currently doing, `on_stop`
    /// runs on a worker, and the endpoint drops (freeing the name).
    /// Idempotent; safe to call from any thread.
    ///
    /// If the executor has already shut down (a documented
    /// ordering violation — stop nodes first), the node is finalized
    /// inline: the endpoint is dropped so the name frees, but `on_stop`
    /// is skipped because no worker exists to run it.
    pub fn stop(&self) {
        {
            let mut inner = self.cell.inner.lock();
            if inner.stopped {
                return;
            }
            inner.events.push_back(Event::StopRequested);
        }
        self.cell.wake();
        let pool = self.cell.pool.upgrade();
        // The wait is a blocking section: when stop() is called from a
        // pool worker (a component handle dropped inside a task or
        // another node's callback), the pool must compensate or the
        // target's stop turn could starve on a saturated pool.
        let wait = || {
            let mut inner = self.cell.inner.lock();
            while !inner.stopped {
                let timed_out = self
                    .cell
                    .stopped_cv
                    .wait_for(&mut inner, Duration::from_millis(100))
                    .timed_out();
                // Inline finalization only when no worker can ever run the
                // stop turn: the pool is gone, or shut down with every
                // worker already exited. During a shutdown *drain*
                // (workers still alive), keep waiting — the queued stop
                // turn runs normally, including `on_stop`.
                let dead = pool
                    .as_ref()
                    .is_none_or(|p| p.is_shut_down() && p.live_worker_count() == 0);
                if timed_out && dead {
                    if let Some(body) = inner.body.take() {
                        // Finalize inline: drops the endpoint before
                        // announcing the stop (`is_stopped() == true` must
                        // imply the name is free) and cancels in-flight
                        // rpc_async requests.
                        drop(inner);
                        self.cell.finalize(Some(body));
                        return;
                    }
                    // A worker still holds the body (mid-turn); keep
                    // waiting — its turn ends even under shutdown, and the
                    // `stopped` check in `run_node` finalizes the node.
                }
            }
        };
        match &pool {
            Some(pool) => pool.block_on(wait),
            None => wait(),
        }
    }
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHandle")
            .field("node", &self.cell.node)
            .field("stopped", &self.is_stopped())
            .finish()
    }
}
