//! The executor's timer service: the runtime's replacement for the
//! `sleep`- and `recv_timeout`-shaped delays of the thread-per-node model.
//!
//! One dedicated thread per [`crate::Executor`] owns a monotonic min-heap
//! of pending timers (the classic timer-wheel role; a heap keeps the
//! vendored-dependency footprint at zero while the timer population stays
//! modest — one TTL sweep per *busy* node plus one deadline per in-flight
//! [`crate::NodeCtx::rpc_async`]). When a timer fires, the service
//! enqueues a timer event on the owning node and wakes it through the
//! ordinary run queue, so `on_timer` gets the same exclusive, serialized
//! access to the node as `on_message`. Rpc deadlines ride the same heap:
//! firing one resolves the request to a timeout completion unless its
//! reply already won the race.

use crate::node::{NodeCell, TimerToken};
use parking_lot::{Condvar, Mutex};
use selfserv_net::MessageId;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// What firing an entry delivers to its node: an ordinary `on_timer` token,
/// or the timeout of a continuation-passing rpc (see
/// [`crate::NodeCtx::rpc_async`]), which resolves the request to
/// `Err(Timeout)` if its reply has not arrived by the deadline.
enum Fire {
    Timer(TimerToken),
    RpcDeadline(MessageId),
}

struct Entry {
    at: Instant,
    /// Tie-breaker preserving schedule order among equal deadlines.
    seq: u64,
    cell: Weak<NodeCell>,
    fire: Fire,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap on (deadline, sequence).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct TimerState {
    heap: BinaryHeap<Entry>,
    seq: u64,
    stopped: bool,
    /// Lazily invalidated entries (resolved rpc deadlines), keyed by the
    /// unique schedule sequence number — message ids are only unique per
    /// transport, and one executor may serve several. A cancelled entry is
    /// skipped at fire time; once the set grows past both a floor and half
    /// the heap, the heap is rebuilt without the dead entries so
    /// long-timeout/high-rate rpc workloads don't accumulate them.
    cancelled: HashSet<u64>,
}

/// Tombstone count below which a rebuild never triggers: rebuilds are
/// O(heap), so tiny cancel bursts just wait for fire-time skipping.
const REBUILD_FLOOR: usize = 64;

struct TimerInner {
    state: Mutex<TimerState>,
    cv: Condvar,
}

/// Handle to the executor's timer thread. Owned by the pool; scheduling is
/// reached through [`crate::NodeCtx::set_timer`].
pub(crate) struct TimerService {
    inner: Arc<TimerInner>,
}

impl TimerService {
    pub(crate) fn new() -> Self {
        TimerService {
            inner: Arc::new(TimerInner {
                state: Mutex::new(TimerState {
                    heap: BinaryHeap::new(),
                    seq: 0,
                    stopped: false,
                    cancelled: HashSet::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Spawns the timer thread (once per executor).
    pub(crate) fn start(&self) {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name("selfserv-exec-timer".to_string())
            .spawn(move || timer_loop(&inner))
            .expect("spawn executor timer thread");
    }

    /// Schedules a timer event for `cell` after `after`. Timers for nodes
    /// that stop (or cells that are gone) before the deadline are dropped
    /// silently at fire time.
    pub(crate) fn schedule(&self, after: Duration, cell: Weak<NodeCell>, token: TimerToken) {
        self.push(after, cell, Fire::Timer(token));
    }

    /// Schedules the timeout deadline of an asynchronous rpc: when it
    /// fires, the node resolves request `id` to `Err(Timeout)` unless the
    /// reply won the race (in which case the deadline is a no-op). Returns
    /// the entry's sequence number, the key for
    /// [`TimerService::cancel_rpc_deadline`].
    pub(crate) fn schedule_rpc_deadline(
        &self,
        after: Duration,
        cell: Weak<NodeCell>,
        id: MessageId,
    ) -> u64 {
        self.push(after, cell, Fire::RpcDeadline(id))
    }

    /// Lazily invalidates a scheduled rpc deadline whose request has
    /// resolved (reply arrived, or the node stopped): the entry is
    /// tombstoned and skipped at fire time instead of firing a dead
    /// deadline through the demux, and a tombstone pile-up triggers a heap
    /// rebuild. Safe to call with an already-fired sequence number — the
    /// rebuild discards tombstones that match nothing.
    pub(crate) fn cancel_rpc_deadline(&self, seq: u64) {
        let mut state = self.inner.state.lock();
        if state.stopped {
            return;
        }
        state.cancelled.insert(seq);
        if state.cancelled.len() >= REBUILD_FLOOR && state.cancelled.len() * 2 >= state.heap.len() {
            // Every live tombstone refers to an in-heap entry (cancel is
            // only called after schedule returns), so the set empties into
            // the rebuild; leftovers are fire-races, dead either way.
            let cancelled = std::mem::take(&mut state.cancelled);
            state.heap.retain(|entry| !cancelled.contains(&entry.seq));
        }
    }

    /// Scheduled entries still in the heap, dead tombstones included —
    /// for tests and diagnostics.
    pub(crate) fn heap_len(&self) -> usize {
        self.inner.state.lock().heap.len()
    }

    /// Entries that can still fire into a live node: tombstoned rpc
    /// deadlines and timers owned by stopped or dropped cells are excluded.
    /// Cells are upgraded *after* releasing the timer lock — `is_stopped`
    /// takes the cell lock, and the fire path already orders cell-after-
    /// timer, so probing cells under the timer lock would add no deadlock
    /// but holding both here keeps the discipline uniform and the critical
    /// section short.
    pub(crate) fn live_len(&self) -> usize {
        let candidates: Vec<Weak<NodeCell>> = {
            let state = self.inner.state.lock();
            state
                .heap
                .iter()
                .filter(|entry| !state.cancelled.contains(&entry.seq))
                .map(|entry| Weak::clone(&entry.cell))
                .collect()
        };
        candidates
            .into_iter()
            .filter_map(|cell| cell.upgrade())
            .filter(|cell| !cell.is_stopped())
            .count()
    }

    fn push(&self, after: Duration, cell: Weak<NodeCell>, fire: Fire) -> u64 {
        let mut state = self.inner.state.lock();
        if state.stopped {
            return 0;
        }
        state.seq += 1;
        let seq = state.seq;
        state.heap.push(Entry {
            at: Instant::now() + after,
            seq,
            cell,
            fire,
        });
        self.inner.cv.notify_all();
        seq
    }

    /// Stops the timer thread; pending timers never fire.
    pub(crate) fn stop(&self) {
        self.inner.state.lock().stopped = true;
        self.inner.cv.notify_all();
    }
}

impl Drop for TimerService {
    fn drop(&mut self) {
        self.stop();
    }
}

fn timer_loop(inner: &TimerInner) {
    let mut state = inner.state.lock();
    loop {
        if state.stopped {
            return;
        }
        let now = Instant::now();
        match state.heap.peek() {
            None => {
                inner.cv.wait(&mut state);
            }
            Some(top) if top.at <= now => {
                let entry = state.heap.pop().expect("peeked entry");
                if state.cancelled.remove(&entry.seq) {
                    // Lazily invalidated (the rpc resolved first): discard
                    // without firing.
                    continue;
                }
                // Fire outside the lock: waking a node takes the cell and
                // run-queue locks, and `schedule` must never wait on them.
                drop(state);
                if let Some(cell) = entry.cell.upgrade() {
                    match entry.fire {
                        Fire::Timer(token) => cell.deliver_timer(token),
                        Fire::RpcDeadline(id) => cell.deliver_rpc_timeout(id),
                    }
                }
                state = inner.state.lock();
            }
            Some(top) => {
                let wait = top.at - now;
                inner.cv.wait_for(&mut state, wait);
            }
        }
    }
}
