//! Property tests for the runtime's central guarantee: per-node mailbox
//! serialization. However deliveries interleave — many concurrent senders,
//! bursts, timers racing messages — callbacks of one node never run
//! concurrently and never lose an envelope.

use crate::{Executor, Flow, NodeCtx, NodeLogic, TimerToken};
use proptest::prelude::*;
use selfserv_net::{Envelope, Network, NetworkConfig};
use selfserv_xml::Element;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Records every observed callback overlap: `entered` must never exceed 1
/// for a single node if serialization holds.
struct Probe {
    entered: Arc<AtomicUsize>,
    max_overlap: Arc<AtomicUsize>,
    handled: Arc<AtomicUsize>,
    timers: Arc<AtomicUsize>,
}

impl Probe {
    fn enter(&self) {
        let inside = self.entered.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_overlap.fetch_max(inside, Ordering::SeqCst);
        // Dwell briefly so a second worker running the same node would be
        // caught in the act.
        std::thread::sleep(Duration::from_micros(100));
    }

    fn exit(&self) {
        self.entered.fetch_sub(1, Ordering::SeqCst);
    }
}

impl NodeLogic for Probe {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
        self.enter();
        // Occasionally arm a timer so timer events race message events.
        if self.handled.fetch_add(1, Ordering::SeqCst) % 7 == 0 {
            ctx.set_timer(Duration::from_micros(50), TimerToken(1));
        }
        self.exit();
        Flow::Continue
    }

    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: TimerToken) -> Flow {
        self.enter();
        self.timers.fetch_add(1, Ordering::SeqCst);
        self.exit();
        Flow::Continue
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interleaved deliveries to one node are never concurrent: `senders`
    /// threads blast `per_sender` messages each at a single node on a
    /// multi-worker executor; the probe asserts callback overlap never
    /// exceeded 1 and every envelope was handled.
    #[test]
    fn interleaved_deliveries_to_one_node_are_never_concurrent(
        senders in 2usize..6,
        per_sender in 1usize..40,
        workers in 2usize..5,
    ) {
        let exec = Executor::new(workers);
        let net = Network::new(NetworkConfig::instant());
        let entered = Arc::new(AtomicUsize::new(0));
        let max_overlap = Arc::new(AtomicUsize::new(0));
        let handled = Arc::new(AtomicUsize::new(0));
        let timers = Arc::new(AtomicUsize::new(0));
        let node = exec.handle().spawn_node(
            net.connect("probe").unwrap(),
            Probe {
                entered: Arc::clone(&entered),
                max_overlap: Arc::clone(&max_overlap),
                handled: Arc::clone(&handled),
                timers: Arc::clone(&timers),
            },
        );

        std::thread::scope(|s| {
            for t in 0..senders {
                let net = net.clone();
                s.spawn(move || {
                    let ep = net.connect(format!("sender{t}")).unwrap();
                    for i in 0..per_sender {
                        ep.send(
                            "probe",
                            "n",
                            Element::new("n").with_attr("i", i.to_string()),
                        )
                        .unwrap();
                    }
                });
            }
        });

        let expected = senders * per_sender;
        let t0 = Instant::now();
        while handled.load(Ordering::SeqCst) < expected
            && t0.elapsed() < Duration::from_secs(10)
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        prop_assert_eq!(handled.load(Ordering::SeqCst), expected, "no envelope lost");
        prop_assert_eq!(
            max_overlap.load(Ordering::SeqCst),
            1,
            "a node ran on two workers at once"
        );
        node.stop();
        prop_assert_eq!(entered.load(Ordering::SeqCst), 0);
        exec.shutdown();
    }
}
