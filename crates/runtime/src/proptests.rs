//! Property tests for the runtime's central guarantee: per-node mailbox
//! serialization. However deliveries interleave — many concurrent senders,
//! bursts, timers racing messages — callbacks of one node never run
//! concurrently and never lose an envelope.

use crate::{Executor, Flow, NodeCtx, NodeLogic, TimerToken};
use proptest::prelude::*;
use selfserv_net::{Envelope, Network, NetworkConfig};
use selfserv_xml::Element;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Records every observed callback overlap: `entered` must never exceed 1
/// for a single node if serialization holds.
struct Probe {
    entered: Arc<AtomicUsize>,
    max_overlap: Arc<AtomicUsize>,
    handled: Arc<AtomicUsize>,
    timers: Arc<AtomicUsize>,
}

impl Probe {
    fn enter(&self) {
        let inside = self.entered.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_overlap.fetch_max(inside, Ordering::SeqCst);
        // Dwell briefly so a second worker running the same node would be
        // caught in the act.
        std::thread::sleep(Duration::from_micros(100));
    }

    fn exit(&self) {
        self.entered.fetch_sub(1, Ordering::SeqCst);
    }
}

impl NodeLogic for Probe {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, _env: Envelope) -> Flow {
        self.enter();
        // Occasionally arm a timer so timer events race message events.
        if self.handled.fetch_add(1, Ordering::SeqCst) % 7 == 0 {
            ctx.set_timer(Duration::from_micros(50), TimerToken(1));
        }
        self.exit();
        Flow::Continue
    }

    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: TimerToken) -> Flow {
        self.enter();
        self.timers.fetch_add(1, Ordering::SeqCst);
        self.exit();
        Flow::Continue
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interleaved deliveries to one node are never concurrent: `senders`
    /// threads blast `per_sender` messages each at a single node on a
    /// multi-worker executor; the probe asserts callback overlap never
    /// exceeded 1 and every envelope was handled.
    #[test]
    fn interleaved_deliveries_to_one_node_are_never_concurrent(
        senders in 2usize..6,
        per_sender in 1usize..40,
        workers in 2usize..5,
    ) {
        let exec = Executor::new(workers);
        let net = Network::new(NetworkConfig::instant());
        let entered = Arc::new(AtomicUsize::new(0));
        let max_overlap = Arc::new(AtomicUsize::new(0));
        let handled = Arc::new(AtomicUsize::new(0));
        let timers = Arc::new(AtomicUsize::new(0));
        let node = exec.handle().spawn_node(
            net.connect("probe").unwrap(),
            Probe {
                entered: Arc::clone(&entered),
                max_overlap: Arc::clone(&max_overlap),
                handled: Arc::clone(&handled),
                timers: Arc::clone(&timers),
            },
        );

        std::thread::scope(|s| {
            for t in 0..senders {
                let net = net.clone();
                s.spawn(move || {
                    let ep = net.connect(format!("sender{t}")).unwrap();
                    for i in 0..per_sender {
                        ep.send(
                            "probe",
                            "n",
                            Element::new("n").with_attr("i", i.to_string()),
                        )
                        .unwrap();
                    }
                });
            }
        });

        let expected = senders * per_sender;
        let t0 = Instant::now();
        while handled.load(Ordering::SeqCst) < expected
            && t0.elapsed() < Duration::from_secs(10)
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        prop_assert_eq!(handled.load(Ordering::SeqCst), expected, "no envelope lost");
        prop_assert_eq!(
            max_overlap.load(Ordering::SeqCst),
            1,
            "a node ran on two workers at once"
        );
        node.stop();
        prop_assert_eq!(entered.load(Ordering::SeqCst), 0);
        exec.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Work stealing never violates per-node serialization: many nodes
    /// share a multi-worker executor while several sender threads
    /// round-robin messages across all of them, so runnables land in
    /// worker-local deques *and* the global injector and get stolen
    /// between workers mid-burst. However the deques shuffle, each node's
    /// callback overlap must never exceed 1 and no envelope may be lost
    /// or double-handled.
    #[test]
    fn work_stealing_never_violates_per_node_serialization(
        n_nodes in 2usize..7,
        senders in 2usize..5,
        per_sender in 1usize..20,
        workers in 2usize..6,
    ) {
        let exec = Executor::new(workers);
        let net = Network::new(NetworkConfig::instant());
        let mut probes = Vec::new();
        let mut nodes = Vec::new();
        for n in 0..n_nodes {
            let entered = Arc::new(AtomicUsize::new(0));
            let max_overlap = Arc::new(AtomicUsize::new(0));
            let handled = Arc::new(AtomicUsize::new(0));
            let timers = Arc::new(AtomicUsize::new(0));
            nodes.push(exec.handle().spawn_node(
                net.connect(format!("probe{n}")).unwrap(),
                Probe {
                    entered: Arc::clone(&entered),
                    max_overlap: Arc::clone(&max_overlap),
                    handled: Arc::clone(&handled),
                    timers: Arc::clone(&timers),
                },
            ));
            probes.push((entered, max_overlap, handled));
        }

        std::thread::scope(|s| {
            for t in 0..senders {
                let net = net.clone();
                s.spawn(move || {
                    let ep = net.connect(format!("sender{t}")).unwrap();
                    for i in 0..per_sender {
                        for n in 0..n_nodes {
                            ep.send(
                                format!("probe{n}"),
                                "n",
                                Element::new("n").with_attr("i", i.to_string()),
                            )
                            .unwrap();
                        }
                    }
                });
            }
        });

        let expected = senders * per_sender;
        let t0 = Instant::now();
        while probes
            .iter()
            .any(|(_, _, handled)| handled.load(Ordering::SeqCst) < expected)
            && t0.elapsed() < Duration::from_secs(20)
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        for (n, (_entered, max_overlap, handled)) in probes.iter().enumerate() {
            prop_assert_eq!(
                handled.load(Ordering::SeqCst),
                expected,
                "node {} lost or double-handled envelopes",
                n
            );
            prop_assert_eq!(
                max_overlap.load(Ordering::SeqCst),
                1,
                "node {} ran on two workers at once",
                n
            );
        }
        for node in nodes {
            node.stop();
        }
        // Only after stop: a timer callback armed by a late message may
        // still be mid-flight while the counts above are read.
        for (n, (entered, _, _)) in probes.iter().enumerate() {
            prop_assert_eq!(entered.load(Ordering::SeqCst), 0, "node {} still running", n);
        }
        exec.shutdown();
    }
}
