//! The fixed-size worker pool: run queue, workers, blocking compensation,
//! and graceful shutdown.

use crate::node::{run_node, NodeCell, NodeHandle, NodeLogic};
use crate::timer::TimerService;
use crossbeam::channel;
use parking_lot::{Condvar, Mutex};
use selfserv_net::Endpoint;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often an idle worker re-checks for shutdown and surplus.
const IDLE_TICK: Duration = Duration::from_millis(50);

thread_local! {
    /// True on pool worker threads; [`Pool::block_on`] only compensates
    /// when the caller actually occupies a worker.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// One unit of work on the run queue.
pub(crate) enum Runnable {
    /// A node's scheduling turn (see [`run_node`]).
    Node(Arc<NodeCell>),
    /// A one-shot task (service invocations, community delegations —
    /// work that is per-request, not per-node).
    Task(Box<dyn FnOnce() + Send>),
}

struct Counts {
    /// Workers currently alive (base + compensating).
    live: usize,
    /// Workers currently inside a [`Pool::block_on`] section.
    blocked: usize,
}

/// Shared pool state. Everything public goes through [`Executor`] /
/// [`ExecutorHandle`].
pub(crate) struct Pool {
    queue_tx: channel::Sender<Runnable>,
    queue_rx: channel::Receiver<Runnable>,
    counts: Mutex<Counts>,
    counts_cv: Condvar,
    /// The configured worker count: the pool keeps at least this many
    /// *unblocked* workers alive.
    base: usize,
    shutdown: AtomicBool,
    pub(crate) timers: TimerService,
}

impl Pool {
    pub(crate) fn push(&self, runnable: Runnable) {
        // The pool owns the receiver for its whole life, so this only
        // fails after the `Pool` itself is gone — nothing left to run it.
        let _ = self.queue_tx.send(runnable);
    }

    pub(crate) fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Workers currently alive (for the stop-path liveness check).
    pub(crate) fn live_worker_count(&self) -> usize {
        self.counts.lock().live
    }

    /// Runs `f`, compensating the pool while it blocks: if the count of
    /// unblocked workers would drop below `base`, a transient worker is
    /// spawned first (the Go-scheduler move around syscalls), so nodes
    /// waiting for each other's replies on one executor can never deadlock
    /// the pool. Called off-worker (a plain client thread), `f` just runs.
    pub(crate) fn block_on<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        if !IS_WORKER.with(|w| w.get()) {
            return f();
        }
        // Reserve the compensation slot under the lock, but perform the
        // thread-creation syscall after releasing it — a burst of
        // simultaneous blockers must not serialize behind each other's
        // spawns.
        let compensate = {
            let mut counts = self.counts.lock();
            counts.blocked += 1;
            if counts.live - counts.blocked < self.base && !self.is_shut_down() {
                counts.live += 1;
                true
            } else {
                false
            }
        };
        if compensate {
            spawn_worker(Arc::clone(self));
        }
        struct Unblock<'a>(&'a Pool);
        impl Drop for Unblock<'_> {
            fn drop(&mut self) {
                self.0.counts.lock().blocked -= 1;
            }
        }
        let _unblock = Unblock(self);
        f()
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.timers.stop();
    }

    fn worker_exited(&self) {
        self.counts.lock().live -= 1;
        self.counts_cv.notify_all();
    }
}

fn spawn_worker(pool: Arc<Pool>) {
    std::thread::Builder::new()
        .name("selfserv-exec-worker".to_string())
        .spawn(move || {
            IS_WORKER.with(|w| w.set(true));
            if !worker_loop(&pool) {
                pool.worker_exited();
            }
        })
        .expect("spawn executor worker");
}

/// Runs until shutdown (returns `false`; exit not yet recorded) or
/// retirement (returns `true`; exit recorded under the retirement lock).
fn worker_loop(pool: &Arc<Pool>) -> bool {
    loop {
        match pool.queue_rx.recv_timeout(IDLE_TICK) {
            // Panic fence: a panicking callback or task must not kill the
            // worker — that would corrupt the live-worker accounting and
            // hang shutdown. The panic is contained to the one runnable
            // (run_node's own guard finalizes a node that dies mid-turn).
            Ok(Runnable::Node(cell)) => {
                let _ =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_node(pool, cell)));
            }
            Ok(Runnable::Task(task)) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                // Drain-then-exit on shutdown: queued work always runs.
                if pool.is_shut_down() && pool.queue_rx.is_empty() {
                    return false;
                }
                // Lazy retirement of compensation surplus: decided and
                // recorded under one lock so concurrent retirements can
                // never undershoot `base`. The idle grace (one tick) keeps
                // transient workers warm across bursts instead of
                // thrashing spawn/join.
                let mut counts = pool.counts.lock();
                if counts.live - counts.blocked > pool.base {
                    counts.live -= 1;
                    drop(counts);
                    pool.counts_cv.notify_all();
                    return true;
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => return false,
        }
    }
}

/// A fixed-size executor: `workers` threads multiplexing any number of
/// [`NodeLogic`] nodes and one-shot tasks, plus one timer thread. See the
/// crate docs for the scheduling model, blocking compensation, and the
/// thread-budget formula.
pub struct Executor {
    pool: Arc<Pool>,
}

impl Executor {
    /// Starts a pool of `workers` threads (at least 1) and its timer
    /// thread.
    pub fn new(workers: usize) -> Executor {
        let workers = workers.max(1);
        let (queue_tx, queue_rx) = channel::unbounded();
        let pool = Arc::new(Pool {
            queue_tx,
            queue_rx,
            counts: Mutex::new(Counts {
                live: workers,
                blocked: 0,
            }),
            counts_cv: Condvar::new(),
            base: workers,
            shutdown: AtomicBool::new(false),
            timers: TimerService::new(),
        });
        pool.timers.start();
        for _ in 0..workers {
            spawn_worker(Arc::clone(&pool));
        }
        Executor { pool }
    }

    /// A cloneable handle for spawning.
    pub fn handle(&self) -> ExecutorHandle {
        ExecutorHandle {
            pool: Arc::clone(&self.pool),
        }
    }

    /// Converts into a handle, leaking the shutdown-on-drop obligation —
    /// for process-lifetime executors like [`crate::shared`].
    pub fn into_handle(self) -> ExecutorHandle {
        let handle = self.handle();
        std::mem::forget(self);
        handle
    }

    /// Graceful shutdown: stop the timer thread, let workers drain the run
    /// queue, then wait for every worker (including compensating ones) to
    /// exit. Stop all spawned nodes *before* calling this — a stop
    /// requested after shutdown is finalized inline without `on_stop`
    /// (see [`NodeHandle::stop`]).
    pub fn shutdown(self) {
        self.pool.begin_shutdown();
        let mut counts = self.pool.counts.lock();
        while counts.live > 0 {
            self.pool
                .counts_cv
                .wait_for(&mut counts, Duration::from_millis(200));
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Signal (don't wait): a dropped executor stops accepting work and
        // its workers exit once the queue drains.
        self.pool.begin_shutdown();
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.pool.base)
            .finish()
    }
}

/// Cloneable spawn handle to an [`Executor`]: what platform components
/// take instead of `std::thread::Builder`.
#[derive(Clone)]
pub struct ExecutorHandle {
    pool: Arc<Pool>,
}

impl ExecutorHandle {
    pub(crate) fn from_pool(pool: Arc<Pool>) -> ExecutorHandle {
        ExecutorHandle { pool }
    }

    /// Spawns a node: `logic` runs behind `endpoint`, scheduled by the
    /// pool, with serialized callbacks (see [`NodeLogic`]). `on_start`
    /// runs before any message; envelopes already queued on the endpoint
    /// are delivered right after it.
    pub fn spawn_node(&self, endpoint: Endpoint, logic: impl NodeLogic) -> NodeHandle {
        NodeCell::spawn(&self.pool, endpoint, Box::new(logic))
    }

    /// Runs a one-shot closure on the pool — per-request work (a service
    /// invocation, a community delegation) that would have been a spawned
    /// thread in the old model. Tasks that wait (rpc, sleeping backends)
    /// must wrap the waiting section in [`ExecutorHandle::block_on`].
    pub fn spawn_task(&self, task: impl FnOnce() + Send + 'static) {
        self.pool.push(Runnable::Task(Box::new(task)));
    }

    /// Runs a blocking section with pool compensation — the free-function
    /// form of [`crate::NodeCtx::block_on`], for spawned tasks that hold a
    /// handle instead of a ctx.
    pub fn block_on<R>(&self, f: impl FnOnce() -> R) -> R {
        self.pool.block_on(f)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.pool.base
    }

    /// Workers currently alive (base plus compensation, minus retired) —
    /// for tests and diagnostics.
    pub fn live_workers(&self) -> usize {
        self.pool.counts.lock().live
    }

    /// Workers currently parked in a [`ExecutorHandle::block_on`] section —
    /// for tests and diagnostics.
    pub fn blocked_workers(&self) -> usize {
        self.pool.counts.lock().blocked
    }
}

impl fmt::Debug for ExecutorHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorHandle")
            .field("workers", &self.pool.base)
            .finish()
    }
}
