//! The fixed-size worker pool: work-stealing run queues, workers, blocking
//! compensation, and graceful shutdown.
//!
//! # Run-queue topology
//!
//! Work reaches the pool through two tiers. Each **base** worker owns a
//! FIFO local deque; a runnable pushed from a worker thread (a node
//! re-queueing itself mid-burst, a wake triggered by an in-turn send) goes
//! straight to that worker's own deque — no shared-queue handoff on the
//! hot path. Runnables pushed from outside the pool (transport readers,
//! the timer thread, client threads) land in a global **injector**. An
//! idle worker looks for work in order: own deque → injector (stealing a
//! batch to amortize the shared-queue touch) → stealing from a sibling's
//! deque, so queued work is never stranded — anything a busy or blocked
//! worker left behind is stolen by whoever runs dry.
//!
//! Per-node callback serialization is *not* the queue's job: the
//! `scheduled` bit on each [`NodeCell`] guarantees at most one queue entry
//! per node exists anywhere (local, injector, or mid-steal), so stealing
//! moves a node between workers but never duplicates it.

use crate::node::{run_node, NodeCell, NodeHandle, NodeLogic};
use crate::timer::TimerService;
use crossbeam::deque;
use parking_lot::{Condvar, Mutex};
use selfserv_net::Endpoint;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often an idle worker re-checks for shutdown and surplus.
const IDLE_TICK: Duration = Duration::from_millis(50);

/// How many times an out-of-work worker yields and rescans before parking
/// on the idle condvar — keeps hot request/reply handoffs off the
/// futex-wait path.
const SPIN_RESCANS: usize = 2;

/// A base worker's own run queue, installed in thread-local storage so
/// [`Pool::push`] can route work pushed *from* a worker back onto that
/// worker's deque. Tagged with the owning pool's address: a worker of one
/// executor may push to another executor's pool (cross-executor sends),
/// which must go to that pool's injector, not this thread's deque. The
/// worker holds its pool `Arc` for the thread's whole life, so the tag can
/// never be reused while this entry is live.
struct LocalQueue {
    pool_id: usize,
    worker: deque::Worker<Runnable>,
}

thread_local! {
    /// True on pool worker threads; [`Pool::block_on`] only compensates
    /// when the caller actually occupies a worker.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// The local deque of a base worker (compensation workers run without
    /// one and work injector-and-steal only).
    static LOCAL: RefCell<Option<LocalQueue>> = const { RefCell::new(None) };
    /// Per-thread rotation cursor so concurrent thieves start their victim
    /// scans at different siblings.
    static NEXT_VICTIM: Cell<usize> = const { Cell::new(0) };
}

/// One unit of work on the run queue.
pub(crate) enum Runnable {
    /// A node's scheduling turn (see [`run_node`]).
    Node(Arc<NodeCell>),
    /// A one-shot task (service invocations, community delegations —
    /// work that is per-request, not per-node).
    Task(Box<dyn FnOnce() + Send>),
}

struct Counts {
    /// Workers currently alive (base + compensating).
    live: usize,
    /// Workers currently inside a [`Pool::block_on`] section.
    blocked: usize,
}

/// Shared pool state. Everything public goes through [`Executor`] /
/// [`ExecutorHandle`].
pub(crate) struct Pool {
    /// Global FIFO for work pushed from outside the pool's worker threads.
    injector: deque::Injector<Runnable>,
    /// One stealer per base worker's local deque, fixed at construction
    /// (a retired base worker leaves an empty deque behind — stealing from
    /// it just reports `Empty`).
    stealers: Vec<deque::Stealer<Runnable>>,
    /// Runnables queued anywhere (injector + all local deques) and not yet
    /// claimed by a worker. The only cross-queue signal: parking and
    /// shutdown key off it instead of scanning every queue.
    pending: AtomicUsize,
    /// Workers currently parked (or about to park) on `sleep_cv`; lets
    /// `push` skip the wake lock entirely when everyone is busy.
    idle: AtomicUsize,
    sleep: Mutex<()>,
    sleep_cv: Condvar,
    counts: Mutex<Counts>,
    counts_cv: Condvar,
    /// The configured worker count: the pool keeps at least this many
    /// *unblocked* workers alive.
    base: usize,
    shutdown: AtomicBool,
    pub(crate) timers: TimerService,
    /// In-flight [`crate::NodeCtx::rpc_async`] requests across every node
    /// on this executor: incremented when a request registers, decremented
    /// by whichever of reply / deadline / send-error / node-stop resolves
    /// it. The chaos harness's leak audit asserts this returns to zero
    /// after quiesce — a leaked continuation shows up here.
    pub(crate) rpc_in_flight: AtomicUsize,
    /// Runnables claimed from a *sibling's* deque (not own deque, not the
    /// injector): the work-stealing balance signal the stress harness
    /// exports. A hot steal rate with a deep run queue means the pool is
    /// load-imbalanced or under-provisioned.
    steals: AtomicU64,
}

impl Pool {
    pub(crate) fn push(&self, runnable: Runnable) {
        // Count before publishing: `pending` must never dip below the true
        // queue population, or a worker claiming a just-pushed runnable
        // ahead of our increment would wrap the counter below zero. The
        // over-count window (counted but not yet visible) only costs an
        // unparked worker a wasted scan.
        self.pending.fetch_add(1, Ordering::SeqCst);
        let pool_id = self as *const Pool as usize;
        let runnable = LOCAL.with(|slot| {
            let slot = slot.borrow();
            match slot.as_ref() {
                // Pushed from one of our own base workers: keep it local.
                Some(local) if local.pool_id == pool_id => {
                    local.worker.push(runnable);
                    None
                }
                _ => Some(runnable),
            }
        });
        if let Some(runnable) = runnable {
            self.injector.push(runnable);
        }
        // SeqCst pairs with the park path: a parking worker publishes
        // `idle` *before* re-checking `pending`; we publish `pending`
        // before checking `idle`. Whichever races ahead, either the worker
        // sees the new runnable or we see the sleeper and wake it — a
        // wakeup is never lost.
        if self.idle.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep.lock();
            self.sleep_cv.notify_one();
        }
    }

    pub(crate) fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Workers currently alive (for the stop-path liveness check).
    pub(crate) fn live_worker_count(&self) -> usize {
        self.counts.lock().live
    }

    /// Runs `f`, compensating the pool while it blocks: if the count of
    /// unblocked workers would drop below `base`, a transient worker is
    /// spawned first (the Go-scheduler move around syscalls), so nodes
    /// waiting for each other's replies on one executor can never deadlock
    /// the pool. Called off-worker (a plain client thread), `f` just runs.
    pub(crate) fn block_on<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        if !IS_WORKER.with(|w| w.get()) {
            return f();
        }
        // Reserve the compensation slot under the lock, but perform the
        // thread-creation syscall after releasing it — a burst of
        // simultaneous blockers must not serialize behind each other's
        // spawns.
        let compensate = {
            let mut counts = self.counts.lock();
            counts.blocked += 1;
            if counts.live - counts.blocked < self.base && !self.is_shut_down() {
                counts.live += 1;
                true
            } else {
                false
            }
        };
        if compensate {
            // Compensation workers run injector-and-steal only: they are
            // transient, so handing them a local deque (and a stealer slot)
            // would grow the victim list without bound.
            spawn_worker(Arc::clone(self), None);
        }
        struct Unblock<'a>(&'a Pool);
        impl Drop for Unblock<'_> {
            fn drop(&mut self) {
                self.0.counts.lock().blocked -= 1;
            }
        }
        let _unblock = Unblock(self);
        f()
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.timers.stop();
        // Parked workers re-check shutdown on wake; without this they
        // would only notice at the next idle tick.
        let _guard = self.sleep.lock();
        self.sleep_cv.notify_all();
    }

    fn worker_exited(&self) {
        self.counts.lock().live -= 1;
        self.counts_cv.notify_all();
    }

    /// One work-finding pass in steal order: own deque, then the injector
    /// (batching into the local deque to amortize the shared touch), then
    /// the siblings' deques starting at a rotating victim.
    fn find_work(&self) -> Option<Runnable> {
        let pool_id = self as *const Pool as usize;
        if let Some(runnable) = LOCAL.with(|slot| {
            let slot = slot.borrow();
            match slot.as_ref() {
                Some(local) if local.pool_id == pool_id => local.worker.pop(),
                _ => None,
            }
        }) {
            return Some(runnable);
        }
        loop {
            let mut contended = false;
            let stolen = LOCAL.with(|slot| {
                let slot = slot.borrow();
                match slot.as_ref() {
                    Some(local) if local.pool_id == pool_id => {
                        self.injector.steal_batch_and_pop(&local.worker)
                    }
                    _ => self.injector.steal(),
                }
            });
            match stolen {
                deque::Steal::Success(runnable) => return Some(runnable),
                deque::Steal::Retry => contended = true,
                deque::Steal::Empty => {}
            }
            let start = NEXT_VICTIM.with(|v| {
                let cur = v.get();
                v.set(cur.wrapping_add(1));
                cur
            });
            for i in 0..self.stealers.len() {
                let victim = &self.stealers[(start + i) % self.stealers.len()];
                match victim.steal() {
                    deque::Steal::Success(runnable) => {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(runnable);
                    }
                    deque::Steal::Retry => contended = true,
                    deque::Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
        }
    }

    /// Parks the calling worker until new work is signalled or the idle
    /// tick elapses; returns whether the wait timed out (retirement only
    /// triggers off a full idle tick, so a worker woken into a lost steal
    /// race is not mistaken for surplus).
    fn park(&self) -> bool {
        let mut guard = self.sleep.lock();
        // Publish idleness, then re-check for work (see `push` for the
        // pairing); without the re-check a push landing between our last
        // scan and the wait would strand its runnable for a full tick.
        self.idle.fetch_add(1, Ordering::SeqCst);
        let timed_out = if self.pending.load(Ordering::SeqCst) == 0 && !self.is_shut_down() {
            self.sleep_cv.wait_for(&mut guard, IDLE_TICK).timed_out()
        } else {
            false
        };
        self.idle.fetch_sub(1, Ordering::SeqCst);
        timed_out
    }
}

fn spawn_worker(pool: Arc<Pool>, local: Option<deque::Worker<Runnable>>) {
    std::thread::Builder::new()
        .name("selfserv-exec-worker".to_string())
        .spawn(move || {
            IS_WORKER.with(|w| w.set(true));
            if let Some(worker) = local {
                LOCAL.with(|slot| {
                    *slot.borrow_mut() = Some(LocalQueue {
                        pool_id: Arc::as_ptr(&pool) as usize,
                        worker,
                    });
                });
            }
            let retired = worker_loop(&pool);
            // A dying worker must not strand queued runnables: anything
            // left in its deque (normally nothing — shutdown waits for
            // `pending == 0`, and a retiring worker just scanned dry) goes
            // back to the injector where the survivors can see it.
            LOCAL.with(|slot| {
                if let Some(local) = slot.borrow_mut().take() {
                    while let Some(runnable) = local.worker.pop() {
                        pool.injector.push(runnable);
                    }
                }
            });
            if !retired {
                pool.worker_exited();
            }
        })
        .expect("spawn executor worker");
}

/// Runs until shutdown (returns `false`; exit not yet recorded) or
/// retirement (returns `true`; exit recorded under the retirement lock).
fn worker_loop(pool: &Arc<Pool>) -> bool {
    let mut rescans = 0;
    loop {
        // Panic fence: a panicking callback or task must not kill the
        // worker — that would corrupt the live-worker accounting and
        // hang shutdown. The panic is contained to the one runnable
        // (run_node's own guard finalizes a node that dies mid-turn).
        match pool.find_work() {
            Some(runnable) => {
                pool.pending.fetch_sub(1, Ordering::SeqCst);
                rescans = 0;
                match runnable {
                    Runnable::Node(cell) => {
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_node(pool, cell)
                        }));
                    }
                    Runnable::Task(task) => {
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                    }
                }
                continue;
            }
            None => {
                if rescans < SPIN_RESCANS {
                    rescans += 1;
                    std::thread::yield_now();
                    continue;
                }
                rescans = 0;
            }
        }
        let timed_out = pool.park();
        // Drain-then-exit on shutdown: queued work always runs.
        if pool.is_shut_down() && pool.pending.load(Ordering::SeqCst) == 0 {
            return false;
        }
        if timed_out {
            // Lazy retirement of compensation surplus: decided and
            // recorded under one lock so concurrent retirements can
            // never undershoot `base`. The idle grace (one tick) keeps
            // transient workers warm across bursts instead of
            // thrashing spawn/join.
            let mut counts = pool.counts.lock();
            if counts.live - counts.blocked > pool.base {
                counts.live -= 1;
                drop(counts);
                pool.counts_cv.notify_all();
                return true;
            }
        }
    }
}

/// A fixed-size executor: `workers` threads multiplexing any number of
/// [`NodeLogic`] nodes and one-shot tasks, plus one timer thread. See the
/// crate docs for the scheduling model, blocking compensation, and the
/// thread-budget formula.
pub struct Executor {
    pool: Arc<Pool>,
}

impl Executor {
    /// Starts a pool of `workers` threads (at least 1) and its timer
    /// thread.
    pub fn new(workers: usize) -> Executor {
        let workers = workers.max(1);
        let locals: Vec<deque::Worker<Runnable>> =
            (0..workers).map(|_| deque::Worker::new_fifo()).collect();
        let pool = Arc::new(Pool {
            injector: deque::Injector::new(),
            stealers: locals.iter().map(|w| w.stealer()).collect(),
            pending: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            sleep_cv: Condvar::new(),
            counts: Mutex::new(Counts {
                live: workers,
                blocked: 0,
            }),
            counts_cv: Condvar::new(),
            base: workers,
            shutdown: AtomicBool::new(false),
            timers: TimerService::new(),
            rpc_in_flight: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
        });
        pool.timers.start();
        for local in locals {
            spawn_worker(Arc::clone(&pool), Some(local));
        }
        Executor { pool }
    }

    /// Entries (live + tombstoned) in the timer heap — for tests
    /// asserting that resolved rpc deadlines are invalidated.
    #[cfg(test)]
    pub(crate) fn timer_heap_len(&self) -> usize {
        self.pool.timers.heap_len()
    }

    /// A cloneable handle for spawning.
    pub fn handle(&self) -> ExecutorHandle {
        ExecutorHandle {
            pool: Arc::clone(&self.pool),
        }
    }

    /// Converts into a handle, leaking the shutdown-on-drop obligation —
    /// for process-lifetime executors like [`crate::shared`].
    pub fn into_handle(self) -> ExecutorHandle {
        let handle = self.handle();
        std::mem::forget(self);
        handle
    }

    /// Graceful shutdown: stop the timer thread, let workers drain the run
    /// queue, then wait for every worker (including compensating ones) to
    /// exit. Stop all spawned nodes *before* calling this — a stop
    /// requested after shutdown is finalized inline without `on_stop`
    /// (see [`NodeHandle::stop`]).
    pub fn shutdown(self) {
        self.pool.begin_shutdown();
        let mut counts = self.pool.counts.lock();
        while counts.live > 0 {
            self.pool
                .counts_cv
                .wait_for(&mut counts, Duration::from_millis(200));
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Signal (don't wait): a dropped executor stops accepting work and
        // its workers exit once the queue drains.
        self.pool.begin_shutdown();
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.pool.base)
            .finish()
    }
}

/// Cloneable spawn handle to an [`Executor`]: what platform components
/// take instead of `std::thread::Builder`.
#[derive(Clone)]
pub struct ExecutorHandle {
    pool: Arc<Pool>,
}

impl ExecutorHandle {
    pub(crate) fn from_pool(pool: Arc<Pool>) -> ExecutorHandle {
        ExecutorHandle { pool }
    }

    /// Spawns a node: `logic` runs behind `endpoint`, scheduled by the
    /// pool, with serialized callbacks (see [`NodeLogic`]). `on_start`
    /// runs before any message; envelopes already queued on the endpoint
    /// are delivered right after it.
    pub fn spawn_node(&self, endpoint: Endpoint, logic: impl NodeLogic) -> NodeHandle {
        NodeCell::spawn(&self.pool, endpoint, Box::new(logic))
    }

    /// Runs a one-shot closure on the pool — per-request work (a service
    /// invocation, a community delegation) that would have been a spawned
    /// thread in the old model. Tasks that wait (rpc, sleeping backends)
    /// must wrap the waiting section in [`ExecutorHandle::block_on`].
    pub fn spawn_task(&self, task: impl FnOnce() + Send + 'static) {
        self.pool.push(Runnable::Task(Box::new(task)));
    }

    /// Runs a blocking section with pool compensation — the free-function
    /// form of [`crate::NodeCtx::block_on`], for spawned tasks that hold a
    /// handle instead of a ctx.
    pub fn block_on<R>(&self, f: impl FnOnce() -> R) -> R {
        self.pool.block_on(f)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.pool.base
    }

    /// Workers currently alive (base plus compensation, minus retired) —
    /// for tests and diagnostics.
    pub fn live_workers(&self) -> usize {
        self.pool.counts.lock().live
    }

    /// Workers currently parked in a [`ExecutorHandle::block_on`] section —
    /// for tests and diagnostics.
    pub fn blocked_workers(&self) -> usize {
        self.pool.counts.lock().blocked
    }

    /// In-flight `rpc_async` requests across every node on this pool.
    /// Zero once the system quiesces: every continuation was resolved by a
    /// reply, a deadline, a send error, or a node stop. The chaos harness
    /// treats a nonzero reading after quiesce as a leaked continuation.
    pub fn in_flight_rpcs(&self) -> usize {
        self.pool.rpc_in_flight.load(Ordering::Relaxed)
    }

    /// Timer-heap entries that can still fire into a live node — excludes
    /// tombstoned rpc deadlines and timers owned by stopped or dropped
    /// nodes. Zero once the system quiesces.
    pub fn live_timers(&self) -> usize {
        self.pool.timers.live_len()
    }

    /// All timer-heap entries, including lazily invalidated ones awaiting
    /// their pop — for diagnostics on heap growth.
    pub fn timer_entries(&self) -> usize {
        self.pool.timers.heap_len()
    }

    /// Runnables queued anywhere on the pool (injector plus local deques)
    /// and not yet claimed by a worker.
    pub fn run_queue_depth(&self) -> usize {
        self.pool.pending.load(Ordering::SeqCst)
    }

    /// Runnables claimed from a sibling worker's deque since the pool
    /// started — the work-stealing balance signal.
    pub fn steals(&self) -> u64 {
        self.pool.steals.load(Ordering::Relaxed)
    }

    /// Registers the executor's scheduling metrics on `registry`:
    /// run-queue depth, steals, worker liveness/blocking, in-flight
    /// `rpc_async` continuations, and timer-heap gauges. `labels`
    /// (typically `[("hub", ...)]`) are attached to every series.
    pub fn register_metrics(&self, registry: &selfserv_obs::Registry, labels: &[(&str, &str)]) {
        let pool = Arc::clone(&self.pool);
        registry.gauge_fn(
            "selfserv_executor_run_queue_depth",
            "Runnables queued and not yet claimed by a worker.",
            labels,
            move || pool.pending.load(Ordering::SeqCst) as f64,
        );
        let pool = Arc::clone(&self.pool);
        registry.counter_fn(
            "selfserv_executor_steals_total",
            "Runnables claimed from a sibling worker's deque.",
            labels,
            move || pool.steals.load(Ordering::Relaxed),
        );
        let pool = Arc::clone(&self.pool);
        registry.gauge_fn(
            "selfserv_executor_live_workers",
            "Workers currently alive (base plus compensation).",
            labels,
            move || pool.counts.lock().live as f64,
        );
        let pool = Arc::clone(&self.pool);
        registry.gauge_fn(
            "selfserv_executor_blocked_workers",
            "Workers currently parked in a block_on section.",
            labels,
            move || pool.counts.lock().blocked as f64,
        );
        let pool = Arc::clone(&self.pool);
        registry.gauge_fn(
            "selfserv_executor_in_flight_rpcs",
            "In-flight rpc_async continuations across every node on the pool.",
            labels,
            move || pool.rpc_in_flight.load(Ordering::Relaxed) as f64,
        );
        let pool = Arc::clone(&self.pool);
        registry.gauge_fn(
            "selfserv_executor_live_timers",
            "Timer-heap entries that can still fire into a live node.",
            labels,
            move || pool.timers.live_len() as f64,
        );
        let pool = Arc::clone(&self.pool);
        registry.gauge_fn(
            "selfserv_executor_timer_entries",
            "All timer-heap entries, including lazily invalidated ones.",
            labels,
            move || pool.timers.heap_len() as f64,
        );
    }
}

impl fmt::Debug for ExecutorHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorHandle")
            .field("workers", &self.pool.base)
            .finish()
    }
}
