//! Property tests for the fabric: envelope codec totality, delivery
//! conservation, determinism under seeded loss, rpc reply demultiplexing
//! under adversarial request/reply interleavings, and per-connection
//! frame ordering on the queued TCP write path.

use crate::{Envelope, MessageId, Network, NetworkConfig, NodeId, TcpTransport, Transport};
use proptest::prelude::*;
use selfserv_xml::Element;
use std::time::Duration;

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        any::<u64>(),
        "[a-z][a-z0-9.]{0,12}",
        "[a-z][a-z0-9.]{0,12}",
        "[a-z][a-z.]{0,8}",
        proptest::option::of(any::<u64>()),
        "[A-Za-z][A-Za-z0-9]{0,8}",
        "[ -~]{0,24}",
    )
        .prop_map(|(id, from, to, kind, corr, tag, text)| {
            let mut body = Element::new(tag);
            let text = text.trim();
            if !text.is_empty() {
                body.push_text(text);
            }
            Envelope {
                id: MessageId(id),
                from: NodeId::new(from),
                to: NodeId::new(to),
                kind,
                correlation: corr.map(MessageId),
                body,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn envelope_codec_round_trip(env in arb_envelope()) {
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        prop_assert_eq!(back, env);
    }

    #[test]
    fn frame_codec_round_trip(env in arb_envelope()) {
        let mut buf = Vec::new();
        crate::tcp::write_frame(&mut buf, &env).unwrap();
        let back = crate::tcp::read_frame(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, env);
    }

    /// Conservation: on a lossless instant fabric, every message sent is
    /// either delivered or counted as dropped, and sent == received when
    /// nothing is blocked.
    #[test]
    fn delivery_conservation(
        n_nodes in 2usize..8,
        sends in proptest::collection::vec((0usize..8, 0usize..8), 1..64),
    ) {
        let net = Network::new(NetworkConfig::instant());
        let eps: Vec<_> = (0..n_nodes).map(|i| net.connect(format!("n{i}")).unwrap()).collect();
        let mut expected = 0u64;
        for (from, to) in sends {
            let from = from % n_nodes;
            let to = to % n_nodes;
            if from == to {
                continue;
            }
            eps[from].send(format!("n{to}"), "x", Element::new("b")).unwrap();
            expected += 1;
        }
        let m = net.metrics();
        prop_assert_eq!(m.total_sent(), expected);
        prop_assert_eq!(m.total_received() + m.total_dropped(), expected);
        prop_assert_eq!(m.total_dropped(), 0);
    }

    /// With loss enabled, received + dropped still equals sent, and the
    /// same seed reproduces the same delivery count.
    #[test]
    fn lossy_delivery_is_deterministic(seed in 0u64..1000, p in 0.0f64..1.0) {
        let run = |seed: u64| {
            let net = Network::new(
                NetworkConfig::instant().with_seed(seed).with_drop_probability(p),
            );
            let a = net.connect("a").unwrap();
            let _b = net.connect("b").unwrap();
            for _ in 0..50 {
                a.send("b", "x", Element::new("b")).unwrap();
            }
            let m = net.metrics();
            assert_eq!(m.total_received() + m.total_dropped(), 50);
            m.total_received()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reply demultiplexing under arbitrary request/reply schedules: a
    /// batch of concurrent rpcs from ONE endpoint is answered in a
    /// generated order, with uncorrelated noise messages and duplicate
    /// (stale) replies interleaved. Every rpc must get exactly its own
    /// reply, every noise message must surface via `recv`, and no
    /// duplicate may leak anywhere.
    #[test]
    fn interleaved_rpc_schedules_never_cross(
        n_rpcs in 1usize..6,
        picks in proptest::collection::vec(any::<usize>(), 6),
        noise in proptest::collection::vec(any::<bool>(), 6),
        dups in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let server = net.connect("server").unwrap();
        let expected_noise: usize = noise[..n_rpcs].iter().filter(|b| **b).count();

        let server_thread = std::thread::spawn(move || {
            let mut requests = Vec::new();
            for _ in 0..n_rpcs {
                requests.push(server.recv().unwrap());
            }
            // Answer in the generated order (picks induce a permutation).
            let mut done = Vec::new();
            for slot in 0..n_rpcs {
                let idx = picks[slot] % requests.len();
                let req = requests.remove(idx);
                if noise[slot] {
                    server
                        .send("client", "noise", Element::new("aside"))
                        .unwrap();
                }
                let tag = req.body.attr("tag").unwrap().to_string();
                server
                    .reply(&req, "pong", Element::new("pong").with_attr("tag", tag))
                    .unwrap();
                done.push(req);
                if dups[slot] {
                    // Duplicate reply to an already-answered request: must
                    // be swallowed by the demux (pending slot or stale
                    // ring), never delivered to recv.
                    let stale = &done[picks[slot] % done.len()];
                    server
                        .reply(stale, "pong", Element::new("dup"))
                        .unwrap();
                }
            }
        });

        std::thread::scope(|s| {
            for i in 0..n_rpcs {
                let sender = client.sender();
                s.spawn(move || {
                    let reply = sender
                        .rpc(
                            "server",
                            "ping",
                            Element::new("ping").with_attr("tag", i.to_string()),
                            Duration::from_secs(10),
                        )
                        .expect("rpc completes");
                    assert_eq!(
                        reply.body.attr("tag"),
                        Some(i.to_string().as_str()),
                        "reply crossed to the wrong rpc"
                    );
                });
            }
        });
        server_thread.join().unwrap();

        // Exactly the noise messages reach recv — no duplicates, no
        // replies. (All sends on an instant fabric complete inline, so
        // after join the mailbox is settled.)
        let mut got_noise = 0;
        while let Some(env) = client.try_recv() {
            prop_assert_eq!(&env.kind, "noise", "unexpected mailbox leak");
            got_noise += 1;
        }
        prop_assert_eq!(got_noise, expected_noise);
        prop_assert_eq!(client.demux().pending_rpcs(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Per-connection frame ordering on the queued TCP write path: several
    /// sender threads interleave sends to several destinations, every
    /// (sender, destination) stream carrying its own sequence numbers.
    /// Whatever the enqueue interleaving and however the connection
    /// writers batch frames into vectored writes, each receiver must see
    /// each sender's messages in send order — the writers drain their
    /// queues in enqueue order over exactly one connection per
    /// destination, so order holds per (sender, destination) pair even
    /// while batches from other senders share the same socket.
    #[test]
    fn interleaved_tcp_sends_preserve_per_sender_order(
        n_senders in 2usize..4,
        n_receivers in 1usize..3,
        n_msgs in 4usize..16,
    ) {
        let t = TcpTransport::new();
        let receivers: Vec<_> = (0..n_receivers)
            .map(|i| Transport::connect(&t, NodeId::new(format!("recv{i}"))).unwrap())
            .collect();
        let senders: Vec<_> = (0..n_senders)
            .map(|i| Transport::connect(&t, NodeId::new(format!("send{i}"))).unwrap())
            .collect();
        std::thread::scope(|s| {
            for ep in &senders {
                let sender = ep.sender();
                s.spawn(move || {
                    for seq in 0..n_msgs {
                        for r in 0..n_receivers {
                            sender.send(
                                format!("recv{r}"),
                                "seq",
                                Element::new("m").with_attr("seq", seq.to_string()),
                            )
                            .unwrap();
                        }
                    }
                });
            }
        });
        for receiver in &receivers {
            let mut last_seen: Vec<Option<usize>> = vec![None; n_senders];
            for _ in 0..n_senders * n_msgs {
                let env = receiver
                    .recv_timeout(Duration::from_secs(10))
                    .expect("all accepted frames are delivered");
                let sender: usize = env.from.as_str()["send".len()..].parse().unwrap();
                let seq: usize = env.body.attr("seq").unwrap().parse().unwrap();
                prop_assert!(
                    last_seen[sender].is_none_or(|prev| seq > prev),
                    "sender {} delivered seq {} after {:?}",
                    sender,
                    seq,
                    last_seen[sender]
                );
                last_seen[sender] = Some(seq);
            }
            prop_assert!(receiver.try_recv().is_none(), "no duplicate frames");
        }
    }
}
