//! Property tests for the fabric: envelope codec totality, delivery
//! conservation, and determinism under seeded loss.

use crate::{Envelope, MessageId, Network, NetworkConfig, NodeId};
use proptest::prelude::*;
use selfserv_xml::Element;

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        any::<u64>(),
        "[a-z][a-z0-9.]{0,12}",
        "[a-z][a-z0-9.]{0,12}",
        "[a-z][a-z.]{0,8}",
        proptest::option::of(any::<u64>()),
        "[A-Za-z][A-Za-z0-9]{0,8}",
        "[ -~]{0,24}",
    )
        .prop_map(|(id, from, to, kind, corr, tag, text)| {
            let mut body = Element::new(tag);
            let text = text.trim();
            if !text.is_empty() {
                body.push_text(text);
            }
            Envelope {
                id: MessageId(id),
                from: NodeId::new(from),
                to: NodeId::new(to),
                kind,
                correlation: corr.map(MessageId),
                body,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn envelope_codec_round_trip(env in arb_envelope()) {
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        prop_assert_eq!(back, env);
    }

    #[test]
    fn frame_codec_round_trip(env in arb_envelope()) {
        let mut buf = Vec::new();
        crate::tcp::write_frame(&mut buf, &env).unwrap();
        let back = crate::tcp::read_frame(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, env);
    }

    /// Conservation: on a lossless instant fabric, every message sent is
    /// either delivered or counted as dropped, and sent == received when
    /// nothing is blocked.
    #[test]
    fn delivery_conservation(
        n_nodes in 2usize..8,
        sends in proptest::collection::vec((0usize..8, 0usize..8), 1..64),
    ) {
        let net = Network::new(NetworkConfig::instant());
        let eps: Vec<_> = (0..n_nodes).map(|i| net.connect(format!("n{i}")).unwrap()).collect();
        let mut expected = 0u64;
        for (from, to) in sends {
            let from = from % n_nodes;
            let to = to % n_nodes;
            if from == to {
                continue;
            }
            eps[from].send(format!("n{to}"), "x", Element::new("b")).unwrap();
            expected += 1;
        }
        let m = net.metrics();
        prop_assert_eq!(m.total_sent(), expected);
        prop_assert_eq!(m.total_received() + m.total_dropped(), expected);
        prop_assert_eq!(m.total_dropped(), 0);
    }

    /// With loss enabled, received + dropped still equals sent, and the
    /// same seed reproduces the same delivery count.
    #[test]
    fn lossy_delivery_is_deterministic(seed in 0u64..1000, p in 0.0f64..1.0) {
        let run = |seed: u64| {
            let net = Network::new(
                NetworkConfig::instant().with_seed(seed).with_drop_probability(p),
            );
            let a = net.connect("a").unwrap();
            let _b = net.connect("b").unwrap();
            for _ in 0..50 {
                a.send("b", "x", Element::new("b")).unwrap();
            }
            let m = net.metrics();
            assert_eq!(m.total_received() + m.total_dropped(), 50);
            m.total_received()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
