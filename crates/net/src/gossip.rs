//! Pluggable gossip payloads: replicated state that rides the discovery
//! channel.
//!
//! The discovery engine's push-pull exchange (snapshot out, delta back)
//! already carries one replicated dataset — the [`PeerDirectory`]. Other
//! subsystems own state with exactly the same convergence needs: the
//! community membership tables, for instance, must reach every hub that
//! hosts a replica. Rather than each subsystem growing its own gossip
//! loop, a [`GossipPayload`] piggybacks on the existing exchange: the
//! discovery node attaches every registered payload's snapshot to its
//! `HELLO`/`WELCOME`/`SYNC` messages and lets each payload answer with
//! the rows the sender was missing, which travel in the `DELTA` reply.
//!
//! The contract mirrors the directory's own merge discipline: a payload's
//! `merge` must be **commutative, idempotent, and associative** (a
//! versioned last-writer-wins table qualifies), because the gossip
//! schedule guarantees nothing about ordering, duplication, or loss.
//!
//! [`PeerDirectory`]: crate::PeerDirectory

use parking_lot::RwLock;
use selfserv_xml::Element;
use std::sync::Arc;

/// The element name payload sections travel under inside discovery
/// protocol bodies (siblings of the `<entry>` directory rows).
pub const PAYLOAD_ELEMENT: &str = "payload";

/// One replicated dataset piggybacking on the discovery exchange.
///
/// Implementations serialize their full state as a single XML element and
/// merge incoming sections from peers. All methods are called from the
/// discovery node's executor turn, so they must not block.
pub trait GossipPayload: Send + Sync {
    /// Globally unique stream key (e.g. `membership:AccommodationBooking`).
    /// Sections are matched to payloads by this key; unknown keys are
    /// ignored (a hub may host only some of the fleet's payloads).
    fn key(&self) -> String;

    /// The full-state snapshot as a [`PAYLOAD_ELEMENT`] element carrying
    /// `key="..."`. Attached to outgoing `HELLO`/`WELCOME`/`SYNC` bodies.
    fn snapshot(&self) -> Element;

    /// Merges an incoming section and returns the rows the *sender* is
    /// missing (this side's fresher state), or `None` when the sender is
    /// up to date. The returned element rides the `DELTA` answer of the
    /// push-pull exchange.
    fn merge(&self, incoming: &Element) -> Option<Element>;
}

/// A registry of gossip payloads, shared between the code that owns the
/// replicated state and the discovery node that ferries it. Cheap to
/// clone (all clones view the same registrations), so it can be handed to
/// a discovery config before the payload-owning component even exists —
/// registrations made later are picked up on the next gossip round.
#[derive(Clone, Default)]
pub struct GossipPayloads {
    inner: Arc<RwLock<Vec<Arc<dyn GossipPayload>>>>,
}

impl std::fmt::Debug for GossipPayloads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<String> = self.inner.read().iter().map(|p| p.key()).collect();
        f.debug_struct("GossipPayloads")
            .field("keys", &keys)
            .finish()
    }
}

impl GossipPayloads {
    /// An empty registry.
    pub fn new() -> GossipPayloads {
        GossipPayloads::default()
    }

    /// Registers a payload stream. A second registration under the same
    /// key replaces the first (the latest owner of the state wins).
    pub fn register(&self, payload: Arc<dyn GossipPayload>) {
        let mut inner = self.inner.write();
        let key = payload.key();
        inner.retain(|p| p.key() != key);
        inner.push(payload);
    }

    /// True when nothing is registered (lets the discovery node skip the
    /// payload work entirely).
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot sections of every registered payload, for attaching to an
    /// outgoing full-state exchange.
    pub fn snapshots(&self) -> Vec<Element> {
        self.inner.read().iter().map(|p| p.snapshot()).collect()
    }

    /// Routes incoming payload sections to their streams by key, merging
    /// each; returns the per-stream "rows the sender is missing" sections
    /// for the `DELTA` answer (empty when every sender was up to date).
    pub fn merge_sections<'a>(&self, sections: impl Iterator<Item = &'a Element>) -> Vec<Element> {
        let inner = self.inner.read();
        let mut deltas = Vec::new();
        for section in sections {
            let Some(key) = section.attr("key") else {
                continue;
            };
            if let Some(payload) = inner.iter().find(|p| p.key() == key) {
                if let Some(delta) = payload.merge(section) {
                    deltas.push(delta);
                }
            }
        }
        deltas
    }
}

/// Extracts the payload sections of a discovery protocol body (the
/// receiver-side counterpart of [`GossipPayloads::snapshots`]).
pub fn payload_sections(body: &Element) -> impl Iterator<Item = &Element> {
    body.child_elements().filter(|c| c.name == PAYLOAD_ELEMENT)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A payload holding one versioned integer cell — the smallest state
    /// with the directory's merge shape.
    struct Cell {
        key: String,
        state: RwLock<(u64, i64)>,
    }

    impl Cell {
        fn new(key: &str, version: u64, value: i64) -> Arc<Cell> {
            Arc::new(Cell {
                key: key.into(),
                state: RwLock::new((version, value)),
            })
        }
    }

    impl GossipPayload for Cell {
        fn key(&self) -> String {
            self.key.clone()
        }

        fn snapshot(&self) -> Element {
            let (version, value) = *self.state.read();
            Element::new(PAYLOAD_ELEMENT)
                .with_attr("key", &self.key)
                .with_attr("version", version.to_string())
                .with_attr("value", value.to_string())
        }

        fn merge(&self, incoming: &Element) -> Option<Element> {
            let theirs: u64 = incoming.attr("version")?.parse().ok()?;
            let mut state = self.state.write();
            if theirs > state.0 {
                *state = (theirs, incoming.attr("value")?.parse().ok()?);
                None
            } else if theirs < state.0 {
                drop(state);
                Some(self.snapshot())
            } else {
                None
            }
        }
    }

    #[test]
    fn register_replaces_same_key_and_routes_by_key() {
        let payloads = GossipPayloads::new();
        assert!(payloads.is_empty());
        payloads.register(Cell::new("a", 1, 10));
        payloads.register(Cell::new("b", 1, 20));
        payloads.register(Cell::new("a", 5, 50));
        let snaps = payloads.snapshots();
        assert_eq!(snaps.len(), 2);
        let a = snaps.iter().find(|s| s.attr("key") == Some("a")).unwrap();
        assert_eq!(a.attr("version"), Some("5"));
    }

    #[test]
    fn merge_sections_returns_fresher_state_for_stale_senders() {
        let payloads = GossipPayloads::new();
        payloads.register(Cell::new("x", 3, 30));
        // A stale section: the merge answers with our fresher row.
        let stale = Element::new(PAYLOAD_ELEMENT)
            .with_attr("key", "x")
            .with_attr("version", "1")
            .with_attr("value", "10");
        let body = Element::new("directory").with_child(stale);
        let deltas = payloads.merge_sections(payload_sections(&body));
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].attr("version"), Some("3"));
        // A fresher section: adopted, nothing to answer.
        let fresh = Element::new(PAYLOAD_ELEMENT)
            .with_attr("key", "x")
            .with_attr("version", "9")
            .with_attr("value", "90");
        let body = Element::new("directory").with_child(fresh);
        assert!(payloads.merge_sections(payload_sections(&body)).is_empty());
        assert_eq!(payloads.snapshots()[0].attr("version"), Some("9"));
        // Unknown keys are ignored.
        let unknown = Element::new(PAYLOAD_ELEMENT)
            .with_attr("key", "nope")
            .with_attr("version", "1");
        let body = Element::new("directory").with_child(unknown);
        assert!(payloads.merge_sections(payload_sections(&body)).is_empty());
    }
}
