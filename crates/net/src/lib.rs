//! # selfserv-net
//!
//! The peer-to-peer message fabric of the SELF-SERV reproduction.
//!
//! In the original platform, "services communicate through XML documents …
//! exchanged through Java sockets". Coordinators, wrappers, communities and
//! the discovery engine are all just nodes exchanging XML envelopes. This
//! crate supplies that substrate behind one seam — the object-safe
//! [`Transport`] trait — with two first-class implementations:
//!
//! * [`Network`] — an **in-process fabric** with named nodes, per-link
//!   latency/jitter, probabilistic loss, partitions, and node-kill failure
//!   injection. All delivery decisions are driven by a seeded RNG so
//!   experiments are reproducible. Per-node message/byte counters feed the
//!   paper's scalability claims (experiment E4: load on the hottest node
//!   under P2P vs. centralised orchestration).
//! * [`TcpTransport`] — a real **TCP transport** carrying the same
//!   length-prefixed XML envelopes over `std::net` sockets with
//!   persistent per-peer connections, demonstrating that nothing in the
//!   platform depends on the simulation.
//!
//! Platform components hold `&dyn Transport` / [`TransportHandle`] and an
//! [`Endpoint`], never a concrete network type, so the same composite
//! service executes unchanged over either substrate.
//!
//! ## Example
//!
//! ```
//! use selfserv_net::{Network, NetworkConfig};
//! use selfserv_xml::Element;
//!
//! let net = Network::new(NetworkConfig::instant());
//! let a = net.connect("coordinator.a").unwrap();
//! let b = net.connect("coordinator.b").unwrap();
//! a.send("coordinator.b", "notify", Element::new("completed")).unwrap();
//! let env = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
//! assert_eq!(env.kind, "notify");
//! assert_eq!(env.from.as_str(), "coordinator.a");
//! ```

pub mod directory;
mod envelope;
mod fabric;
mod fault;
pub mod gossip;
mod metrics;
mod replica;
pub mod tcp;
mod transport;
mod writer;

pub use directory::{
    DirectoryChange, DirectoryEntry, HubId, LivenessEvent, LivenessProbe, PeerDirectory,
    PeerStatus, LIVENESS_KIND,
};
pub use envelope::{Envelope, MessageId, NodeId};
pub use fabric::{Network, NetworkConfig};
pub use fault::{
    minimize_schedule, ChaosConfig, ChaosController, ChaosTarget, FaultAction, FaultEvent,
    FaultPolicy, FaultSchedule, KindRule, LatencyModel, NodeEvent, NodeFault,
};
pub use gossip::{GossipPayload, GossipPayloads};
pub use metrics::{MetricsSnapshot, NodeMetrics, TransportIoStats, EPHEMERAL_AGGREGATE};
pub use replica::ReplicaSet;
pub use tcp::TcpTransport;
pub use transport::{
    ConnectError, Endpoint, NodeSender, RawEndpoint, RecvError, ReplyDemux, RpcError, SendError,
    Transport, TransportHandle,
};

#[cfg(test)]
mod proptests;
