//! Caller-side routing over a set of service replicas.
//!
//! A replicated service (e.g. a community running N server replicas
//! across hubs) is addressed through a [`ReplicaSet`]: the caller picks
//! one replica per logical key with **rendezvous hashing** (highest
//! random weight), so the same key lands on the same replica as long as
//! that replica lives — no coordination, no routing table to rebalance —
//! while a replica's death only reassigns *its* keys. Liveness comes from
//! whatever failure detector the caller holds (the discovery directory's
//! [`LivenessProbe`] view): evicted replicas leave the rotation entirely,
//! suspected ones serve only when no healthy replica remains, and a
//! restarted replica rejoins the instant its status recovers, because
//! selection re-consults the probe on every call.
//!
//! Between the two top-ranked candidates for a key, the caller's local
//! in-flight load breaks the tie toward the less-loaded one (the
//! "power of two choices" refinement): keys keep their affinity when load
//! is even, and hot spots shed excess onto their runner-up instead of
//! queueing behind one mailbox.

use crate::directory::{LivenessProbe, PeerDirectory, PeerStatus};
use crate::envelope::NodeId;

/// An ordered set of replica nodes serving one logical service.
#[derive(Debug, Clone, Default)]
pub struct ReplicaSet {
    replicas: Vec<NodeId>,
}

impl ReplicaSet {
    /// A replica set over the given nodes (order is irrelevant to
    /// routing; hashing is by name).
    pub fn new(replicas: Vec<NodeId>) -> ReplicaSet {
        ReplicaSet { replicas }
    }

    /// The replica set of a `<base>` / `<base>.rN` naming family as a
    /// hub's directory currently sees it — the cross-hub counterpart of
    /// probing local names: every replica *any* gossiping hub hosts is a
    /// candidate, wherever it runs. Tombstoned names are excluded (the
    /// directory's `names()` view is live-only); contiguity is not
    /// required, because a crashed middle replica must not hide the
    /// survivors behind it.
    pub fn discover(base: &str, directory: &PeerDirectory) -> ReplicaSet {
        let prefix = format!("{base}.r");
        let replicas = directory
            .names()
            .into_iter()
            .filter(|n| {
                let s = n.as_str();
                s == base
                    || s.strip_prefix(&prefix)
                        .is_some_and(|i| !i.is_empty() && i.bytes().all(|b| b.is_ascii_digit()))
            })
            .collect();
        ReplicaSet { replicas }
    }

    /// The replica nodes.
    pub fn replicas(&self) -> &[NodeId] {
        &self.replicas
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when the set holds no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Picks the replica serving `key`.
    ///
    /// * `liveness` — optional failure-detector view: evicted replicas
    ///   are out of candidacy, suspected ones are used only when no
    ///   healthy candidate remains.
    /// * `excluded` — replicas already tried (failover): never returned.
    /// * `load` — the caller's local in-flight count per replica; breaks
    ///   the tie between the two top rendezvous candidates.
    ///
    /// Returns `None` when every replica is excluded or evicted.
    pub fn route(
        &self,
        key: &str,
        liveness: Option<&dyn LivenessProbe>,
        excluded: &[NodeId],
        load: &dyn Fn(&NodeId) -> usize,
    ) -> Option<NodeId> {
        let mut healthy: Vec<&NodeId> = Vec::new();
        let mut suspected: Vec<&NodeId> = Vec::new();
        for r in self.replicas.iter().filter(|r| !excluded.contains(r)) {
            match liveness.map_or(PeerStatus::Alive, |l| l.status_of(r.as_str())) {
                PeerStatus::Alive => healthy.push(r),
                PeerStatus::Suspected | PeerStatus::NameConflict => suspected.push(r),
                PeerStatus::Evicted => {}
            }
        }
        let pool = if healthy.is_empty() {
            &suspected
        } else {
            &healthy
        };
        match pool.as_slice() {
            [] => None,
            [only] => Some((*only).clone()),
            pool => {
                // Rank by rendezvous score; the two highest are the key's
                // primary and runner-up. Ties in score break by name so
                // every caller ranks identically.
                let mut ranked: Vec<(&NodeId, u64)> = pool
                    .iter()
                    .map(|r| (*r, rendezvous_score(key, r.as_str())))
                    .collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.as_str().cmp(b.0.as_str())));
                let (primary, runner_up) = (ranked[0].0, ranked[1].0);
                if load(runner_up) < load(primary) {
                    Some(runner_up.clone())
                } else {
                    Some(primary.clone())
                }
            }
        }
    }
}

/// FNV-1a over the key/replica pair — the per-replica "random weight" of
/// rendezvous hashing. Stable across processes (no `RandomState`), so
/// every caller agrees on each key's primary.
fn rendezvous_score(key: &str, replica: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in key
        .as_bytes()
        .iter()
        .chain([0xffu8].iter())
        .chain(replica.as_bytes())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn set(names: &[&str]) -> ReplicaSet {
        ReplicaSet::new(names.iter().map(NodeId::new).collect())
    }

    const NO_LOAD: &dyn Fn(&NodeId) -> usize = &|_| 0;

    #[test]
    fn routing_is_deterministic_and_key_spread() {
        let rs = set(&["community.x", "community.x.r1", "community.x.r2"]);
        let mut hits: HashMap<NodeId, usize> = HashMap::new();
        for i in 0..300 {
            let key = format!("instance-{i}");
            let a = rs.route(&key, None, &[], NO_LOAD).unwrap();
            let b = rs.route(&key, None, &[], NO_LOAD).unwrap();
            assert_eq!(a, b, "same key, same replica");
            *hits.entry(a).or_default() += 1;
        }
        assert_eq!(hits.len(), 3, "all replicas serve some keys: {hits:?}");
    }

    #[test]
    fn discover_collects_the_naming_family_across_hubs() {
        use crate::directory::{DirectoryEntry, HubId, PeerDirectory};
        let dir = PeerDirectory::new(HubId(1));
        let addr = "127.0.0.1:9000".parse().unwrap();
        for name in [
            "community.x",
            "community.x.r1",
            "community.xylo",    // shares the prefix but is not a replica
            "community.x.rogue", // non-numeric suffix
            "svc.member",
        ] {
            dir.bind_local(NodeId::new(name), addr).unwrap();
        }
        // A replica learned from another hub's gossip counts too …
        dir.merge_remote([(
            NodeId::new("community.x.r2"),
            DirectoryEntry {
                addr: "127.0.0.1:9100".parse().unwrap(),
                owner: HubId(2),
                version: 1,
                evicted: false,
            },
        )]);
        // … but a tombstoned one does not.
        dir.merge_remote([(
            NodeId::new("community.x.r3"),
            DirectoryEntry {
                addr: "127.0.0.1:9200".parse().unwrap(),
                owner: HubId(2),
                version: 4,
                evicted: true,
            },
        )]);
        let rs = ReplicaSet::discover("community.x", &dir);
        let mut names: Vec<&str> = rs.replicas().iter().map(|n| n.as_str()).collect();
        names.sort();
        assert_eq!(
            names,
            vec!["community.x", "community.x.r1", "community.x.r2"]
        );
    }

    #[test]
    fn excluded_replicas_never_serve() {
        let rs = set(&["a", "b", "c"]);
        for i in 0..50 {
            let key = format!("k{i}");
            let first = rs.route(&key, None, &[], NO_LOAD).unwrap();
            let second = rs
                .route(&key, None, std::slice::from_ref(&first), NO_LOAD)
                .unwrap();
            assert_ne!(first, second);
            let third = rs
                .route(&key, None, &[first.clone(), second.clone()], NO_LOAD)
                .unwrap();
            assert_ne!(third, first);
            assert_ne!(third, second);
            assert!(rs
                .route(&key, None, &[first, second, third], NO_LOAD)
                .is_none());
        }
    }

    #[test]
    fn load_breaks_ties_toward_runner_up() {
        let rs = set(&["a", "b"]);
        let key = "hot";
        let primary = rs.route(key, None, &[], NO_LOAD).unwrap();
        let other = rs
            .route(key, None, std::slice::from_ref(&primary), NO_LOAD)
            .unwrap();
        // Loaded primary sheds onto the runner-up; balanced load keeps
        // the key's affinity.
        let loaded = primary.clone();
        let chosen = rs.route(key, None, &[], &|n| usize::from(*n == loaded));
        assert_eq!(chosen, Some(other));
        let chosen = rs.route(key, None, &[], &|_| 3);
        assert_eq!(chosen, Some(primary));
    }

    struct Fixed(HashMap<String, PeerStatus>);

    impl LivenessProbe for Fixed {
        fn status_of(&self, name: &str) -> PeerStatus {
            self.0.get(name).copied().unwrap_or(PeerStatus::Alive)
        }
    }

    #[test]
    fn dead_replicas_leave_rotation_and_rejoin() {
        let rs = set(&["a", "b", "c"]);
        let dead = Fixed(
            [("a".to_string(), PeerStatus::Evicted)]
                .into_iter()
                .collect(),
        );
        for i in 0..100 {
            let key = format!("k{i}");
            let chosen = rs.route(&key, Some(&dead), &[], NO_LOAD).unwrap();
            assert_ne!(chosen.as_str(), "a");
        }
        // Status recovered: the replica serves its keys again.
        let back = Fixed(HashMap::new());
        let serves_a = (0..100).any(|i| {
            rs.route(&format!("k{i}"), Some(&back), &[], NO_LOAD)
                .unwrap()
                .as_str()
                == "a"
        });
        assert!(serves_a);
    }

    #[test]
    fn suspected_replicas_serve_only_as_fallback() {
        let rs = set(&["a", "b"]);
        let shaky = Fixed(
            [("a".to_string(), PeerStatus::Suspected)]
                .into_iter()
                .collect(),
        );
        for i in 0..50 {
            let chosen = rs
                .route(&format!("k{i}"), Some(&shaky), &[], NO_LOAD)
                .unwrap();
            assert_eq!(chosen.as_str(), "b");
        }
        let chosen = rs
            .route("k", Some(&shaky), &[NodeId::new("b")], NO_LOAD)
            .unwrap();
        assert_eq!(chosen.as_str(), "a");
    }
}
