//! Fault and latency models for the in-process fabric.

use crate::envelope::NodeId;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// How long a message spends "on the wire".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Immediate in-thread delivery: measures pure software overhead.
    Instant,
    /// Constant delay.
    Fixed(Duration),
    /// Uniformly distributed delay in `[min, max]`.
    Uniform(Duration, Duration),
}

impl LatencyModel {
    /// Samples a delay. `Instant` returns zero.
    pub fn sample(&self, rng: &mut impl Rng) -> Duration {
        match self {
            LatencyModel::Instant => Duration::ZERO,
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform(min, max) => {
                if max <= min {
                    return *min;
                }
                let span = max.as_nanos() - min.as_nanos();
                let extra = rng.gen_range(0..=span) as u64;
                *min + Duration::from_nanos(extra)
            }
        }
    }

    /// True when no delivery thread is needed.
    pub fn is_instant(&self) -> bool {
        matches!(self, LatencyModel::Instant)
    }
}

/// Per-link override of the network-wide defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOverride {
    /// Latency on this link (directed).
    pub latency: Option<LatencyModel>,
    /// Loss probability on this link (directed).
    pub drop_probability: Option<f64>,
}

/// Mutable fault state of the fabric: loss, partitions, dead nodes,
/// per-link overrides.
#[derive(Debug, Default)]
pub struct FaultPolicy {
    /// Network-wide probability that any message is silently dropped.
    pub drop_probability: f64,
    /// Directed blocked pairs `(from, to)`.
    partitions: HashSet<(NodeId, NodeId)>,
    /// Nodes that have been killed.
    dead: HashSet<NodeId>,
    /// Per-link overrides.
    links: HashMap<(NodeId, NodeId), LinkOverride>,
}

impl FaultPolicy {
    /// Blocks traffic from `a` to `b` AND from `b` to `a`.
    pub fn partition(&mut self, a: &NodeId, b: &NodeId) {
        self.partitions.insert((a.clone(), b.clone()));
        self.partitions.insert((b.clone(), a.clone()));
    }

    /// Blocks traffic from `from` to `to` only.
    pub fn partition_directed(&mut self, from: &NodeId, to: &NodeId) {
        self.partitions.insert((from.clone(), to.clone()));
    }

    /// Removes a (bidirectional) partition.
    pub fn heal(&mut self, a: &NodeId, b: &NodeId) {
        self.partitions.remove(&(a.clone(), b.clone()));
        self.partitions.remove(&(b.clone(), a.clone()));
    }

    /// Removes every partition.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Marks a node dead: all traffic to it is dropped.
    pub fn kill(&mut self, node: &NodeId) {
        self.dead.insert(node.clone());
    }

    /// Brings a node back.
    pub fn revive(&mut self, node: &NodeId) {
        self.dead.remove(node);
    }

    /// True when the node has been killed.
    pub fn is_dead(&self, node: &NodeId) -> bool {
        self.dead.contains(node)
    }

    /// True when traffic from `from` to `to` is currently blocked by a
    /// partition or a dead endpoint.
    pub fn is_blocked(&self, from: &NodeId, to: &NodeId) -> bool {
        self.dead.contains(from)
            || self.dead.contains(to)
            || self.partitions.contains(&(from.clone(), to.clone()))
    }

    /// Sets a per-link override.
    pub fn set_link(&mut self, from: &NodeId, to: &NodeId, link: LinkOverride) {
        self.links.insert((from.clone(), to.clone()), link);
    }

    /// The per-link override for a directed pair, if any.
    pub fn link(&self, from: &NodeId, to: &NodeId) -> Option<&LinkOverride> {
        self.links.get(&(from.clone(), to.clone()))
    }

    /// The effective drop probability for a directed pair.
    pub fn effective_drop(&self, from: &NodeId, to: &NodeId) -> f64 {
        self.link(from, to)
            .and_then(|l| l.drop_probability)
            .unwrap_or(self.drop_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latency_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Instant.sample(&mut rng), Duration::ZERO);
        assert!(LatencyModel::Instant.is_instant());
        let d = Duration::from_millis(5);
        assert_eq!(LatencyModel::Fixed(d).sample(&mut rng), d);
        let lo = Duration::from_millis(2);
        let hi = Duration::from_millis(9);
        for _ in 0..100 {
            let s = LatencyModel::Uniform(lo, hi).sample(&mut rng);
            assert!(s >= lo && s <= hi, "{s:?}");
        }
        // Degenerate range behaves like Fixed.
        assert_eq!(LatencyModel::Uniform(hi, lo).sample(&mut rng), hi);
    }

    #[test]
    fn partitions_block_both_directions() {
        let mut p = FaultPolicy::default();
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        assert!(!p.is_blocked(&a, &b));
        p.partition(&a, &b);
        assert!(p.is_blocked(&a, &b));
        assert!(p.is_blocked(&b, &a));
        p.heal(&a, &b);
        assert!(!p.is_blocked(&a, &b));
    }

    #[test]
    fn directed_partition_blocks_one_direction() {
        let mut p = FaultPolicy::default();
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        p.partition_directed(&a, &b);
        assert!(p.is_blocked(&a, &b));
        assert!(!p.is_blocked(&b, &a));
        p.heal_all();
        assert!(!p.is_blocked(&a, &b));
    }

    #[test]
    fn dead_nodes_block_traffic() {
        let mut p = FaultPolicy::default();
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        p.kill(&b);
        assert!(p.is_dead(&b));
        assert!(p.is_blocked(&a, &b));
        assert!(p.is_blocked(&b, &a), "dead nodes cannot send either");
        p.revive(&b);
        assert!(!p.is_blocked(&a, &b));
    }

    #[test]
    fn link_overrides_take_precedence() {
        let mut p = FaultPolicy {
            drop_probability: 0.5,
            ..Default::default()
        };
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        assert_eq!(p.effective_drop(&a, &b), 0.5);
        p.set_link(
            &a,
            &b,
            LinkOverride {
                latency: None,
                drop_probability: Some(0.0),
            },
        );
        assert_eq!(p.effective_drop(&a, &b), 0.0);
        assert_eq!(p.effective_drop(&b, &a), 0.5, "override is directed");
    }
}
