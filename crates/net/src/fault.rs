//! Fault and latency models for the in-process fabric, and the seeded
//! chaos engine that drives them.
//!
//! Two layers live here:
//!
//! * **Static knobs** — [`FaultPolicy`] (loss, partitions, dead nodes,
//!   per-link overrides) and [`LatencyModel`], consulted by the fabric on
//!   every dispatch. These are imperative: a test flips them and traffic
//!   changes.
//! * **The chaos engine** — a [`FaultSchedule`] samples per-message-kind
//!   fault actions (drop, delay, duplicate, reorder-within-window) from a
//!   seed, plus timed whole-node crash/restart events applied by a
//!   [`ChaosController`]. Every decision is a pure function of
//!   `(seed, from, to, kind, per-stream counter)`, so a run's fault
//!   sequence is reproducible from its seed alone even though thread
//!   interleaving is not: per-link message order is deterministic (one
//!   sender node is serialized, links are FIFO), and nothing else feeds
//!   the decision. The schedule records everything it did as a
//!   [`FaultEvent`] log that can be replayed verbatim
//!   ([`FaultSchedule::replay`]) and shrunk to a minimal failing core
//!   ([`minimize_schedule`]).

use crate::envelope::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// How long a message spends "on the wire".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Immediate in-thread delivery: measures pure software overhead.
    Instant,
    /// Constant delay.
    Fixed(Duration),
    /// Uniformly distributed delay in `[min, max]`.
    Uniform(Duration, Duration),
}

impl LatencyModel {
    /// Samples a delay. `Instant` returns zero.
    pub fn sample(&self, rng: &mut impl Rng) -> Duration {
        match self {
            LatencyModel::Instant => Duration::ZERO,
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform(min, max) => {
                if max <= min {
                    return *min;
                }
                // A span wider than u64::MAX nanoseconds (~584 years)
                // saturates rather than silently truncating the u128.
                let span = u64::try_from(max.as_nanos() - min.as_nanos()).unwrap_or(u64::MAX);
                let extra = rng.gen_range(0..=span);
                *min + Duration::from_nanos(extra)
            }
        }
    }

    /// True when no delivery thread is needed.
    pub fn is_instant(&self) -> bool {
        matches!(self, LatencyModel::Instant)
    }
}

/// Per-link override of the network-wide defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOverride {
    /// Latency on this link (directed).
    pub latency: Option<LatencyModel>,
    /// Loss probability on this link (directed).
    pub drop_probability: Option<f64>,
}

/// Mutable fault state of the fabric: loss, partitions, dead nodes,
/// per-link overrides.
#[derive(Debug, Default)]
pub struct FaultPolicy {
    /// Network-wide probability that any message is silently dropped.
    pub drop_probability: f64,
    /// Directed blocked pairs `(from, to)`.
    partitions: HashSet<(NodeId, NodeId)>,
    /// Nodes that have been killed.
    dead: HashSet<NodeId>,
    /// Per-link overrides.
    links: HashMap<(NodeId, NodeId), LinkOverride>,
}

impl FaultPolicy {
    /// Blocks traffic from `a` to `b` AND from `b` to `a`.
    pub fn partition(&mut self, a: &NodeId, b: &NodeId) {
        self.partitions.insert((a.clone(), b.clone()));
        self.partitions.insert((b.clone(), a.clone()));
    }

    /// Blocks traffic from `from` to `to` only.
    pub fn partition_directed(&mut self, from: &NodeId, to: &NodeId) {
        self.partitions.insert((from.clone(), to.clone()));
    }

    /// Removes a (bidirectional) partition.
    pub fn heal(&mut self, a: &NodeId, b: &NodeId) {
        self.partitions.remove(&(a.clone(), b.clone()));
        self.partitions.remove(&(b.clone(), a.clone()));
    }

    /// Removes every partition.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Marks a node dead: all traffic to it is dropped.
    pub fn kill(&mut self, node: &NodeId) {
        self.dead.insert(node.clone());
    }

    /// Brings a node back.
    pub fn revive(&mut self, node: &NodeId) {
        self.dead.remove(node);
    }

    /// True when the node has been killed.
    pub fn is_dead(&self, node: &NodeId) -> bool {
        self.dead.contains(node)
    }

    /// True when traffic from `from` to `to` is currently blocked by a
    /// partition or a dead endpoint.
    pub fn is_blocked(&self, from: &NodeId, to: &NodeId) -> bool {
        self.dead.contains(from)
            || self.dead.contains(to)
            || self.partitions.contains(&(from.clone(), to.clone()))
    }

    /// Sets a per-link override.
    pub fn set_link(&mut self, from: &NodeId, to: &NodeId, link: LinkOverride) {
        self.links.insert((from.clone(), to.clone()), link);
    }

    /// The per-link override for a directed pair, if any.
    pub fn link(&self, from: &NodeId, to: &NodeId) -> Option<&LinkOverride> {
        self.links.get(&(from.clone(), to.clone()))
    }

    /// The effective drop probability for a directed pair.
    pub fn effective_drop(&self, from: &NodeId, to: &NodeId) -> f64 {
        self.link(from, to)
            .and_then(|l| l.drop_probability)
            .unwrap_or(self.drop_probability)
    }
}

/// What the chaos engine decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass through untouched.
    Deliver,
    /// Silently drop.
    Drop,
    /// Hold back for the given duration before delivering.
    Delay(Duration),
    /// Deliver immediately *and* deliver a second copy after the given
    /// duration.
    Duplicate(Duration),
    /// Hold back by a slice of the reorder window so later messages on the
    /// same link overtake it. Mechanically a delay; kept distinct so the
    /// event log says what was intended.
    Reorder(Duration),
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Deliver => write!(f, "deliver"),
            FaultAction::Drop => write!(f, "drop"),
            FaultAction::Delay(d) => write!(f, "delay {}us", d.as_micros()),
            FaultAction::Duplicate(d) => write!(f, "duplicate +{}us", d.as_micros()),
            FaultAction::Reorder(d) => write!(f, "reorder +{}us", d.as_micros()),
        }
    }
}

/// Probabilities for one message-kind class. Kinds are matched by prefix
/// (`"invoke"` covers `invoke` and `invoke.result`); the empty prefix
/// matches everything. The first matching rule in a schedule wins.
#[derive(Debug, Clone)]
pub struct KindRule {
    kind_prefix: String,
    drop: f64,
    delay: f64,
    delay_range: (Duration, Duration),
    duplicate: f64,
    reorder: f64,
    reorder_window: Duration,
}

impl KindRule {
    /// A no-op rule matching every message kind.
    pub fn all() -> KindRule {
        KindRule::for_kind("")
    }

    /// A no-op rule matching kinds starting with `prefix`.
    pub fn for_kind(prefix: impl Into<String>) -> KindRule {
        KindRule {
            kind_prefix: prefix.into(),
            drop: 0.0,
            delay: 0.0,
            delay_range: (Duration::from_millis(1), Duration::from_millis(10)),
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: Duration::from_millis(5),
        }
    }

    /// Probability that a matching message is dropped.
    pub fn drop(mut self, p: f64) -> KindRule {
        self.drop = p;
        self
    }

    /// Probability that a matching message is delayed, and the delay range.
    pub fn delay(mut self, p: f64, min: Duration, max: Duration) -> KindRule {
        self.delay = p;
        self.delay_range = (min, max);
        self
    }

    /// Probability that a matching message is duplicated (the copy arrives
    /// within the reorder window).
    pub fn duplicate(mut self, p: f64) -> KindRule {
        self.duplicate = p;
        self
    }

    /// Probability that a matching message is reordered, and the window
    /// within which later messages may overtake it.
    pub fn reorder(mut self, p: f64, window: Duration) -> KindRule {
        self.reorder = p;
        self.reorder_window = window;
        self
    }

    fn matches(&self, kind: &str) -> bool {
        kind.starts_with(&self.kind_prefix)
    }
}

/// What a timed node event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The node goes dark: all its traffic is dropped.
    Crash,
    /// The node comes back.
    Restart,
}

/// A whole-node crash or restart scheduled at an offset from the start of
/// the run, applied by a [`ChaosController`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEvent {
    /// Offset from [`ChaosController::start`].
    pub at: Duration,
    pub node: NodeId,
    pub fault: NodeFault,
}

/// Message-fault rules plus timed node events: everything a seed expands
/// into.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// First matching rule (by kind prefix) decides a message's fate.
    pub rules: Vec<KindRule>,
    /// Timed whole-node crash/restart events.
    pub node_events: Vec<NodeEvent>,
}

impl ChaosConfig {
    /// Adds a message-fault rule (first match wins).
    pub fn rule(mut self, rule: KindRule) -> ChaosConfig {
        self.rules.push(rule);
        self
    }

    /// Schedules a node crash at `at`.
    pub fn crash(mut self, at: Duration, node: impl Into<NodeId>) -> ChaosConfig {
        self.node_events.push(NodeEvent {
            at,
            node: node.into(),
            fault: NodeFault::Crash,
        });
        self
    }

    /// Schedules a node restart at `at`.
    pub fn restart(mut self, at: Duration, node: impl Into<NodeId>) -> ChaosConfig {
        self.node_events.push(NodeEvent {
            at,
            node: node.into(),
            fault: NodeFault::Restart,
        });
        self
    }
}

/// One entry of a schedule's fault log: either a message-level decision
/// (identified by its stream — sender, receiver, kind — and the message's
/// sequence number within that stream) or a timed node event. The log is
/// the replayable artifact: feed it back through
/// [`FaultSchedule::replay`] and the same messages meet the same fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// The `seq`-th message from `from` to `to` of kind `kind` was hit
    /// with `action`.
    Message {
        from: NodeId,
        to: NodeId,
        kind: String,
        seq: u64,
        action: FaultAction,
    },
    /// A timed whole-node crash or restart.
    Node(NodeEvent),
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::Message {
                from,
                to,
                kind,
                seq,
                action,
            } => {
                write!(f, "{action:<20} {from} -> {to}  kind={kind} #{seq}")
            }
            FaultEvent::Node(ev) => {
                let verb = match ev.fault {
                    NodeFault::Crash => "crash",
                    NodeFault::Restart => "restart",
                };
                write!(f, "{verb:<20} {} @{}ms", ev.node, ev.at.as_millis())
            }
        }
    }
}

type StreamKey = (NodeId, NodeId, String);

enum Mode {
    /// Decisions sampled from the seed via the config's rules.
    Sample(ChaosConfig),
    /// Decisions looked up in a fixed event list; everything else passes.
    Replay {
        actions: HashMap<(StreamKey, u64), FaultAction>,
        node_events: Vec<NodeEvent>,
    },
}

/// A seeded, fully reproducible fault schedule. Install on a fabric with
/// [`crate::Network::install_chaos`]; drive its timed node events with a
/// [`ChaosController`].
///
/// Determinism: each decision is a pure function of
/// `(seed, from, to, kind, n)` where `n` counts messages on that stream —
/// see [`FaultSchedule::decision_at`]. Global thread interleaving cannot
/// change any message's fate, only the wall-clock order in which fates are
/// handed out.
pub struct FaultSchedule {
    seed: u64,
    mode: Mode,
    counters: Mutex<HashMap<StreamKey, u64>>,
    log: Mutex<Vec<FaultEvent>>,
}

/// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultSchedule {
    /// A sampling schedule: decisions drawn from `seed` under `config`.
    pub fn sample(seed: u64, config: ChaosConfig) -> Arc<FaultSchedule> {
        Arc::new(FaultSchedule {
            seed,
            mode: Mode::Sample(config),
            counters: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
        })
    }

    /// A replay schedule: exactly the listed events happen (matched by
    /// stream + sequence number), everything else is delivered untouched.
    pub fn replay(seed: u64, events: &[FaultEvent]) -> Arc<FaultSchedule> {
        let mut actions = HashMap::new();
        let mut node_events = Vec::new();
        for ev in events {
            match ev {
                FaultEvent::Message {
                    from,
                    to,
                    kind,
                    seq,
                    action,
                } => {
                    actions.insert(((from.clone(), to.clone(), kind.clone()), *seq), *action);
                }
                FaultEvent::Node(ev) => node_events.push(ev.clone()),
            }
        }
        Arc::new(FaultSchedule {
            seed,
            mode: Mode::Replay {
                actions,
                node_events,
            },
            counters: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
        })
    }

    /// The seed this schedule was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides the fate of one message and records any non-`Deliver`
    /// outcome in the log. Called by the fabric on its delivery path.
    pub fn decide(&self, from: &NodeId, to: &NodeId, kind: &str) -> FaultAction {
        let seq = {
            let mut counters = self.counters.lock();
            let n = counters
                .entry((from.clone(), to.clone(), kind.to_string()))
                .or_insert(0);
            let seq = *n;
            *n += 1;
            seq
        };
        let action = match &self.mode {
            Mode::Sample(_) => self.decision_at(from, to, kind, seq),
            Mode::Replay { actions, .. } => actions
                .get(&((from.clone(), to.clone(), kind.to_string()), seq))
                .copied()
                .unwrap_or(FaultAction::Deliver),
        };
        if action != FaultAction::Deliver {
            self.log.lock().push(FaultEvent::Message {
                from: from.clone(),
                to: to.clone(),
                kind: kind.to_string(),
                seq,
                action,
            });
        }
        action
    }

    /// The pure decision function: what happens to the `seq`-th message on
    /// the `(from, to, kind)` stream under this seed. [`FaultSchedule::decide`]
    /// is exactly this plus counter upkeep and logging, which is what makes
    /// a seed's fault sequence reproducible — the replay test asserts that
    /// every logged event matches this function on a fresh schedule.
    pub fn decision_at(&self, from: &NodeId, to: &NodeId, kind: &str, seq: u64) -> FaultAction {
        let Mode::Sample(config) = &self.mode else {
            // Replay mode has no distribution to consult.
            return FaultAction::Deliver;
        };
        let Some(rule) = config.rules.iter().find(|r| r.matches(kind)) else {
            return FaultAction::Deliver;
        };
        let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ mix64(self.seed);
        for bytes in [
            from.as_str().as_bytes(),
            to.as_str().as_bytes(),
            kind.as_bytes(),
        ] {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h = (h ^ 0xff).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(mix64(h ^ mix64(seq)));
        let roll: f64 = rng.gen();
        let mut threshold = rule.drop;
        if roll < threshold {
            return FaultAction::Drop;
        }
        threshold += rule.duplicate;
        if roll < threshold {
            return FaultAction::Duplicate(sample_range(
                &mut rng,
                Duration::ZERO,
                rule.reorder_window,
            ));
        }
        threshold += rule.reorder;
        if roll < threshold {
            return FaultAction::Reorder(sample_range(
                &mut rng,
                Duration::ZERO,
                rule.reorder_window,
            ));
        }
        threshold += rule.delay;
        if roll < threshold {
            return FaultAction::Delay(sample_range(
                &mut rng,
                rule.delay_range.0,
                rule.delay_range.1,
            ));
        }
        FaultAction::Deliver
    }

    /// The timed node events of this schedule, sorted by offset.
    pub fn node_events(&self) -> Vec<NodeEvent> {
        let mut events = match &self.mode {
            Mode::Sample(config) => config.node_events.clone(),
            Mode::Replay { node_events, .. } => node_events.clone(),
        };
        events.sort_by_key(|e| e.at);
        events
    }

    /// Everything this schedule did (or will do): the recorded message
    /// faults plus the timed node events, in canonical order — node events
    /// by offset, then message events by stream and sequence number. Two
    /// runs of the same seed produce equal logs regardless of thread
    /// interleaving.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events: Vec<FaultEvent> = self
            .node_events()
            .into_iter()
            .map(FaultEvent::Node)
            .collect();
        let mut messages = self.log.lock().clone();
        messages.sort_by(|a, b| {
            let key = |e: &FaultEvent| match e {
                FaultEvent::Message {
                    from,
                    to,
                    kind,
                    seq,
                    ..
                } => (from.clone(), to.clone(), kind.clone(), *seq),
                FaultEvent::Node(_) => unreachable!("message log holds only message events"),
            };
            key(a).cmp(&key(b))
        });
        events.extend(messages);
        events
    }

    /// Number of recorded message faults so far.
    pub fn fault_count(&self) -> usize {
        self.log.lock().len()
    }
}

fn sample_range(rng: &mut StdRng, min: Duration, max: Duration) -> Duration {
    if max <= min {
        return min;
    }
    let span = u64::try_from((max - min).as_nanos()).unwrap_or(u64::MAX);
    min + Duration::from_nanos(rng.gen_range(0..=span))
}

/// Something whose nodes a [`ChaosController`] can crash and restart: the
/// fabric (kill/revive) and the TCP transport (connection kill → deferred
/// write error → writer respawn) both implement it.
pub trait ChaosTarget: Send + Sync {
    /// Takes `node` down.
    fn crash(&self, node: &NodeId);
    /// Brings `node` back.
    fn restart(&self, node: &NodeId);
}

/// Applies a schedule's timed node events to a [`ChaosTarget`] from a
/// background thread. The clock starts at [`ChaosController::start`];
/// dropping the controller stops the thread (remaining events never fire).
pub struct ChaosController {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosController {
    /// Starts driving `schedule`'s node events into `target`.
    pub fn start(schedule: &Arc<FaultSchedule>, target: Arc<dyn ChaosTarget>) -> ChaosController {
        let events = schedule.node_events();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("selfserv-chaos".to_string())
            .spawn(move || {
                let epoch = Instant::now();
                for ev in events {
                    loop {
                        if stop2.load(Ordering::SeqCst) {
                            return;
                        }
                        let now = epoch.elapsed();
                        if now >= ev.at {
                            break;
                        }
                        // Short naps keep stop() responsive without a
                        // condvar for what is a test-harness thread.
                        std::thread::sleep((ev.at - now).min(Duration::from_millis(2)));
                    }
                    match ev.fault {
                        NodeFault::Crash => target.crash(&ev.node),
                        NodeFault::Restart => target.restart(&ev.node),
                    }
                }
            })
            .expect("spawn chaos controller thread");
        ChaosController {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the controller; events not yet fired never fire.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosController {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Delta-debugging (ddmin) minimization of a failing fault schedule:
/// returns a subset of `events` for which `still_fails` still returns
/// `true`, shrunk until no chunk at the finest granularity can be removed.
/// `still_fails` must be deterministic for the result to be 1-minimal;
/// with a seeded replay schedule it is.
pub fn minimize_schedule(
    events: &[FaultEvent],
    mut still_fails: impl FnMut(&[FaultEvent]) -> bool,
) -> Vec<FaultEvent> {
    let mut current: Vec<FaultEvent> = events.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        // Try each complement (the schedule minus one chunk): removing a
        // chunk that doesn't matter keeps the failure.
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<FaultEvent> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .cloned()
                .collect();
            if !complement.is_empty() && still_fails(&complement) {
                current = complement;
                granularity = (granularity - 1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    // A single event may still be removable (len 1 exits the loop above).
    if current.len() == 1 && still_fails(&[]) {
        current.clear();
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Instant.sample(&mut rng), Duration::ZERO);
        assert!(LatencyModel::Instant.is_instant());
        let d = Duration::from_millis(5);
        assert_eq!(LatencyModel::Fixed(d).sample(&mut rng), d);
        let lo = Duration::from_millis(2);
        let hi = Duration::from_millis(9);
        for _ in 0..100 {
            let s = LatencyModel::Uniform(lo, hi).sample(&mut rng);
            assert!(s >= lo && s <= hi, "{s:?}");
        }
        // Degenerate range behaves like Fixed.
        assert_eq!(LatencyModel::Uniform(hi, lo).sample(&mut rng), hi);
    }

    #[test]
    fn partitions_block_both_directions() {
        let mut p = FaultPolicy::default();
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        assert!(!p.is_blocked(&a, &b));
        p.partition(&a, &b);
        assert!(p.is_blocked(&a, &b));
        assert!(p.is_blocked(&b, &a));
        p.heal(&a, &b);
        assert!(!p.is_blocked(&a, &b));
    }

    #[test]
    fn directed_partition_blocks_one_direction() {
        let mut p = FaultPolicy::default();
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        p.partition_directed(&a, &b);
        assert!(p.is_blocked(&a, &b));
        assert!(!p.is_blocked(&b, &a));
        p.heal_all();
        assert!(!p.is_blocked(&a, &b));
    }

    #[test]
    fn dead_nodes_block_traffic() {
        let mut p = FaultPolicy::default();
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        p.kill(&b);
        assert!(p.is_dead(&b));
        assert!(p.is_blocked(&a, &b));
        assert!(p.is_blocked(&b, &a), "dead nodes cannot send either");
        p.revive(&b);
        assert!(!p.is_blocked(&a, &b));
    }

    #[test]
    fn link_overrides_take_precedence() {
        let mut p = FaultPolicy {
            drop_probability: 0.5,
            ..Default::default()
        };
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        assert_eq!(p.effective_drop(&a, &b), 0.5);
        p.set_link(
            &a,
            &b,
            LinkOverride {
                latency: None,
                drop_probability: Some(0.0),
            },
        );
        assert_eq!(p.effective_drop(&a, &b), 0.0);
        assert_eq!(p.effective_drop(&b, &a), 0.5, "override is directed");
    }

    #[test]
    fn uniform_latency_saturates_huge_spans() {
        let mut rng = StdRng::seed_from_u64(3);
        let lo = Duration::ZERO;
        let hi = Duration::MAX;
        // Before the fix this truncated the u128 span to u64 and could
        // sample far outside [lo, hi]; now it saturates and stays inside.
        for _ in 0..50 {
            let s = LatencyModel::Uniform(lo, hi).sample(&mut rng);
            assert!(s <= hi);
        }
    }

    fn chaos_config() -> ChaosConfig {
        ChaosConfig::default().rule(
            KindRule::all()
                .drop(0.1)
                .delay(0.1, Duration::from_millis(1), Duration::from_millis(5))
                .duplicate(0.1)
                .reorder(0.1, Duration::from_millis(5)),
        )
    }

    #[test]
    fn schedule_decisions_are_a_pure_function_of_seed_stream_and_seq() {
        let a = FaultSchedule::sample(99, chaos_config());
        let b = FaultSchedule::sample(99, chaos_config());
        let from = NodeId::new("x.coord.s0");
        let to = NodeId::new("x.coord.s1");
        // Interleave decide() calls across two streams on one schedule and
        // a straight run on the other: per-stream decisions must agree.
        let mut seen = Vec::new();
        for i in 0..64u64 {
            let d1 = a.decide(&from, &to, "notify");
            assert_eq!(d1, a.decision_at(&from, &to, "notify", i));
            let _ = a.decide(&to, &from, "notify");
            seen.push(d1);
        }
        for (i, d1) in seen.iter().enumerate() {
            assert_eq!(*d1, b.decision_at(&from, &to, "notify", i as u64));
        }
        // A different seed disagrees somewhere over 64 draws.
        let c = FaultSchedule::sample(100, chaos_config());
        assert!(
            (0..64u64).any(|i| c.decision_at(&from, &to, "notify", i)
                != a.decision_at(&from, &to, "notify", i)),
            "different seeds should produce different schedules"
        );
    }

    #[test]
    fn replay_schedule_reproduces_only_listed_events() {
        let sampled = FaultSchedule::sample(7, chaos_config());
        let from = NodeId::new("a");
        let to = NodeId::new("b");
        for _ in 0..128 {
            sampled.decide(&from, &to, "notify");
        }
        let events = sampled.events();
        assert!(
            !events.is_empty(),
            "seed 7 should fault something in 128 draws"
        );
        let replay = FaultSchedule::replay(7, &events);
        for i in 0..128u64 {
            let expected = sampled.decision_at(&from, &to, "notify", i);
            assert_eq!(replay.decide(&from, &to, "notify"), expected, "seq {i}");
        }
        assert_eq!(replay.events(), events, "replay log matches the original");
    }

    #[test]
    fn kind_rules_match_by_prefix_first_wins() {
        let cfg = ChaosConfig::default()
            .rule(KindRule::for_kind("invoke").drop(1.0))
            .rule(KindRule::all());
        let s = FaultSchedule::sample(1, cfg);
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        assert_eq!(s.decide(&a, &b, "invoke.result"), FaultAction::Drop);
        assert_eq!(s.decide(&a, &b, "notify"), FaultAction::Deliver);
    }

    #[test]
    fn node_events_sorted_and_exposed() {
        let cfg = ChaosConfig::default()
            .restart(Duration::from_millis(50), "h")
            .crash(Duration::from_millis(10), "h");
        let s = FaultSchedule::sample(1, cfg);
        let evs = s.node_events();
        assert_eq!(evs[0].fault, NodeFault::Crash);
        assert_eq!(evs[1].fault, NodeFault::Restart);
        assert!(s
            .events()
            .iter()
            .take(2)
            .all(|e| matches!(e, FaultEvent::Node(_))));
    }

    #[test]
    fn ddmin_minimizes_to_the_single_fatal_event() {
        // 40 events, exactly one of which ("drop #17") causes the failure.
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        let events: Vec<FaultEvent> = (0..40u64)
            .map(|i| FaultEvent::Message {
                from: a.clone(),
                to: b.clone(),
                kind: "notify".to_string(),
                seq: i,
                action: if i == 17 {
                    FaultAction::Drop
                } else {
                    FaultAction::Delay(Duration::from_millis(1))
                },
            })
            .collect();
        let mut probes = 0;
        let minimal = minimize_schedule(&events, |subset| {
            probes += 1;
            subset
                .iter()
                .any(|e| matches!(e, FaultEvent::Message { seq: 17, .. }))
        });
        assert_eq!(minimal.len(), 1);
        assert!(matches!(&minimal[0], FaultEvent::Message { seq: 17, .. }));
        assert!(probes < 200, "ddmin should not degenerate to brute force");
    }

    #[test]
    fn ddmin_keeps_conjunction_of_two_needed_events() {
        let a = NodeId::new("a");
        let b = NodeId::new("b");
        let events: Vec<FaultEvent> = (0..32u64)
            .map(|i| FaultEvent::Message {
                from: a.clone(),
                to: b.clone(),
                kind: "k".to_string(),
                seq: i,
                action: FaultAction::Drop,
            })
            .collect();
        // Fails only when BOTH #3 and #28 are present.
        let minimal = minimize_schedule(&events, |subset| {
            let has = |n: u64| {
                subset
                    .iter()
                    .any(|e| matches!(e, FaultEvent::Message { seq, .. } if *seq == n))
            };
            has(3) && has(28)
        });
        assert_eq!(minimal.len(), 2);
    }

    #[test]
    fn chaos_controller_fires_crash_and_restart() {
        use parking_lot::Mutex as PMutex;
        struct Recorder(PMutex<Vec<(String, bool)>>);
        impl ChaosTarget for Recorder {
            fn crash(&self, node: &NodeId) {
                self.0.lock().push((node.as_str().to_string(), true));
            }
            fn restart(&self, node: &NodeId) {
                self.0.lock().push((node.as_str().to_string(), false));
            }
        }
        let cfg = ChaosConfig::default()
            .crash(Duration::from_millis(5), "n")
            .restart(Duration::from_millis(15), "n");
        let schedule = FaultSchedule::sample(1, cfg);
        let recorder = Arc::new(Recorder(PMutex::new(Vec::new())));
        let controller = ChaosController::start(&schedule, recorder.clone());
        let deadline = Instant::now() + Duration::from_secs(2);
        while recorder.0.lock().len() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        controller.stop();
        let log = recorder.0.lock();
        assert_eq!(
            *log,
            vec![("n".to_string(), true), ("n".to_string(), false)]
        );
    }
}
