//! The transport seam: every SELF-SERV component talks to its peers
//! through the object-safe [`Transport`] trait, never through a concrete
//! network implementation.
//!
//! The original platform's components exchanged XML documents "through
//! Java sockets" — nothing in the coordination protocol depends on *which*
//! wire carries the envelopes. This module makes that explicit:
//!
//! * [`Transport`] — connect named nodes, send as a node, inspect metrics;
//! * [`Endpoint`] — a connected node: send/receive/reply/rpc, identical
//!   API over every transport;
//! * [`NodeSender`] — a cloneable send-only handle for worker threads;
//! * [`TransportHandle`] — a cheap owned `Arc<dyn Transport>`.
//!
//! Request/response ([`Endpoint::rpc`] / [`NodeSender::rpc`]) rides the
//! caller's *persistent* endpoint: each rpc registers its request id in
//! the endpoint's [`ReplyDemux`] before the request leaves, the request
//! carries the caller's own node name as the reply address, and the
//! transport's delivery path routes the correlated reply straight into the
//! waiting rpc's slot. Concurrent rpcs from one node never cross (each id
//! has its own slot), late replies to finished rpcs are discarded, and
//! uncorrelated traffic — plus correlated traffic nobody rpc'd for, e.g. a
//! component's hand-rolled request/reply bookkeeping — still flows to
//! [`Endpoint::recv`]. No per-call endpoints, listeners, or threads are
//! created on this path on any transport.
//!
//! The demux also supports a **continuation-passing** rpc shape: instead
//! of a slot somebody blocks on, [`ReplyDemux::register_handler`] installs
//! a one-shot callback the delivery path runs with the correlated reply —
//! the hook `selfserv-runtime`'s `rpc_async` uses to resume a node state
//! machine without parking any thread for the round trip.
//!
//! Two first-class implementations ship with this crate: the in-process
//! simulation fabric ([`crate::Network`]) and real TCP sockets
//! ([`crate::tcp::TcpTransport`]). Coordinators, wrappers, communities,
//! registries, and the centralized baseline are all written against this
//! seam, so the same composite service executes unchanged over either.

use crate::envelope::{Envelope, MessageId, NodeId};
use crate::metrics::MetricsSnapshot;
use parking_lot::Mutex;
use selfserv_xml::Element;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors returned when handing a message to a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The destination is not connected to this transport.
    UnknownNode(NodeId),
    /// The *sender* has been killed by failure injection (fabric only).
    SenderDead(NodeId),
    /// The transport failed to carry the message (e.g. a TCP connection
    /// could not be established or broke mid-frame).
    Transport(String),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            SendError::SenderDead(n) => write!(f, "sender '{n}' has been killed"),
            SendError::Transport(reason) => write!(f, "transport error: {reason}"),
        }
    }
}

impl std::error::Error for SendError {}

/// Errors returned by [`Transport::connect`]: why a node could not come up
/// under the requested name. Distinguishes "the name is in use" (retry
/// under another name, or a duplicate deployment) from "the transport
/// could not provision the endpoint" (an operational failure carrying the
/// underlying [`std::io::Error`]).
#[derive(Debug)]
pub enum ConnectError {
    /// The name is already connected on this transport (or registered to a
    /// remote peer).
    NameTaken(NodeId),
    /// Names containing `~` are reserved for transport-generated
    /// ephemeral endpoints and cannot be claimed by components.
    ReservedName(NodeId),
    /// The transport failed to provision the endpoint — e.g. a TCP
    /// listener could not bind. The name was *not* claimed.
    Bind(NodeId, std::io::Error),
}

impl ConnectError {
    /// The node name the connect attempt was for.
    pub fn node(&self) -> &NodeId {
        match self {
            ConnectError::NameTaken(n)
            | ConnectError::ReservedName(n)
            | ConnectError::Bind(n, _) => n,
        }
    }

    /// True when the failure is a name collision (as opposed to an
    /// operational transport failure).
    pub fn is_name_taken(&self) -> bool {
        matches!(self, ConnectError::NameTaken(_))
    }
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::NameTaken(n) => write!(f, "node name '{n}' is already connected"),
            ConnectError::ReservedName(n) => {
                write!(f, "node name '{n}' is reserved ('~' names are ephemeral)")
            }
            ConnectError::Bind(n, e) => {
                write!(f, "could not provision an endpoint for node '{n}': {e}")
            }
        }
    }
}

impl std::error::Error for ConnectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConnectError::Bind(_, e) => Some(e),
            _ => None,
        }
    }
}

/// Errors returned by the receive family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// The transport was shut down.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "endpoint disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Errors returned by [`Endpoint::rpc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The request could not be sent.
    Send(SendError),
    /// No correlated reply arrived in time (request or reply may have been
    /// lost, the responder may be dead).
    Timeout,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Send(e) => write!(f, "rpc send failed: {e}"),
            RpcError::Timeout => write!(f, "rpc timed out waiting for reply"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A message substrate carrying [`Envelope`]s between named nodes.
///
/// Object-safe by design: platform components hold `&dyn Transport` or a
/// [`TransportHandle`] and never name a concrete implementation.
pub trait Transport: Send + Sync {
    /// Connects a named node, returning its endpoint. See [`ConnectError`]
    /// for the failure modes (name collision vs. provisioning failure).
    fn connect(&self, name: NodeId) -> Result<Endpoint, ConnectError>;

    /// Connects a node under a generated unique name `prefix~<n>`.
    ///
    /// This provisions a full endpoint (on TCP: a listener and accept
    /// thread), so it belongs on setup and control paths only — auxiliary
    /// identities such as demo clients, stop-control senders, or nested
    /// composite callers. The rpc hot path does **not** use it: replies
    /// demultiplex on the caller's persistent endpoint.
    fn connect_anonymous(&self, prefix: &str) -> Endpoint;

    /// True when a node of this name is currently connected.
    fn is_connected(&self, name: &str) -> bool;

    /// Names of all currently connected nodes, sorted.
    fn node_names(&self) -> Vec<NodeId>;

    /// Reserves a transport-unique message id without sending anything.
    ///
    /// The rpc path pairs this with [`Transport::send_prepared`]: the
    /// reply slot must be registered under the request id *before* the
    /// request reaches the wire, or a fast responder's reply could race
    /// past the registration and be misrouted.
    fn next_message_id(&self) -> MessageId;

    /// Sends a message under a pre-reserved id (see
    /// [`Transport::next_message_id`]) *as* `from`, without holding
    /// `from`'s endpoint. Per-node metrics stay attributable to `from`.
    fn send_prepared(
        &self,
        id: MessageId,
        from: &NodeId,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<(), SendError>;

    /// Sends a message *as* `from` without holding `from`'s endpoint
    /// (backs [`NodeSender`]; per-node metrics stay attributable).
    fn send_as(
        &self,
        from: &NodeId,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        let id = self.next_message_id();
        self.send_prepared(id, from, to, kind, body, correlation)?;
        Ok(id)
    }

    /// Failure-injection hook: brings a killed node back. Transports
    /// without failure injection (e.g. TCP) treat this as a no-op; handles
    /// call it before delivering their stop message so shutdown can never
    /// deadlock on a killed node.
    fn revive(&self, _node: &NodeId) {}

    /// Snapshot of per-node traffic counters.
    fn metrics(&self) -> MetricsSnapshot;

    /// Resets all traffic counters to zero.
    fn reset_metrics(&self);

    /// An owned, cheaply clonable handle to this transport.
    fn handle(&self) -> TransportHandle;
}

/// An owned, clonable `Arc<dyn Transport>`. Components store this in their
/// spawn handles; `Deref` exposes the full [`Transport`] API.
#[derive(Clone)]
pub struct TransportHandle(Arc<dyn Transport>);

impl TransportHandle {
    /// Wraps a transport implementation.
    pub fn new(transport: impl Transport + 'static) -> Self {
        TransportHandle(Arc::new(transport))
    }

    /// Wraps an already-shared transport.
    pub fn from_arc(transport: Arc<dyn Transport>) -> Self {
        TransportHandle(transport)
    }
}

impl Deref for TransportHandle {
    type Target = dyn Transport;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for TransportHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TransportHandle(..)")
    }
}

/// How many retired rpc ids each endpoint remembers. A late or duplicate
/// reply to any of the most recent `STALE_CAPACITY` finished rpcs is
/// recognized and discarded instead of leaking into [`Endpoint::recv`].
const STALE_CAPACITY: usize = 1024;

/// A one-shot continuation invoked with the correlated reply of an
/// asynchronous rpc (see [`ReplyDemux::register_handler`]). Runs on the
/// transport's delivery path, so it must be cheap and must never block.
type ReplyHandler = Box<dyn FnOnce(Envelope) + Send>;

/// Per-endpoint rpc reply demultiplexer.
///
/// Each in-flight [`Endpoint::rpc`] registers its request id here before
/// the request is handed to the transport. The transport's delivery path
/// calls `ReplyDemux::route` (via the crate-internal `Inbox::deliver`) on
/// every inbound
/// envelope for the node:
///
/// * a reply correlated to a **pending** rpc goes to that rpc's slot —
///   concurrent rpcs from one node can never receive each other's reply;
/// * a reply correlated to a registered **continuation handler** (the
///   thread-free rpc shape node runtimes use — see
///   [`ReplyDemux::register_handler`]) consumes the handler and runs it;
/// * a reply correlated to a **retired** rpc (completed or timed out) is
///   discarded — a stale reply cannot poison the next rpc or surface as
///   phantom traffic in `recv`;
/// * everything else — uncorrelated messages, and correlated messages
///   whose id was never registered (components doing their own
///   request/reply bookkeeping over `send`/`recv`) — flows to the mailbox.
///
/// The table is shared between the endpoint and its [`NodeSender`] clones,
/// so worker threads rpc as the owning node with no per-call setup.
pub struct ReplyDemux {
    /// In-flight rpc request ids → reply slots.
    pending: Mutex<HashMap<MessageId, crossbeam::channel::Sender<Envelope>>>,
    /// In-flight *continuation-passing* rpc request ids → one-shot reply
    /// handlers. Disjoint from `pending` by construction (transport
    /// message ids are unique).
    handlers: Mutex<HashMap<MessageId, ReplyHandler>>,
    /// Recently retired rpc ids, bounded by [`STALE_CAPACITY`].
    stale: Mutex<StaleRing>,
    /// Transport-wide count of replies discarded as stale (late or
    /// duplicate replies to retired rpcs), shared by every demux of one
    /// transport so the hub can expose a single duplicates signal.
    stale_discards: Arc<AtomicU64>,
    /// Invoked after every envelope queued on the owning endpoint's mailbox
    /// (never for rpc replies consumed by a pending slot). Installed via
    /// [`Endpoint::set_mailbox_waker`] by node runtimes that schedule a
    /// state machine instead of blocking a thread in `recv`.
    waker: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

#[derive(Default)]
struct StaleRing {
    order: VecDeque<MessageId>,
    set: HashSet<MessageId>,
}

impl ReplyDemux {
    pub(crate) fn new(stale_discards: Arc<AtomicU64>) -> Arc<ReplyDemux> {
        Arc::new(ReplyDemux {
            pending: Mutex::new(HashMap::new()),
            handlers: Mutex::new(HashMap::new()),
            stale: Mutex::new(StaleRing::default()),
            stale_discards,
            waker: Mutex::new(None),
        })
    }

    /// Runs the installed mailbox waker, if any. The waker is cloned out of
    /// the lock before the call so a waker that re-enters the endpoint
    /// (e.g. to query `pending`) cannot deadlock against an install.
    fn wake_mailbox(&self) {
        let waker = self.waker.lock().clone();
        if let Some(waker) = waker {
            waker();
        }
    }

    /// Registers a reply slot for `id`. Must happen before the request is
    /// handed to the transport, so the reply cannot race past it. The
    /// returned guard deregisters (and tombstones) the id on drop.
    fn register(&self, id: MessageId) -> ReplySlot<'_> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.pending.lock().insert(id, tx);
        ReplySlot {
            demux: self,
            id,
            rx,
        }
    }

    /// Moves `id` from pending to the stale ring: later replies carrying
    /// it are discarded rather than delivered anywhere.
    ///
    /// Tombstones *before* deregistering. `route` checks pending first,
    /// then stale, so a reply delivered concurrently with retirement
    /// either still finds the dying slot (harmless — the queued value is
    /// freed with the slot) or finds the tombstone; deregistering first
    /// would open a window where it found neither and leaked into the
    /// mailbox.
    fn retire(&self, id: MessageId) {
        self.tombstone(id);
        self.pending.lock().remove(&id);
    }

    /// Registers a one-shot continuation for the reply correlated to `id`:
    /// when it arrives, the delivery path retires the id and runs `handler`
    /// with the reply instead of queueing anything or parking anyone.
    ///
    /// This is the thread-free half of the rpc machinery: where
    /// [`Endpoint::rpc`] registers a slot and blocks on it, a node runtime
    /// registers a handler that re-enters its scheduler (e.g. enqueue a
    /// completion event and wake the node) and returns immediately. Like
    /// the mailbox waker, the handler runs on the transport's delivery path
    /// (fabric dispatch or a TCP reader thread): it must be cheap and must
    /// never block. Register **before** the request is sent, so even an
    /// instantly delivered reply finds it.
    pub fn register_handler(&self, id: MessageId, handler: impl FnOnce(Envelope) + Send + 'static) {
        self.handlers.lock().insert(id, Box::new(handler));
    }

    /// Cancels the continuation registered for `id` (timeout or owner
    /// shutdown). Returns `true` when the handler was still pending — the
    /// caller now owns the failure path (e.g. deliver a timeout
    /// completion) — and `false` when the reply already won the race and
    /// the handler ran (or was never registered).
    ///
    /// Tombstones the id *before* removing the handler, mirroring the
    /// internal slot-retirement order: a reply delivered concurrently either still
    /// finds the handler (and wins — this returns `false`) or finds the
    /// tombstone; it can never leak into the mailbox.
    pub fn cancel_handler(&self, id: MessageId) -> bool {
        self.tombstone(id);
        self.handlers.lock().remove(&id).is_some()
    }

    /// Adds `id` to the bounded stale ring (idempotent).
    fn tombstone(&self, id: MessageId) {
        let mut stale = self.stale.lock();
        if stale.set.insert(id) {
            stale.order.push_back(id);
            if stale.order.len() > STALE_CAPACITY {
                if let Some(oldest) = stale.order.pop_front() {
                    stale.set.remove(&oldest);
                }
            }
        }
    }

    /// Routes one inbound envelope. Returns the envelope when it should be
    /// queued on the main mailbox; `None` when it was consumed by a
    /// pending rpc slot, consumed by a registered continuation handler, or
    /// discarded as stale.
    pub(crate) fn route(&self, env: Envelope) -> Option<Envelope> {
        let Some(corr) = env.correlation else {
            return Some(env);
        };
        {
            let pending = self.pending.lock();
            if let Some(slot) = pending.get(&corr) {
                // The slot's channel is never contended and never blocks
                // delivery; a duplicate reply queues behind the first and
                // is freed when the slot is retired.
                let _ = slot.send(env);
                return None;
            }
        }
        let handler = self.handlers.lock().remove(&corr);
        if let Some(handler) = handler {
            // Retire before running the continuation so a duplicate reply
            // racing in behind this one is discarded as stale. The handler
            // runs outside every demux lock: it may re-enter the endpoint.
            self.retire(corr);
            handler(env);
            return None;
        }
        if self.stale.lock().set.contains(&corr) {
            self.stale_discards.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(env)
    }

    /// Number of in-flight rpcs (for tests and debugging).
    pub fn pending_rpcs(&self) -> usize {
        self.pending.lock().len()
    }

    /// Number of registered continuation handlers (for tests and
    /// debugging).
    pub fn pending_handlers(&self) -> usize {
        self.handlers.lock().len()
    }
}

/// A registered reply slot: receives the correlated reply for one rpc.
/// Dropping it deregisters the id and tombstones it as stale.
struct ReplySlot<'a> {
    demux: &'a ReplyDemux,
    id: MessageId,
    rx: crossbeam::channel::Receiver<Envelope>,
}

impl ReplySlot<'_> {
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RecvError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }
}

impl Drop for ReplySlot<'_> {
    fn drop(&mut self) {
        self.demux.retire(self.id);
    }
}

/// Crate-internal delivery target shared by the transport implementations:
/// a node's mailbox sender plus its reply demultiplexer. Every envelope
/// delivered to a node goes through [`Inbox::deliver`], which is what
/// makes rpc replies arrive at the blocked rpc instead of the mailbox.
#[derive(Clone)]
pub(crate) struct Inbox {
    tx: crossbeam::channel::Sender<Envelope>,
    demux: Arc<ReplyDemux>,
}

impl Inbox {
    pub(crate) fn new(tx: crossbeam::channel::Sender<Envelope>, demux: Arc<ReplyDemux>) -> Self {
        Inbox { tx, demux }
    }

    /// Delivers one envelope, demultiplexing rpc replies. `Err(())` when
    /// the endpoint's mailbox is gone (receiver dropped). A successful
    /// mailbox enqueue runs the endpoint's mailbox waker (if installed) so
    /// executor-scheduled nodes learn about the arrival without polling.
    pub(crate) fn deliver(&self, env: Envelope) -> Result<(), ()> {
        match self.demux.route(env) {
            None => Ok(()),
            Some(env) => {
                self.tx.send(env).map_err(|_| ())?;
                self.demux.wake_mailbox();
                Ok(())
            }
        }
    }
}

/// Crate-internal mailbox shared by the transport implementations: wraps
/// a node's delivery channel and maps its errors onto [`RecvError`], so
/// the mapping lives in one place.
pub(crate) struct Mailbox(crossbeam::channel::Receiver<Envelope>);

impl Mailbox {
    pub(crate) fn new(rx: crossbeam::channel::Receiver<Envelope>) -> Self {
        Mailbox(rx)
    }

    pub(crate) fn recv(&self) -> Result<Envelope, RecvError> {
        self.0.recv().map_err(|_| RecvError::Disconnected)
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RecvError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    pub(crate) fn try_recv(&self) -> Option<Envelope> {
        self.0.try_recv().ok()
    }

    pub(crate) fn pending(&self) -> usize {
        self.0.len()
    }
}

/// The transport-specific half of a connected node. Implementations supply
/// addressing and queueing; all protocol ergonomics live on [`Endpoint`].
pub trait RawEndpoint: Send {
    /// This endpoint's node id.
    fn node(&self) -> &NodeId;

    /// Sends a message, optionally correlated to a request.
    fn send(
        &self,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError>;

    /// Blocking receive.
    fn recv(&self) -> Result<Envelope, RecvError>;

    /// Receive with a deadline.
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError>;

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope>;

    /// Number of messages waiting in the mailbox.
    fn pending(&self) -> usize;
}

/// A connected node: the handle through which a SELF-SERV component sends
/// and receives envelopes. Transport-agnostic — obtained from
/// [`Transport::connect`] on any implementation.
pub struct Endpoint {
    raw: Box<dyn RawEndpoint>,
    transport: TransportHandle,
    demux: Arc<ReplyDemux>,
}

impl Endpoint {
    /// Assembles an endpoint from a transport's raw half and the reply
    /// demultiplexer its delivery path routes through. Implementations of
    /// [`Transport::connect`] call this; platform code never needs to.
    pub fn from_raw(
        raw: Box<dyn RawEndpoint>,
        transport: TransportHandle,
        demux: Arc<ReplyDemux>,
    ) -> Self {
        Endpoint {
            raw,
            transport,
            demux,
        }
    }

    /// This endpoint's node id.
    pub fn node(&self) -> &NodeId {
        self.raw.node()
    }

    /// The transport this endpoint is attached to.
    pub fn transport(&self) -> &TransportHandle {
        &self.transport
    }

    /// This endpoint's reply demultiplexer (for tests and diagnostics).
    pub fn demux(&self) -> &Arc<ReplyDemux> {
        &self.demux
    }

    /// Installs a callback invoked after every envelope queued on this
    /// endpoint's mailbox (rpc replies consumed by a pending slot do not
    /// trigger it). Replaces any previously installed waker.
    ///
    /// This is the hook node runtimes use to schedule an event-driven node
    /// when traffic arrives instead of parking a thread in [`Endpoint::recv`]:
    /// the waker runs on the transport's delivery path (fabric dispatch or a
    /// TCP reader thread), so it must be cheap and must never block on work
    /// done inside a node callback.
    pub fn set_mailbox_waker(&self, waker: impl Fn() + Send + Sync + 'static) {
        *self.demux.waker.lock() = Some(Arc::new(waker));
    }

    /// A cloneable handle that sends — and rpcs — as this endpoint's node
    /// (for worker threads). Replies to the handle's rpcs arrive at this
    /// endpoint and are demultiplexed to the calling worker.
    pub fn sender(&self) -> NodeSender {
        NodeSender {
            node: self.node().clone(),
            transport: self.transport.clone(),
            demux: Arc::clone(&self.demux),
        }
    }

    /// Sends a message; returns its transport id. A returned `Ok` means
    /// the message was accepted by the transport, not that it will be
    /// delivered (loss, partitions, kills, and peer crashes are silent, as
    /// on a real network).
    pub fn send(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
    ) -> Result<MessageId, SendError> {
        self.raw.send(to.into(), kind.into(), body, None)
    }

    /// Sends a message carrying a reply correlation.
    pub fn send_correlated(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        self.raw.send(to.into(), kind.into(), body, correlation)
    }

    /// Sends a reply to a received request, correlated to its id.
    pub fn reply(
        &self,
        request: &Envelope,
        kind: impl Into<String>,
        body: Element,
    ) -> Result<MessageId, SendError> {
        self.send_correlated(request.from.clone(), kind, body, Some(request.id))
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        self.raw.recv()
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.raw.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.raw.try_recv()
    }

    /// Number of messages waiting in the mailbox.
    pub fn pending(&self) -> usize {
        self.raw.pending()
    }

    /// Request/response: sends `kind` to `to` and waits for the correlated
    /// reply on this endpoint's own reply demultiplexer.
    ///
    /// This is the shape of the original platform's SOAP calls (service
    /// registration, discovery, invocation). The request carries this
    /// node's name as the reply address, so it works across process
    /// boundaries wherever named sends do (see
    /// [`crate::TcpTransport::register_peer`]). No per-call endpoint,
    /// listener, or thread is created. A reply arriving after the rpc
    /// finished (success or timeout) is discarded; unrelated traffic
    /// received during the rpc stays queued for [`Endpoint::recv`].
    pub fn rpc(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        timeout: Duration,
    ) -> Result<Envelope, RpcError> {
        rpc_via(
            &self.transport,
            &self.demux,
            self.node(),
            to.into(),
            kind.into(),
            body,
            timeout,
        )
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("node", self.node())
            .finish()
    }
}

/// A cloneable sending-only handle that emits messages *as* a node.
/// Obtained from [`Endpoint::sender`]; lets worker threads send — and rpc —
/// under the owning component's name so per-node metrics stay attributable
/// and rpc replies route back through the owning endpoint's demultiplexer.
#[derive(Clone)]
pub struct NodeSender {
    node: NodeId,
    transport: TransportHandle,
    demux: Arc<ReplyDemux>,
}

impl NodeSender {
    /// The node this handle sends as.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// The transport.
    pub fn transport(&self) -> &TransportHandle {
        &self.transport
    }

    /// Sends a message as the owning node.
    pub fn send(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
    ) -> Result<MessageId, SendError> {
        self.transport
            .send_as(&self.node, to.into(), kind.into(), body, None)
    }

    /// Sends a correlated message as the owning node.
    pub fn send_correlated(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        self.transport
            .send_as(&self.node, to.into(), kind.into(), body, correlation)
    }

    /// Sends a request whose correlated reply — if the receiver emits one
    /// — should be thrown away: the request id is tombstoned in the reply
    /// demultiplexer *before* the send, so an acknowledgement is discarded
    /// at delivery instead of queueing forever in the mailbox of an
    /// endpoint nobody drains. Fire-and-forget against ack-happy
    /// receivers.
    pub fn send_discard_reply(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
    ) -> Result<MessageId, SendError> {
        let id = self.transport.next_message_id();
        self.demux.retire(id);
        self.transport
            .send_prepared(id, &self.node, to.into(), kind.into(), body, None)?;
        Ok(id)
    }

    /// Request/response as the owning node. The reply is demultiplexed at
    /// the owning endpoint and handed to this caller; any number of
    /// [`NodeSender`] clones can rpc concurrently without crossing
    /// replies.
    pub fn rpc(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        timeout: Duration,
    ) -> Result<Envelope, RpcError> {
        rpc_via(
            &self.transport,
            &self.demux,
            &self.node,
            to.into(),
            kind.into(),
            body,
            timeout,
        )
    }
}

/// Shared request/response implementation: reserve the request id,
/// register the reply slot, send, block on the slot. The registration
/// precedes the send so even an instantly-delivered reply finds its slot;
/// the guard's drop retires the id so late replies are discarded.
fn rpc_via(
    transport: &TransportHandle,
    demux: &ReplyDemux,
    as_node: &NodeId,
    to: NodeId,
    kind: String,
    body: Element,
    timeout: Duration,
) -> Result<Envelope, RpcError> {
    let request_id = transport.next_message_id();
    let slot = demux.register(request_id);
    transport
        .send_prepared(request_id, as_node, to, kind, body, None)
        .map_err(RpcError::Send)?;
    slot.recv_timeout(timeout).map_err(|_| RpcError::Timeout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NetworkConfig};
    use selfserv_xml::Element;

    /// A continuation handler consumes exactly the correlated reply, which
    /// never reaches the mailbox; the id is retired afterwards so a
    /// duplicate reply is discarded too.
    #[test]
    fn handler_consumes_correlated_reply_and_retires_id() {
        let net = Network::new(NetworkConfig::instant());
        let caller = net.connect("caller").unwrap();
        let responder = net.connect("responder").unwrap();

        let id = net.next_message_id();
        let (tx, rx) = crossbeam::channel::unbounded();
        caller.demux().register_handler(id, move |env: Envelope| {
            let _ = tx.send(env);
        });
        net.send_prepared(
            id,
            caller.node(),
            "responder".into(),
            "ping".into(),
            Element::new("ping"),
            None,
        )
        .unwrap();
        let req = responder.recv_timeout(Duration::from_secs(2)).unwrap();
        responder.reply(&req, "pong", Element::new("pong")).unwrap();
        responder.reply(&req, "pong", Element::new("dup")).unwrap();

        let reply = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(reply.kind, "pong");
        assert_eq!(reply.body.name, "pong");
        // The duplicate was retired, not queued: nothing reaches the
        // mailbox and the handler table is empty.
        assert!(caller.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(caller.demux().pending_handlers(), 0);
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "one-shot handler must not run twice"
        );
    }

    /// Cancelling first wins the race: the handler never runs and the late
    /// reply is discarded as stale instead of leaking into the mailbox.
    #[test]
    fn cancelled_handler_discards_late_reply() {
        let net = Network::new(NetworkConfig::instant());
        let caller = net.connect("caller").unwrap();
        let responder = net.connect("responder").unwrap();

        let id = net.next_message_id();
        caller
            .demux()
            .register_handler(id, |_| panic!("cancelled handler must not run"));
        net.send_prepared(
            id,
            caller.node(),
            "responder".into(),
            "ping".into(),
            Element::new("ping"),
            None,
        )
        .unwrap();
        let req = responder.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(caller.demux().cancel_handler(id), "still pending");
        assert!(!caller.demux().cancel_handler(id), "idempotent");
        responder.reply(&req, "pong", Element::new("late")).unwrap();
        assert!(
            caller.recv_timeout(Duration::from_millis(50)).is_err(),
            "late reply to a cancelled handler is stale"
        );
    }
}
