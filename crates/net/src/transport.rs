//! The transport seam: every SELF-SERV component talks to its peers
//! through the object-safe [`Transport`] trait, never through a concrete
//! network implementation.
//!
//! The original platform's components exchanged XML documents "through
//! Java sockets" — nothing in the coordination protocol depends on *which*
//! wire carries the envelopes. This module makes that explicit:
//!
//! * [`Transport`] — connect named nodes, send as a node, inspect metrics;
//! * [`Endpoint`] — a connected node: send/receive/reply/rpc, identical
//!   API over every transport;
//! * [`NodeSender`] — a cloneable send-only handle for worker threads;
//! * [`TransportHandle`] — a cheap owned `Arc<dyn Transport>`.
//!
//! Two first-class implementations ship with this crate: the in-process
//! simulation fabric ([`crate::Network`]) and real TCP sockets
//! ([`crate::tcp::TcpTransport`]). Coordinators, wrappers, communities,
//! registries, and the centralized baseline are all written against this
//! seam, so the same composite service executes unchanged over either.

use crate::envelope::{Envelope, MessageId, NodeId};
use crate::metrics::MetricsSnapshot;
use selfserv_xml::Element;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors returned when handing a message to a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The destination is not connected to this transport.
    UnknownNode(NodeId),
    /// The *sender* has been killed by failure injection (fabric only).
    SenderDead(NodeId),
    /// The transport failed to carry the message (e.g. a TCP connection
    /// could not be established or broke mid-frame).
    Transport(String),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            SendError::SenderDead(n) => write!(f, "sender '{n}' has been killed"),
            SendError::Transport(reason) => write!(f, "transport error: {reason}"),
        }
    }
}

impl std::error::Error for SendError {}

/// Errors returned by the receive family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// The transport was shut down.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "endpoint disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Errors returned by [`Endpoint::rpc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The request could not be sent.
    Send(SendError),
    /// No correlated reply arrived in time (request or reply may have been
    /// lost, the responder may be dead).
    Timeout,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Send(e) => write!(f, "rpc send failed: {e}"),
            RpcError::Timeout => write!(f, "rpc timed out waiting for reply"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A message substrate carrying [`Envelope`]s between named nodes.
///
/// Object-safe by design: platform components hold `&dyn Transport` or a
/// [`TransportHandle`] and never name a concrete implementation.
pub trait Transport: Send + Sync {
    /// Connects a named node, returning its endpoint. Fails with the name
    /// if it is unavailable on this transport — already taken, reserved
    /// (names containing `~` belong to transport-generated ephemeral
    /// endpoints), or unprovisionable (e.g. a TCP listener could not
    /// bind).
    fn connect(&self, name: NodeId) -> Result<Endpoint, NodeId>;

    /// Connects a node under a generated unique name starting with
    /// `prefix` (used for ephemeral RPC reply endpoints).
    fn connect_anonymous(&self, prefix: &str) -> Endpoint;

    /// True when a node of this name is currently connected.
    fn is_connected(&self, name: &str) -> bool;

    /// Names of all currently connected nodes, sorted.
    fn node_names(&self) -> Vec<NodeId>;

    /// Sends a message *as* `from` without holding `from`'s endpoint
    /// (backs [`NodeSender`]; per-node metrics stay attributable).
    fn send_as(
        &self,
        from: &NodeId,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError>;

    /// Failure-injection hook: brings a killed node back. Transports
    /// without failure injection (e.g. TCP) treat this as a no-op; handles
    /// call it before delivering their stop message so shutdown can never
    /// deadlock on a killed node.
    fn revive(&self, _node: &NodeId) {}

    /// Snapshot of per-node traffic counters.
    fn metrics(&self) -> MetricsSnapshot;

    /// Resets all traffic counters to zero.
    fn reset_metrics(&self);

    /// An owned, cheaply clonable handle to this transport.
    fn handle(&self) -> TransportHandle;
}

/// An owned, clonable `Arc<dyn Transport>`. Components store this in their
/// spawn handles; `Deref` exposes the full [`Transport`] API.
#[derive(Clone)]
pub struct TransportHandle(Arc<dyn Transport>);

impl TransportHandle {
    /// Wraps a transport implementation.
    pub fn new(transport: impl Transport + 'static) -> Self {
        TransportHandle(Arc::new(transport))
    }

    /// Wraps an already-shared transport.
    pub fn from_arc(transport: Arc<dyn Transport>) -> Self {
        TransportHandle(transport)
    }
}

impl Deref for TransportHandle {
    type Target = dyn Transport;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for TransportHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TransportHandle(..)")
    }
}

/// Crate-internal mailbox shared by the transport implementations: wraps
/// a node's delivery channel and maps its errors onto [`RecvError`], so
/// the mapping lives in one place.
pub(crate) struct Mailbox(crossbeam::channel::Receiver<Envelope>);

impl Mailbox {
    pub(crate) fn new(rx: crossbeam::channel::Receiver<Envelope>) -> Self {
        Mailbox(rx)
    }

    pub(crate) fn recv(&self) -> Result<Envelope, RecvError> {
        self.0.recv().map_err(|_| RecvError::Disconnected)
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RecvError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    pub(crate) fn try_recv(&self) -> Option<Envelope> {
        self.0.try_recv().ok()
    }

    pub(crate) fn pending(&self) -> usize {
        self.0.len()
    }
}

/// The transport-specific half of a connected node. Implementations supply
/// addressing and queueing; all protocol ergonomics live on [`Endpoint`].
pub trait RawEndpoint: Send {
    /// This endpoint's node id.
    fn node(&self) -> &NodeId;

    /// Sends a message, optionally correlated to a request.
    fn send(
        &self,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError>;

    /// Blocking receive.
    fn recv(&self) -> Result<Envelope, RecvError>;

    /// Receive with a deadline.
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError>;

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope>;

    /// Number of messages waiting in the mailbox.
    fn pending(&self) -> usize;
}

/// A connected node: the handle through which a SELF-SERV component sends
/// and receives envelopes. Transport-agnostic — obtained from
/// [`Transport::connect`] on any implementation.
pub struct Endpoint {
    raw: Box<dyn RawEndpoint>,
    transport: TransportHandle,
}

impl Endpoint {
    /// Assembles an endpoint from a transport's raw half. Implementations
    /// of [`Transport::connect`] call this; platform code never needs to.
    pub fn from_raw(raw: Box<dyn RawEndpoint>, transport: TransportHandle) -> Self {
        Endpoint { raw, transport }
    }

    /// This endpoint's node id.
    pub fn node(&self) -> &NodeId {
        self.raw.node()
    }

    /// The transport this endpoint is attached to.
    pub fn transport(&self) -> &TransportHandle {
        &self.transport
    }

    /// A cloneable handle that sends as this endpoint's node (for worker
    /// threads).
    pub fn sender(&self) -> NodeSender {
        NodeSender {
            node: self.node().clone(),
            transport: self.transport.clone(),
        }
    }

    /// Sends a message; returns its transport id. A returned `Ok` means
    /// the message was accepted by the transport, not that it will be
    /// delivered (loss, partitions, kills, and peer crashes are silent, as
    /// on a real network).
    pub fn send(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
    ) -> Result<MessageId, SendError> {
        self.raw.send(to.into(), kind.into(), body, None)
    }

    /// Sends a message carrying a reply correlation.
    pub fn send_correlated(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        self.raw.send(to.into(), kind.into(), body, correlation)
    }

    /// Sends a reply to a received request, correlated to its id.
    pub fn reply(
        &self,
        request: &Envelope,
        kind: impl Into<String>,
        body: Element,
    ) -> Result<MessageId, SendError> {
        self.send_correlated(request.from.clone(), kind, body, Some(request.id))
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        self.raw.recv()
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.raw.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.raw.try_recv()
    }

    /// Number of messages waiting in the mailbox.
    pub fn pending(&self) -> usize {
        self.raw.pending()
    }

    /// Request/response: sends `kind` to `to` from an ephemeral reply
    /// endpoint and waits for a correlated reply.
    ///
    /// This is the shape of the original platform's SOAP calls (service
    /// registration, discovery, invocation). Uncorrelated messages
    /// arriving at the ephemeral endpoint are discarded.
    pub fn rpc(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        timeout: Duration,
    ) -> Result<Envelope, RpcError> {
        rpc_via(
            &self.transport,
            self.node(),
            to.into(),
            kind.into(),
            body,
            timeout,
        )
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("node", self.node())
            .finish()
    }
}

/// A cloneable sending-only handle that emits messages *as* a node.
/// Obtained from [`Endpoint::sender`]; lets worker threads send under the
/// owning component's name so per-node metrics stay attributable.
#[derive(Clone)]
pub struct NodeSender {
    node: NodeId,
    transport: TransportHandle,
}

impl NodeSender {
    /// The node this handle sends as.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// The transport.
    pub fn transport(&self) -> &TransportHandle {
        &self.transport
    }

    /// Sends a message as the owning node.
    pub fn send(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
    ) -> Result<MessageId, SendError> {
        self.transport
            .send_as(&self.node, to.into(), kind.into(), body, None)
    }

    /// Sends a correlated message as the owning node.
    pub fn send_correlated(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        self.transport
            .send_as(&self.node, to.into(), kind.into(), body, correlation)
    }

    /// Request/response as the owning node (uses an ephemeral reply
    /// endpoint, like [`Endpoint::rpc`]).
    pub fn rpc(
        &self,
        to: impl Into<NodeId>,
        kind: impl Into<String>,
        body: Element,
        timeout: Duration,
    ) -> Result<Envelope, RpcError> {
        rpc_via(
            &self.transport,
            &self.node,
            to.into(),
            kind.into(),
            body,
            timeout,
        )
    }
}

/// Shared request/response implementation: ephemeral reply endpoint named
/// after the caller, correlation filtering, deadline bookkeeping.
fn rpc_via(
    transport: &TransportHandle,
    as_node: &NodeId,
    to: NodeId,
    kind: String,
    body: Element,
    timeout: Duration,
) -> Result<Envelope, RpcError> {
    let tmp = transport.connect_anonymous(as_node.as_str());
    let request_id = tmp.send(to, kind, body).map_err(RpcError::Send)?;
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(RpcError::Timeout);
        }
        match tmp.recv_timeout(remaining) {
            Ok(env) if env.correlation == Some(request_id) => return Ok(env),
            Ok(_) => continue,
            Err(_) => return Err(RpcError::Timeout),
        }
    }
}
