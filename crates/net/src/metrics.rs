//! Per-node traffic accounting.
//!
//! The paper's central architectural claim — peer-to-peer orchestration
//! avoids the "scalability and availability problems of centralised
//! coordination" — is quantified by watching *which node carries how much
//! traffic*. Every send/receive on the fabric increments these counters.

use crate::envelope::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Synthetic node name that accumulates the traffic of dropped ephemeral
/// (`~`-suffixed [`connect_anonymous`]) endpoints, so pruning their
/// per-node entries keeps fabric-wide totals conserved. Since the rpc path
/// stopped creating ephemeral endpoints, the only `~` nodes left are
/// auxiliary identities — demo clients, stop-control senders, nested
/// composite callers. Contains `~` itself, so filters that exclude
/// ephemeral nodes exclude the aggregate too.
///
/// [`connect_anonymous`]: crate::Transport::connect_anonymous
pub const EPHEMERAL_AGGREGATE: &str = "~ephemeral";

/// Folds a dropped ephemeral (`~`) node's counters into the
/// [`EPHEMERAL_AGGREGATE`] slot and removes its entry; no-op for named
/// nodes (their counters persist for post-run snapshots). Shared by every
/// transport's endpoint-drop path so the totals-conservation invariant
/// lives in one place.
pub(crate) fn fold_ephemeral(
    counters: &mut HashMap<NodeId, std::sync::Arc<NodeCounters>>,
    node: &NodeId,
) {
    if !node.as_str().contains('~') {
        return;
    }
    if let Some(c) = counters.remove(node) {
        counters
            .entry(NodeId::new(EPHEMERAL_AGGREGATE))
            .or_insert_with(|| std::sync::Arc::new(NodeCounters::default()))
            .absorb(&c);
    }
}

/// Live counters attached to a node slot. Updated lock-free.
#[derive(Debug, Default)]
pub struct NodeCounters {
    /// Messages sent by this node.
    pub sent: AtomicU64,
    /// Messages delivered to this node.
    pub received: AtomicU64,
    /// Bytes sent (serialized envelope size).
    pub bytes_sent: AtomicU64,
    /// Bytes received.
    pub bytes_received: AtomicU64,
    /// Messages addressed to this node that were dropped (loss, partition,
    /// dead node).
    pub dropped_inbound: AtomicU64,
}

impl NodeCounters {
    pub(crate) fn record_send(&self, bytes: usize) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_receive(&self, bytes: usize) {
        self.received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_drop(&self) {
        self.dropped_inbound.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds another counter set into this one (used to fold a pruned
    /// anonymous endpoint's traffic into a persistent aggregate slot so
    /// fabric-wide totals stay conserved).
    pub(crate) fn absorb(&self, other: &NodeCounters) {
        self.sent
            .fetch_add(other.sent.load(Ordering::Relaxed), Ordering::Relaxed);
        self.received
            .fetch_add(other.received.load(Ordering::Relaxed), Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(other.bytes_sent.load(Ordering::Relaxed), Ordering::Relaxed);
        self.bytes_received.fetch_add(
            other.bytes_received.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.dropped_inbound.fetch_add(
            other.dropped_inbound.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Zeroes all counters in place. Resetting must not swap the `Arc`
    /// holding the counters: receive paths (e.g. TCP reader threads)
    /// capture it once at connect time.
    pub(crate) fn reset(&self) {
        self.sent.store(0, Ordering::Relaxed);
        self.received.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.dropped_inbound.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, node: NodeId) -> NodeMetrics {
        NodeMetrics {
            node,
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            dropped_inbound: self.dropped_inbound.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one node's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    /// The node.
    pub node: NodeId,
    /// Messages sent.
    pub sent: u64,
    /// Messages received.
    pub received: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Inbound messages lost before delivery.
    pub dropped_inbound: u64,
}

impl NodeMetrics {
    /// Messages handled (sent + received): the "load" measure used by the
    /// E4 experiment.
    pub fn handled(&self) -> u64 {
        self.sent + self.received
    }

    /// Bytes handled.
    pub fn bytes_handled(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// Transport-level data-plane I/O statistics: what the wire actually cost,
/// as opposed to the per-node message accounting in [`NodeMetrics`]. The
/// TCP transport's connection writers count their gather-writes here
/// hub-wide; the in-process fabric reports zeros (it makes no syscalls).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportIoStats {
    /// Vectored write syscalls issued by connection writers. The
    /// coalescing claim is `frames_sent / writev_calls`: a 64-frame burst
    /// on the old write-per-frame path cost ~128 write syscalls.
    pub writev_calls: u64,
    /// Frames put on the wire (accepted sends that reached a socket).
    pub frames_sent: u64,
    /// Wire bytes written, length prefixes included.
    pub bytes_sent: u64,
    /// Stream flushes — one per queue-drain boundary, not per frame.
    pub flushes: u64,
    /// Frames accepted by `send` but dropped by a failing connection
    /// writer before reaching the wire (deferred-error semantics: the
    /// failure surfaces on the *next* send to that destination).
    pub frames_dropped: u64,
    /// Largest number of frames gathered into a single batch.
    pub max_batch_frames: u64,
    /// Sends that found their destination queue full and had to block for
    /// space (one per blocked `send`, however long the wait) — the
    /// transport-level backpressure signal the stress harness watches for
    /// saturation.
    pub backpressure_waits: u64,
}

impl TransportIoStats {
    /// Difference against an earlier snapshot (saturating), for scoping
    /// the counters to one burst or experiment phase. `max_batch_frames`
    /// is a high-water mark, not a counter: the later value carries over.
    pub fn delta_since(&self, earlier: &TransportIoStats) -> TransportIoStats {
        TransportIoStats {
            writev_calls: self.writev_calls.saturating_sub(earlier.writev_calls),
            frames_sent: self.frames_sent.saturating_sub(earlier.frames_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            frames_dropped: self.frames_dropped.saturating_sub(earlier.frames_dropped),
            max_batch_frames: self.max_batch_frames,
            backpressure_waits: self
                .backpressure_waits
                .saturating_sub(earlier.backpressure_waits),
        }
    }
}

/// A point-in-time copy of the whole fabric's counters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-node metrics, sorted by node name.
    pub nodes: Vec<NodeMetrics>,
    /// Transport-wide data-plane I/O counters (zeros on the in-process
    /// fabric).
    pub io: TransportIoStats,
}

impl MetricsSnapshot {
    pub(crate) fn collect<'a>(
        counters: impl Iterator<Item = (&'a NodeId, &'a NodeCounters)>,
    ) -> Self {
        let mut nodes: Vec<NodeMetrics> = counters.map(|(id, c)| c.snapshot(id.clone())).collect();
        nodes.sort_by(|a, b| a.node.cmp(&b.node));
        MetricsSnapshot {
            nodes,
            io: TransportIoStats::default(),
        }
    }

    /// Metrics for one node.
    pub fn node(&self, name: &str) -> Option<&NodeMetrics> {
        self.nodes.iter().find(|n| n.node.as_str() == name)
    }

    /// Total messages sent across the fabric.
    pub fn total_sent(&self) -> u64 {
        self.nodes.iter().map(|n| n.sent).sum()
    }

    /// Total messages delivered across the fabric.
    pub fn total_received(&self) -> u64 {
        self.nodes.iter().map(|n| n.received).sum()
    }

    /// Total messages lost.
    pub fn total_dropped(&self) -> u64 {
        self.nodes.iter().map(|n| n.dropped_inbound).sum()
    }

    /// The node that handled the most messages — the hotspot the paper's
    /// scalability argument is about.
    pub fn busiest(&self) -> Option<&NodeMetrics> {
        self.nodes.iter().max_by_key(|n| n.handled())
    }

    /// The busiest node restricted to nodes whose name matches a predicate
    /// (e.g. only coordinators, excluding client nodes).
    pub fn busiest_matching(&self, pred: impl Fn(&str) -> bool) -> Option<&NodeMetrics> {
        self.nodes
            .iter()
            .filter(|n| pred(n.node.as_str()))
            .max_by_key(|n| n.handled())
    }

    /// Difference against an earlier snapshot (per node, saturating), for
    /// scoping metrics to one experiment phase.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let before: HashMap<&NodeId, &NodeMetrics> =
            earlier.nodes.iter().map(|n| (&n.node, n)).collect();
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let b = before.get(&n.node);
                NodeMetrics {
                    node: n.node.clone(),
                    sent: n.sent - b.map_or(0, |b| b.sent),
                    received: n.received - b.map_or(0, |b| b.received),
                    bytes_sent: n.bytes_sent - b.map_or(0, |b| b.bytes_sent),
                    bytes_received: n.bytes_received - b.map_or(0, |b| b.bytes_received),
                    dropped_inbound: n.dropped_inbound - b.map_or(0, |b| b.dropped_inbound),
                }
            })
            .collect();
        MetricsSnapshot {
            nodes,
            io: self.io.delta_since(&earlier.io),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(name: &str, sent: u64, received: u64) -> NodeMetrics {
        NodeMetrics {
            node: NodeId::new(name),
            sent,
            received,
            bytes_sent: sent * 100,
            bytes_received: received * 100,
            dropped_inbound: 0,
        }
    }

    #[test]
    fn totals_and_busiest() {
        let snap = MetricsSnapshot {
            nodes: vec![nm("a", 5, 2), nm("b", 1, 9), nm("c", 0, 0)],
            ..Default::default()
        };
        assert_eq!(snap.total_sent(), 6);
        assert_eq!(snap.total_received(), 11);
        assert_eq!(snap.busiest().unwrap().node.as_str(), "b");
        assert_eq!(snap.node("a").unwrap().handled(), 7);
        assert_eq!(snap.node("a").unwrap().bytes_handled(), 700);
        assert!(snap.node("zzz").is_none());
    }

    #[test]
    fn busiest_matching_filters() {
        let snap = MetricsSnapshot {
            nodes: vec![nm("client", 100, 100), nm("coord.a", 3, 4)],
            ..Default::default()
        };
        let b = snap.busiest_matching(|n| n.starts_with("coord.")).unwrap();
        assert_eq!(b.node.as_str(), "coord.a");
    }

    #[test]
    fn delta_since() {
        let before = MetricsSnapshot {
            nodes: vec![nm("a", 5, 2)],
            io: TransportIoStats {
                writev_calls: 10,
                frames_sent: 40,
                bytes_sent: 4000,
                flushes: 5,
                frames_dropped: 1,
                max_batch_frames: 16,
                backpressure_waits: 2,
            },
        };
        let after = MetricsSnapshot {
            nodes: vec![nm("a", 8, 3), nm("b", 1, 1)],
            io: TransportIoStats {
                writev_calls: 12,
                frames_sent: 104,
                bytes_sent: 10_000,
                flushes: 6,
                frames_dropped: 1,
                max_batch_frames: 33,
                backpressure_waits: 5,
            },
        };
        let d = after.delta_since(&before);
        assert_eq!(d.node("a").unwrap().sent, 3);
        assert_eq!(d.node("a").unwrap().received, 1);
        assert_eq!(d.node("b").unwrap().sent, 1, "new nodes count from zero");
        assert_eq!(d.io.writev_calls, 2);
        assert_eq!(d.io.frames_sent, 64);
        assert_eq!(d.io.bytes_sent, 6000);
        assert_eq!(d.io.flushes, 1);
        assert_eq!(d.io.frames_dropped, 0);
        assert_eq!(d.io.max_batch_frames, 33, "high-water mark carries over");
        assert_eq!(d.io.backpressure_waits, 3);
    }

    #[test]
    fn counters_accumulate() {
        let c = NodeCounters::default();
        c.record_send(10);
        c.record_send(20);
        c.record_receive(5);
        c.record_drop();
        let m = c.snapshot(NodeId::new("n"));
        assert_eq!(m.sent, 2);
        assert_eq!(m.bytes_sent, 30);
        assert_eq!(m.received, 1);
        assert_eq!(m.bytes_received, 5);
        assert_eq!(m.dropped_inbound, 1);
    }
}
